#!/usr/bin/env python
"""Regenerate the paper's Figure 9 (speedup vs number of ASUs).

Run:  python examples/figure9.py [n_records_log2]
"""

import sys

from repro.bench import run_figure9


def main() -> None:
    log_n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    result = run_figure9(n_records=1 << log_n)
    print(result.render())


if __name__ == "__main__":
    main()
