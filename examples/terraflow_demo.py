#!/usr/bin/env python
"""TerraFlow: watershed analysis of a synthetic terrain (paper §4.1).

Generates a rolling DEM with carved depressions, runs the three-step
TerraFlow pipeline (restructure -> external sort by elevation -> watershed
colouring by time-forward processing), prints an ASCII map of the watersheds,
and reports which steps active storage can accelerate.

Run:  python examples/terraflow_demo.py
"""

import numpy as np

from repro.apps.terraflow import step_speedups, synthetic_dem, terraflow_pipeline
from repro.bench.fig9 import fig9_params
from repro.util.rng import RngRegistry


def ascii_map(labels: np.ndarray) -> str:
    glyphs = ".:+*#%@&oxABCDEFGHIJKLMNOPQRSTUVWXYZ"
    return "\n".join(
        "".join(glyphs[v % len(glyphs)] for v in row) for row in labels
    )


def main() -> None:
    rng = RngRegistry(4).get("dem")
    grid = synthetic_dem(28, 56, rng, n_pits=6)

    out = terraflow_pipeline(grid)
    ws = out.watershed
    print(f"terrain {grid.shape[0]}x{grid.shape[1]}: "
          f"{ws.n_watersheds} watersheds, "
          f"{ws.n_messages} time-forward messages "
          f"({ws.pq_spilled_runs} external PQ spills), "
          f"{out.sort_io_blocks} sort I/O blocks")
    print()
    print(ascii_map(ws.label_grid(grid)))
    print()

    peak = np.unravel_index(out.flow.accumulation.argmax(), grid.shape)
    print(f"largest upstream area: {out.flow.accumulation.max()} cells "
          f"draining through cell {peak}")

    params = fig9_params(n_asus=16)
    speedups = step_speedups(params, n_cells=1 << 17)
    print("\nactive-storage speedup per step (16 ASUs):")
    for step, s in speedups.items():
        note = "easily distributed" if s > 1.5 else "order-dependent, stays on host"
        print(f"  {step:12s} {s:5.2f}x   ({note})")


if __name__ == "__main__":
    main()
