#!/usr/bin/env python
"""Serve three tenants' mixed jobs on one shared fleet (repro.sched).

Submits the same seeded open-loop arrival stream — DSM-Sorts, filter-scans
and R-tree builds from three tenants with unequal shares — to the shared
active-storage fleet under FIFO and fair-share queueing, at an offered load
well past the fleet's measured capacity.  FIFO lets the flooding tenant
drain in arrival order and fairness collapses; deficit-round-robin keeps
per-tenant goodput proportional to shares.

Run:  python examples/multi_tenant.py [n_jobs]
"""

import sys

from repro.sched import run_serve


def main(n_jobs: int = 40) -> None:
    report = run_serve(
        policies=("fifo", "fair"),
        load_factors=(0.6, 3.0),
        n_jobs=n_jobs,
    )
    print(report.render())

    top = max(c["load_factor"] for c in report.cells)
    fifo = next(
        c for c in report.cells
        if c["policy"] == "fifo" and c["load_factor"] == top
    )
    fair = next(
        c for c in report.cells
        if c["policy"] == "fair" and c["load_factor"] == top
    )
    print(f"\nat {top:.1f}x fleet capacity:")
    for cell in (fifo, fair):
        per = ", ".join(
            f"{name}={t['goodput_units']:.0f}u/share {t['share']:.1f}"
            for name, t in sorted(cell["per_tenant"].items())
        )
        print(f"  {cell['policy']:>4}: jain={cell['jain_fairness']:.3f}  {per}")
    print(
        f"\nfair share beats FIFO on Jain fairness at saturation: "
        f"{fair['jain_fairness']:.3f} > {fifo['jain_fairness']:.3f}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
