#!/usr/bin/env python
"""Regenerate the paper's Figure 10 (host utilization under skew).

Run:  python examples/figure10.py [n_records_log2]
"""

import sys

from repro.bench import run_figure10


def main() -> None:
    log_n = int(sys.argv[1]) if len(sys.argv) > 1 else 17
    result = run_figure10(n_records=1 << log_n)
    print(result.render())


if __name__ == "__main__":
    main()
