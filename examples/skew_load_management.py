#!/usr/bin/env python
"""Load management under skew: the paper's Figure 10, as a script.

Runs the DSM-Sort sort phase on 2 hosts and 16 ASUs with a workload whose
first half is uniform and second half exponential.  With static bucket
ownership one host drowns while the other idles; with simple randomization
(SR) routing both hosts stay busy and the job finishes earlier.

Run:  python examples/skew_load_management.py
"""

from repro.bench import run_figure10


def main() -> None:
    result = run_figure10(n_records=1 << 17)
    print(result.render())

    saved = 1.0 - result.makespan_managed / result.makespan_static
    print(f"load management finished {saved:.0%} earlier and kept the "
          f"record split balanced ({result.imbalance_managed:.2f} vs "
          f"{result.imbalance_static:.2f} max/mean).")


if __name__ == "__main__":
    main()
