#!/usr/bin/env python
"""Kill the sort coordinator mid-run and resume it from the manifest
(repro.recovery).

Runs a fault-free DSM-Sort for reference, then kills the whole job at 40%
of the reference makespan and lets the :class:`JobSupervisor` restart it
from the write-ahead run manifest.  The resumed attempt skips every shard
and durable run the first attempt completed, and the final output is
*byte-identical* to the uninterrupted reference — the tentpole proof of
equivalence.

Run:  python examples/checkpoint_restart.py [n_records_log2]
"""

import hashlib
import sys

import numpy as np

from repro.core import DSMConfig
from repro.emulator.params import SystemParams
from repro.recovery import RecoverableSort, RestartBudget


def main(log_n: int = 14) -> None:
    n = 1 << log_n
    params = SystemParams(
        n_hosts=2,
        n_asus=16,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )
    cfg = DSMConfig.for_n(n, alpha=16, gamma=16)

    def digest(arr: np.ndarray) -> str:
        return hashlib.sha256(arr.tobytes()).hexdigest()[:16]

    # Uninterrupted reference: one attempt, no crashes.
    ref = RecoverableSort(params, cfg, seed=3, policy="sr")
    rep0 = ref.run_supervised()
    out_ref = ref.output()
    t0 = rep0.total_virtual_time
    print(f"reference run: {t0:.4f}s (N={n}, D=16, H=2), "
          f"sha256={digest(out_ref)}")

    # Kill the coordinator at 40% of the reference makespan.  The manifest
    # survives; everything else (platform, in-flight state) is lost.
    crash_at = 0.4 * t0
    sort = RecoverableSort(params, cfg, seed=3, policy="sr")
    rep = sort.run_supervised(
        crashes=[crash_at], budget=RestartBudget(max_restarts=3)
    )
    out = sort.output()

    print(f"\ncoordinator killed at t={crash_at:.4f}s "
          f"({crash_at / t0:.0%} of reference makespan)")
    for i, outcome in enumerate(rep.outcomes):
        tag = f"crashed in {outcome.phase}" if outcome.crashed else "completed"
        extra = ""
        if outcome.restored_pass1:
            extra = ", pass 1 adopted from the manifest"
        elif outcome.pass2 is not None and outcome.pass2.n_restored_buckets:
            extra = (f", {outcome.pass2.n_restored_buckets} merged bucket(s) "
                     "adopted from the manifest")
        print(f"  attempt {i}: {tag} after {outcome.makespan:.4f}s{extra}")
    for attempt, rung, backoff in rep.actions:
        print(f"  supervisor: rung '{rung}' before attempt {attempt} "
              f"(backoff {backoff:.4f}s)")

    mani = sort.manifest.report()
    print(f"\nmanifest: {mani['n_entries']} journal entries, "
          f"{mani['bytes_logged']} bytes charged through the emulated disk")
    print(f"total virtual time incl. restart: {rep.total_virtual_time:.4f}s "
          f"({rep.total_virtual_time / t0:.2f}x reference)")

    identical = np.array_equal(out_ref, out)
    print(f"resumed output sha256={digest(out)} -> "
          f"{'BYTE-IDENTICAL to reference' if identical else 'MISMATCH'}")
    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 14)
