#!/usr/bin/env python
"""Adaptive configuration: let the load manager pick α for the platform.

Sweeps platforms from 2 to 64 ASUs and shows how the configuration solver
shifts computation toward the distribute phase (higher α) as aggregate ASU
power grows — the mechanism behind the paper's Figure 9 "adaptive" series.

Run:  python examples/adaptive_sort.py
"""

from repro import ConfigSolver, predict_pass1
from repro.bench.fig9 import fig9_params
from repro.dsmsort import DsmSortJob


def main() -> None:
    n_records = 1 << 17
    print(f"{'ASUs':>5s} {'alpha':>6s} {'beta':>7s} {'predicted rec/s':>16s} "
          f"{'emulated rec/s':>15s} {'bottleneck':>10s}")
    for d in (2, 4, 8, 16, 32, 64):
        params = fig9_params(n_asus=d)
        solver = ConfigSolver(params, gamma=64)
        cfg = solver.choose(n_records)

        pred = predict_pass1(params, cfg.alpha, cfg.beta)
        job = DsmSortJob(params, cfg, seed=1)
        res = job.run_pass1()
        emulated_rate = n_records / res.makespan

        print(
            f"{d:5d} {cfg.alpha:6d} {cfg.beta:7d} "
            f"{pred.bottleneck_rate:16.0f} {emulated_rate:15.0f} "
            f"{pred.bottleneck:>10s}"
        )

    print("\nMore ASUs -> the solver raises alpha, shifting compares per")
    print("record from the host's block sort to the ASUs' distribute.")


if __name__ == "__main__":
    main()
