#!/usr/bin/env python
"""Quickstart: emulate a DSM-Sort on an active-storage platform.

Builds a platform of one host and 16 ASUs (each 1/8 the host's speed, as in
the paper's experiments), sorts a million 128-byte records with the
distribute/sort/merge plan, and verifies the emulated computation really
sorted the data.

Run:  python examples/quickstart.py
"""

from repro import DSMConfig, DsmSortJob, SystemParams
from repro.util.units import fmt_time


def main() -> None:
    n_records = 1 << 18

    # 1. Describe the platform: H hosts, D ASUs, CPU ratio c, disk/net rates.
    params = SystemParams(n_hosts=1, n_asus=16, asu_ratio=8.0)
    print(f"platform: {params.describe()}")

    # 2. Pick a DSM-Sort plan: alpha-way distribute, beta-record runs,
    #    gamma-way merge, with alpha * beta * gamma = n (paper §4.3).
    config = DSMConfig.for_n(n_records, alpha=64, gamma=64)
    print(f"plan:     {config.describe()}")

    # 3. Emulate pass 1 (run formation): ASUs distribute, the host sorts.
    job = DsmSortJob(params, config, policy="sr", workload="uniform", seed=7)
    pass1 = job.run_pass1()
    print(f"pass 1:   {fmt_time(pass1.makespan)}  "
          f"host util {pass1.host_util[0]:.0%}  "
          f"{pass1.n_runs} sorted runs striped over {params.n_asus} ASUs")

    # 4. Emulate pass 2 (final merge) and check the output.
    pass2 = job.run_pass2()
    print(f"pass 2:   {fmt_time(pass2.makespan)}")
    job.verify()
    print(f"verified: output is a sorted permutation of all {n_records} records")


if __name__ == "__main__":
    main()
