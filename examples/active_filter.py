#!/usr/bin/env python
"""Active filtering at the storage: the paper's §2 bandwidth argument.

A selective scan ("keep records with keys in the bottom 10%") runs either at
the host (passive storage streams everything over the interconnect) or at
the ASUs (only survivors cross the wire).  The example prints the traffic
and time for both placements and verifies both produce the same records.

Run:  python examples/active_filter.py
"""

from repro.apps.filterscan import FilterScanJob
from repro.bench.fig9 import fig9_params
from repro.util.units import fmt_bytes, fmt_time


def main() -> None:
    n = 1 << 17
    threshold = int((2**32 - 1) * 0.10)   # ~10% selectivity
    job = FilterScanJob(
        fig9_params(n_asus=16),
        n_records=n,
        predicate=lambda b: b["key"] < threshold,
        seed=3,
    )

    print(f"scanning {n} records for keys in the bottom 10% (16 ASUs)\n")
    print(f"{'placement':>10s} {'makespan':>10s} {'interconnect':>13s} "
          f"{'host util':>10s} {'selected':>9s}")
    results = {}
    for active in (False, True):
        stats, out = job.run(active=active)
        job.verify(out)
        name = "ASU" if active else "host"
        results[name] = stats
        print(f"{name:>10s} {fmt_time(stats.makespan):>10s} "
              f"{fmt_bytes(stats.net_bytes):>13s} {stats.host_util:>9.0%} "
              f"{stats.n_selected:>9d}")

    saved = 1 - results["ASU"].net_bytes / results["host"].net_bytes
    print(f"\nfiltering at the storage removed {saved:.0%} of the "
          f"interconnect traffic — the paper's §2 claim, verified on "
          f"identical outputs.")


if __name__ == "__main__":
    main()
