#!/usr/bin/env python
"""Distributed R-trees: partition vs stripe organisations (paper §4.2, Fig 5).

Bulk-loads an R-tree over clustered spatial points, splits it across 8 ASUs
both ways, and emulates (a) one large query — where striping bounds latency —
and (b) a batch of 64 concurrent small queries — where partitioning wins on
throughput.

Run:  python examples/rtree_demo.py
"""

from repro.apps.rtree import DistributedRTree, clustered_points, window_queries
from repro.emulator.params import SystemParams
from repro.util.rng import RngRegistry
from repro.util.units import fmt_time


def main() -> None:
    rng = RngRegistry(12).get("spatial")
    pts = clustered_points(rng, 16000, n_clusters=12)
    params = SystemParams(n_hosts=1, n_asus=8)

    orgs = {
        "partition": DistributedRTree(pts, params, "partition", page=16),
        "stripe": DistributedRTree(pts, params, "stripe", page=16),
    }

    big = window_queries(rng, 1, window=400.0)
    batch = window_queries(rng, 64, window=25.0)

    print(f"{'organisation':>12s} {'1 big query':>14s} {'64-query batch':>16s} "
          f"{'fanout':>7s}")
    for name, tree in orgs.items():
        s1 = tree.run_queries(big)
        sb = tree.run_queries(batch)
        print(f"{name:>12s} {fmt_time(s1.max_latency):>14s} "
              f"{sb.throughput:13.0f} q/s {sb.mean_fanout:7.2f}")

    # Both organisations return identical results.
    a = orgs["partition"].query_local(big[0])
    b = orgs["stripe"].query_local(big[0])
    assert (a == b).all()
    print(f"\nboth organisations agree: {a.shape[0]} points in the big window")
    print("stripe bounds single-query latency (all ASUs search in parallel);")
    print("partition sustains more concurrent queries (searches spread out).")


if __name__ == "__main__":
    main()
