#!/usr/bin/env python
"""Crash an ASU mid-sort and watch the platform recover (repro.faults).

Runs DSM-Sort run formation in fault-tolerant mode, fail-stops one of the 16
ASUs halfway through, and prints the detection/recovery report plus the
makespan cost.  The output is still a complete, verified sort.

Run:  python examples/fault_recovery.py [n_records_log2]
"""

import sys

from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import FaultPlan, crash_asu


def main(log_n: int = 16) -> None:
    n = 1 << log_n
    params = SystemParams(
        n_hosts=2,
        n_asus=16,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )
    cfg = DSMConfig.for_n(n, alpha=16, gamma=16)

    def job(faults, **kw):
        return DsmSortJob(
            params, cfg, policy="sr", active=True, seed=3, faults=faults, **kw
        )

    t0 = job(FaultPlan()).run_pass1().makespan
    print(f"fault-free run formation: {t0:.4f}s (N={n}, D=16, H=2)")

    plan = FaultPlan([crash_asu(0.5 * t0, 5)])
    j = job(plan, heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10)
    res = j.run_pass1()
    print(f"\n{plan.faults[0].describe()}")
    print(res.fault_report.render())
    print(
        f"\nrecovery traffic: {res.n_takeover_blocks} takeover block(s), "
        f"{res.n_reemitted_runs} re-emitted run(s), "
        f"{res.n_replayed_frags} replayed fragment(s)"
    )
    print(f"makespan with recovery: {res.makespan:.4f}s "
          f"({res.makespan / t0:.2f}x fault-free)")

    j.run_pass2()
    j.verify()
    print("output verified sorted despite the crash")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 16)
