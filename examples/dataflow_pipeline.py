#!/usr/bin/env python
"""Compose and place a functor pipeline with the generic executor.

Builds the dataflow  SOURCE -> normalize (map) -> keep (filter) -> SINK,
then runs it twice: with the functors placed on the 8 ASUs (active storage)
and with everything at the host (passive storage).  Identical outputs,
very different traffic and host load — placement is a *system* decision,
which is the paper's whole point.

Run:  python examples/dataflow_pipeline.py
"""

import numpy as np

from repro.bench.fig9 import fig9_params
from repro.core import Placement, PipelineJob
from repro.functors import Dataflow, FilterFunctor, MapFunctor
from repro.util.distributions import make_workload
from repro.util.records import make_records
from repro.util.rng import RngRegistry
from repro.util.units import fmt_bytes, fmt_time


def main() -> None:
    params = fig9_params(n_asus=8)
    rngs = RngRegistry(8)
    n = 1 << 16
    data = [
        make_workload(rngs.get(f"w.{d}"), n // 8, "uniform", params.schema)
        for d in range(8)
    ]

    def normalize(batch):
        # Fold keys into a 16-bit bucket id (a cheap feature extraction).
        return make_records((batch["key"] >> 16).astype(np.uint32), params.schema)

    def build_graph():
        g = Dataflow()
        g.add_stage("normalize", MapFunctor(normalize, compares=1), replicas=8)
        g.add_stage("keep", FilterFunctor(lambda b: b["key"] < 6554), replicas=8)  # ~10%
        g.connect(Dataflow.SOURCE, "normalize", kind="set")
        g.connect("normalize", "keep", kind="set")
        g.connect("keep", Dataflow.SINK, kind="set")
        return g

    def run(node_class):
        g = build_graph()
        p = Placement()
        instances = list(range(8)) if node_class == "asu" else [0]
        if node_class == "host":
            g.stages["normalize"].replicas = 1
            g.stages["keep"].replicas = 1
        p.assign("normalize", node_class, instances)
        p.assign("keep", node_class, instances)
        return PipelineJob(params, g, p, data, seed=1).run()

    print(f"pipeline: normalize -> keep (10% selective), {n} records, 8 ASUs\n")
    print(f"{'placement':>10s} {'makespan':>10s} {'interconnect':>13s} {'host util':>10s}")
    outs = {}
    for node_class in ("host", "asu"):
        res = run(node_class)
        outs[node_class] = np.sort(res.output["key"])
        print(f"{node_class:>10s} {fmt_time(res.makespan):>10s} "
              f"{fmt_bytes(res.net_bytes):>13s} {res.host_util[0]:>9.0%}")

    assert np.array_equal(outs["host"], outs["asu"])
    print(f"\nidentical outputs ({outs['host'].shape[0]} records); only the "
          f"mapping of functors to processing elements changed.")


if __name__ == "__main__":
    main()
