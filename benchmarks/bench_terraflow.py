"""Ablation — TerraFlow per-step distribution (§4.1).

"Thus data parallelism in ASUs may improve the first two steps of the
watershed computation considerably while offering limited improvement of the
final step."
"""

import numpy as np
from conftest import bench_n

from repro.apps.terraflow import (
    step_speedups,
    synthetic_dem,
    terraflow_pipeline,
    watershed_reference,
)
from repro.emulator.params import SystemParams
from repro.util.rng import RngRegistry


def test_terraflow_step_speedups(once):
    n_cells = bench_n(quick=1 << 17, full=1 << 20)
    params = SystemParams(
        n_hosts=1,
        n_asus=16,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )
    speedups = once(step_speedups, params, n_cells)

    print()
    print(f"TerraFlow step speedups with 16 ASUs (n={n_cells} cells)")
    for step, s in speedups.items():
        print(f"  {step:12s} {s:6.2f}x")

    # Steps 1-2 parallelise well on ASUs; step 3 barely moves (<= ~1).
    assert speedups["restructure"] > 2.0
    assert speedups["sort"] > 2.0
    assert speedups["watershed"] < 1.2


def test_terraflow_pipeline_end_to_end(once):
    side = bench_n(quick=48, full=128)
    rng = RngRegistry(17).get("dem")
    grid = synthetic_dem(side, side, rng, n_pits=6)

    out = once(terraflow_pipeline, grid)

    assert np.array_equal(out.watershed.labels, watershed_reference(grid))
    assert out.watershed.n_watersheds >= 1
    assert out.flow.accumulation.sum() >= grid.n_cells
    print()
    print(
        f"TerraFlow pipeline on {side}x{side} grid: "
        f"{out.watershed.n_watersheds} watersheds, "
        f"{out.watershed.n_messages} TFP messages, "
        f"{out.sort_io_blocks} sort I/O blocks"
    )
