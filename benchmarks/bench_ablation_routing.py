"""Ablation — routing policies under skew (§3.3: "Different load balancing
methods can be used, depending on the amount of information available")."""

from conftest import bench_n

from repro.bench import sweep_routing


def test_ablation_routing(once):
    n = bench_n(quick=1 << 16, full=1 << 18)
    result = once(sweep_routing, n_records=n)
    print()
    print(result.render())

    by = dict(zip(result.xs, zip(result.series["makespan(s)"],
                                 result.series["imbalance(max/mean)"])))
    # Static is the worst policy under skew; every balancing policy beats it.
    for policy in ("round_robin", "sr", "rc", "jsq", "adaptive_switch"):
        assert by[policy][0] < by["static"][0], policy
        assert by[policy][1] < by["static"][1], policy
    # SR, RC and JSQ all keep the split near-perfect.
    assert by["sr"][1] < 1.1
    assert by["rc"][1] < 1.1
    assert by["jsq"][1] < 1.1
    # The mid-run switcher pays for its static start but still recovers most
    # of the gap to the always-balanced policies.
    assert by["adaptive_switch"][1] < by["static"][1]
