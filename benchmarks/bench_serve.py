"""Multi-tenant serving — queue policy × offered load sweep (repro.sched).

Three tenants with unequal shares (one an open-loop flooder) submit the
same seeded mix of DSM-Sorts, filter-scans and R-tree builds to one shared
3-host / 6-ASU fleet.  The sweep replays that arrival stream under FIFO,
deficit-round-robin fair share, and preemptive priority-with-aging, at
offered loads of 0.5x, 1.2x and 3.0x the fleet's measured capacity.

The committed scenario behind the scheduling tentpole's headline claim:
past saturation, FIFO drains the flooding tenant in arrival order and its
Jain fairness index collapses, while fair share keeps per-tenant goodput
in share proportion.  The whole sweep is deterministic — a second run with
the same seed must reproduce the report byte-for-byte — and the emitted
``BENCH_serve.json`` is pinned by the regress gate.
"""

from conftest import bench_n

from repro.sched import run_serve
from repro.bench.report import write_bench_json

LOADS = (0.5, 1.2, 3.0)
#: fair share must beat FIFO on Jain fairness by at least this at saturation
JAIN_MARGIN = 0.05


def run_sweep(n_jobs: int):
    return run_serve(n_jobs=n_jobs, load_factors=LOADS)


def _cell(report, policy, factor):
    return next(
        c for c in report.cells
        if c["policy"] == policy and c["load_factor"] == factor
    )


def test_serve_policy_sweep(once):
    n_jobs = bench_n(quick=40, full=120)
    report = once(run_sweep, n_jobs)
    print()
    print(report.render())
    write_bench_json("serve", report.as_dict())

    # (1) Every cell accounts for every job: completed + rejected + failed.
    for c in report.cells:
        assert c["n_completed"] + c["n_rejected"] + c["n_failed"] == c["n_jobs"]

    # (2) Below saturation the policies are equivalent: everything completes.
    for policy in ("fifo", "fair", "priority"):
        under = _cell(report, policy, 0.5)
        assert under["n_completed"] == under["n_jobs"]
        assert under["n_rejected"] == 0

    # (3) The headline: fair share beats FIFO on Jain fairness at 3x load.
    fifo, fair = _cell(report, "fifo", 3.0), _cell(report, "fair", 3.0)
    assert fair["jain_fairness"] > fifo["jain_fairness"] + JAIN_MARGIN

    # (4) Saturation actually bites under FIFO: queues grow past the
    # sub-saturation level.
    assert fifo["queue_depth_p90"] > _cell(report, "fifo", 0.5)["queue_depth_p90"]

    # (5) The priority policy protects the tight-SLO tenant at saturation.
    prio = _cell(report, "priority", 3.0)
    assert prio["slo_attainment"] >= fifo["slo_attainment"]

    # (6) Bit-identical reproducibility: same seed, same bytes.
    assert run_sweep(n_jobs).to_json() == report.to_json()
