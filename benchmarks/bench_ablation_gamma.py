"""Ablation — the merge split γ1·γ2 = γ between ASUs and hosts (§4.3:
"The merge is divided between hosts and ASUs, so that γ1γ2 = γ")."""

from conftest import bench_n

from repro.bench import sweep_gamma_split


def test_ablation_gamma_split(once):
    n = bench_n(quick=1 << 15, full=1 << 17)
    result = once(sweep_gamma_split, n_records=n)
    print()
    print(result.render())

    makespans = result.series["pass2 makespan(s)"]
    # Offloading some of the merge fan-in to the ASUs (gamma1 > 1) must beat
    # a host-only merge (gamma1 = 1) on this host-bottlenecked platform.
    host_only = makespans[result.xs.index(1)]
    best = min(makespans)
    assert best < host_only
