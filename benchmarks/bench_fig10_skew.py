"""Figure 10 — effect of skew with and without load management (paper §6).

Two hosts, 16 ASUs, DSM-Sort sort phase; first half of the input uniform,
second half exponential.  Static bucket ownership unbalances the hosts; the
SR load-managed run keeps utilizations nearly identical and finishes earlier.
"""

import numpy as np
from conftest import bench_n

from repro.bench import run_figure10
from repro.bench.fig10 import fig10_params
from repro.bench.report import write_bench_json


def test_figure10_skew(once):
    n = bench_n(quick=1 << 17, full=1 << 20)
    result = once(run_figure10, n_records=n)
    print()
    print(result.render())
    write_bench_json(
        "fig10_skew",
        {
            "params": fig10_params().as_dict(),
            "alpha": 16,
            "gamma": 64,
            "n_records": result.n_records,
            "makespan_static": result.makespan_static,
            "makespan_managed": result.makespan_managed,
            "imbalance_static": result.imbalance_static,
            "imbalance_managed": result.imbalance_managed,
            "times": result.times,
            "series": result.series,
        },
    )

    # (1) Load management finishes earlier.
    assert result.makespan_managed < result.makespan_static
    # (2) The static run routes most records to one host.
    assert result.imbalance_static > 1.3
    # (3) SR keeps the split balanced.
    assert result.imbalance_managed < 1.1

    # (4) In the managed run the two hosts' traces are nearly identical
    #     while work remains; in the static run they diverge.
    m0 = np.array(result.series["managed.host0"])
    m1 = np.array(result.series["managed.host1"])
    s0 = np.array(result.series["static.host0"])
    s1 = np.array(result.series["static.host1"])
    active = m0 + m1 > 0.5  # samples where the managed run is still working
    managed_gap = np.abs(m0[active] - m1[active]).mean()
    static_gap = np.abs(s0 - s1).mean()
    assert managed_gap < 0.15
    assert static_gap > 2 * managed_gap
