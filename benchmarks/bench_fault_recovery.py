"""Fault recovery — makespan degradation vs. failure time (repro.faults).

Two hosts, 16 ASUs, DSM-Sort run formation in fault-tolerant mode.  One ASU
is crashed at {0.2, 0.5, 0.8} of the fault-free makespan; the run must still
complete and verify, and the table reports the makespan ratio, detection
latency, and MTTR for each crash time.  A late crash loses more durable runs
(more re-emission) but leaves less remaining work, so degradation stays
bounded across the sweep — the acceptance bound is 2x for a single crash.

The whole experiment is deterministic: a second run with the same seed and
plan must reproduce every number bit-for-bit.
"""

from conftest import bench_n

from repro.bench.report import render_series_table, write_bench_json
from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import FaultPlan, crash_asu

CRASH_FRACTIONS = (0.2, 0.5, 0.8)
CRASHED_ASU = 5


def recovery_params():
    return SystemParams(
        n_hosts=2,
        n_asus=16,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )


def run_recovery_sweep(n_records: int, seed: int = 3):
    """Crash one ASU at each fraction of the fault-free makespan."""
    params = recovery_params()
    cfg = DSMConfig.for_n(n_records, alpha=16, gamma=16)

    def job(faults, **kw):
        return DsmSortJob(
            params, cfg, policy="sr", active=True, seed=seed, faults=faults, **kw
        )

    t0 = job(FaultPlan()).run_pass1().makespan
    # Heartbeat cadence sized to the workload: detection must resolve well
    # inside the run (see docs/FAULTS.md).
    hb = dict(heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10)

    rows = {"ratio": [], "detect_latency": [], "mttr": [], "reemitted_runs": []}
    for frac in CRASH_FRACTIONS:
        plan = FaultPlan([crash_asu(frac * t0, CRASHED_ASU)])
        j = job(plan, **hb)
        res = j.run_pass1()
        j.run_pass2()
        j.verify()
        rep = res.fault_report
        rows["ratio"].append(res.makespan / t0)
        rows["detect_latency"].append(rep.mean_detection_latency())
        rows["mttr"].append(rep.mean_mttr())
        rows["reemitted_runs"].append(res.n_reemitted_runs)
    return t0, rows


def test_fault_recovery_sweep(once):
    n = bench_n(quick=1 << 16, full=1 << 19)
    t0, rows = once(run_recovery_sweep, n)
    print()
    print(
        render_series_table(
            "crash_at",
            [f"{f:.1f}*T0" for f in CRASH_FRACTIONS],
            rows,
            title=f"ASU crash recovery, N={n}, fault-free T0={t0:.4f}s",
        )
    )
    write_bench_json(
        "fault_recovery",
        {
            "params": recovery_params().as_dict(),
            "n_records": n,
            "seed": 3,
            "crash_fractions": list(CRASH_FRACTIONS),
            "crashed_asu": CRASHED_ASU,
            "t0": t0,
            **rows,
        },
    )

    # (1) Every faulted run recovered within the acceptance bound.
    assert all(1.0 <= r < 2.0 for r in rows["ratio"])
    # (2) Detection stayed within the configured heartbeat bound
    #     (timeout + check interval = T0/10 + T0/40).
    assert all(lat <= t0 / 10 + t0 / 40 for lat in rows["detect_latency"])
    # (3) A later crash strands more durable runs on the dead ASU.
    assert rows["reemitted_runs"][-1] >= rows["reemitted_runs"][0]

    # (4) Bit-identical reproducibility: same seed, same plan, same numbers.
    assert run_recovery_sweep(n) == (t0, rows)
