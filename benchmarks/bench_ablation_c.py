"""Ablation — sensitivity to the host:ASU power ratio c (paper simulates
c = 4 and c = 8; Figure 9 plots c = 8)."""

from conftest import bench_n

from repro.bench import sweep_c


def test_ablation_c(once):
    n = bench_n(quick=1 << 16, full=1 << 18)
    result = once(sweep_c, n_records=n)
    print()
    print(result.render())

    c4, c8 = result.series["c=4"], result.series["c=8"]
    # Twice-as-strong ASUs (c=4) give at least the c=8 speedup everywhere,
    # and strictly more where the ASUs are the bottleneck (few ASUs).
    assert all(a >= b - 0.05 for a, b in zip(c4, c8))
    assert c4[0] > c8[0]
