"""Figure 9 — DSM-Sort pass-1 speedup vs number of ASUs (paper §6, Fig 9).

Regenerates the full sweep: α ∈ {1, 4, 16, 64, 256} plus adaptive, ASU
counts 2..64, one host, c = 8, speedup relative to a passive-storage
baseline.  Prints the series table and plot; asserts the qualitative shape
the paper reports.
"""

from conftest import bench_n

from repro.bench import run_figure9
from repro.bench.fig9 import FIG9_ALPHAS, FIG9_GAMMA, fig9_params
from repro.bench.report import write_bench_json


def test_figure9_speedup(once):
    n = bench_n(quick=1 << 16, full=1 << 19)
    result = once(run_figure9, n_records=n)
    print()
    print(result.render())
    write_bench_json(
        "fig9_speedup",
        {
            # Platform family (c, cost constants); n_asus is the sweep axis.
            "params": fig9_params(result.asu_counts[0]).as_dict(),
            "alphas": list(FIG9_ALPHAS),
            "gamma": FIG9_GAMMA,
            "n_records": result.n_records,
            "asu_counts": result.asu_counts,
            "speedup": result.speedup,
            "baseline_makespan": result.baseline_makespan,
            "adaptive_alpha": result.adaptive_alpha,
        },
    )

    s = result.speedup
    d_index = {d: i for i, d in enumerate(result.asu_counts)}

    # Shape assertions from the paper:
    # (1) high-alpha configs are SLOWER than passive storage with few ASUs;
    assert s["256"][d_index[2]] < 1.0
    assert s["64"][d_index[2]] < 1.0
    # (2) alpha=1 stays near 1x everywhere (same host work as the baseline);
    assert all(0.8 < v < 1.3 for v in s["1"])
    # (3) with many ASUs, higher alpha wins;
    assert s["256"][d_index[64]] > s["16"][d_index[64]] > s["1"][d_index[64]]
    # (4) the best active configuration clearly beats passive storage;
    assert s["256"][d_index[64]] > 1.5
    # (5) each series is (weakly) increasing until its saturation plateau;
    for name in ("1", "4", "16", "64", "256"):
        vals = s[name]
        peak = vals.index(max(vals))
        for i in range(peak):
            assert vals[i] <= vals[i + 1] + 0.05, (name, vals)
    # (6) adaptive tracks the upper envelope of all fixed configurations.
    for i, d in enumerate(result.asu_counts):
        envelope = max(s[str(a)][i] for a in (1, 4, 16, 64, 256))
        assert s["adaptive"][i] >= envelope - 0.1, (d, s["adaptive"][i], envelope)
