"""Ablation — Figure-5 R-tree organisations: partition vs stripe (§4.2).

"Because the latter option stripes leaves across ASUs, every query executes
in parallel on all of the ASUs, which is useful to bound search latency.  The
former option distributes the searches across the ASUs, which is useful in
server applications with many concurrent searches."
"""

from conftest import bench_n

from repro.apps.rtree import DistributedRTree, random_points, window_queries
from repro.emulator.params import SystemParams
from repro.util.rng import RngRegistry


def test_rtree_partition_vs_stripe(once):
    n = bench_n(quick=8000, full=64000)
    rng = RngRegistry(9).get("spatial")
    pts = random_points(rng, n)
    params = SystemParams(n_hosts=1, n_asus=8)

    part = DistributedRTree(pts, params, "partition", page=16)
    stripe = DistributedRTree(pts, params, "stripe", page=16)

    single = window_queries(rng, 1, window=300.0)
    batch = window_queries(rng, 64, window=30.0)

    def run_all():
        return {
            "partition.single": part.run_queries(single),
            "stripe.single": stripe.run_queries(single),
            "partition.batch": part.run_queries(batch),
            "stripe.batch": stripe.run_queries(batch),
        }

    stats = once(run_all)

    print()
    print(f"R-tree organisations (n={n} points, 8 ASUs)")
    print(f"{'case':18s} {'latency(ms)':>12s} {'throughput(q/s)':>16s} {'fanout':>7s}")
    for name, s in stats.items():
        print(
            f"{name:18s} {s.max_latency * 1e3:12.3f} {s.throughput:16.1f} "
            f"{s.mean_fanout:7.2f}"
        )

    # Stripe bounds single-query latency; partition wins batch throughput.
    assert stats["stripe.single"].max_latency < stats["partition.single"].max_latency
    assert stats["partition.batch"].throughput > stats["stripe.batch"].throughput
    # Stripe contacts every ASU; partition a subset.
    assert stats["stripe.batch"].mean_fanout == 8.0
    assert stats["partition.batch"].mean_fanout < 8.0
