"""Shared configuration for the benchmark harness.

Set ``REPRO_BENCH_SCALE=full`` for paper-scale runs (slower); the default
``quick`` scale keeps the whole suite a few minutes while preserving every
qualitative shape.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def bench_n(quick: int, full: int) -> int:
    return full if SCALE == "full" else quick


def bench_workers() -> int:
    """Worker processes for multi-seed sweeps inside benchmarks.

    Benchmarks time wall-clock, so they stay **serial by default** — one
    process gives comparable numbers across machines.  Set
    ``REPRO_BENCH_WORKERS`` to fan seed sweeps out via
    :func:`repro.bench.parallel.parallel_map` (results are merged in seed
    order, so every BENCH_*.json stays byte-identical at any worker count).
    """
    if os.environ.get("REPRO_BENCH_WORKERS"):
        from repro.bench.parallel import resolve_workers

        return resolve_workers(None)
    return 1


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (emulations are deterministic)."""
    benchmark.pedantic  # ensure plugin present

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return run
