"""Shared configuration for the benchmark harness.

Set ``REPRO_BENCH_SCALE=full`` for paper-scale runs (slower); the default
``quick`` scale keeps the whole suite a few minutes while preserving every
qualitative shape.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")


def bench_n(quick: int, full: int) -> int:
    return full if SCALE == "full" else quick


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (emulations are deterministic)."""
    benchmark.pedantic  # ensure plugin present

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

    return run
