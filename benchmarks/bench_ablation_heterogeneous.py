"""Ablation — heterogeneous hosts (§3.3).

"Routing policies may also consider static information about node capacity
to handle heterogeneous processing rates."

Two hosts, one at full clock and one at half clock, 16 ASUs.  SR splits the
records 50/50 — the slow host becomes the straggler.  Capacity-weighted
routing (2:1) and join-shortest-queue both respect the clock gap.
"""

from conftest import bench_n

from repro.bench.fig9 import fig9_params
from repro.core import ConfigSolver
from repro.dsmsort import DsmSortJob


def test_ablation_heterogeneous_hosts(once):
    n = bench_n(quick=1 << 16, full=1 << 18)
    params = fig9_params(n_asus=16, n_hosts=2).with_(
        host_clock_multipliers=(1.0, 0.5)
    )
    cfg = ConfigSolver(params, gamma=64).config_for_alpha(n, 16)

    def run_all():
        out = {}
        for policy in ("sr", "weighted", "jsq"):
            job = DsmSortJob(params, cfg, policy=policy, seed=4)
            res = job.run_pass1()
            out[policy] = res
        return out

    results = once(run_all)

    print()
    print("heterogeneous hosts (clocks 1.0x / 0.5x), 16 ASUs")
    print(f"{'policy':>10s} {'makespan(s)':>12s} {'host0 util':>11s} {'host1 util':>11s}")
    for policy, r in results.items():
        print(f"{policy:>10s} {r.makespan:12.3f} {r.host_util[0]:11.2f} "
              f"{r.host_util[1]:11.2f}")

    # Capacity-aware policies beat the capacity-blind 50/50 split.
    assert results["weighted"].makespan < results["sr"].makespan
    assert results["jsq"].makespan < results["sr"].makespan
    # Under SR the slow host is the straggler: it stays busy while the fast
    # host runs out of work.
    sr = results["sr"]
    assert sr.host_util[1] > sr.host_util[0]
    # Weighted routing keeps both hosts near-equally utilised (the 2:1
    # record split matches the 2:1 clock gap).
    w = results["weighted"]
    assert abs(w.host_util[0] - w.host_util[1]) < 0.15
