"""Ablation — ASUs as shared storage (§1, §3.3 / future work).

"Network storage is a shared resource, and storage-based computation should
not occur if it interferes with storage access for other applications" and
"the load distribution is difficult to determine statically when ASUs are
shared by multiple applications."

A competing application takes (with strict priority) a fraction of every
ASU's CPU.  A configuration chosen for the *idle* platform keeps shipping
work to ASUs that no longer have capacity; the load manager's derated solver
picks a lower α and recovers.
"""

from conftest import bench_n

from repro.bench.fig9 import fig9_params
from repro.core import ConfigSolver
from repro.dsmsort import DsmSortJob


def test_ablation_shared_asus(once):
    n = bench_n(quick=1 << 16, full=1 << 18)
    params = fig9_params(n_asus=16)
    solver = ConfigSolver(params, gamma=64)
    duty = 0.6

    cfg_stale = solver.choose(n)                           # assumes idle ASUs
    cfg_aware = solver.derate_for_sharing(duty).choose(n)  # sees the load

    def run_both():
        t_stale = DsmSortJob(
            params, cfg_stale, seed=1, background_asu_duty=duty
        ).run_pass1().makespan
        t_aware = DsmSortJob(
            params, cfg_aware, seed=1, background_asu_duty=duty
        ).run_pass1().makespan
        t_idle = DsmSortJob(params, cfg_stale, seed=1).run_pass1().makespan
        return t_stale, t_aware, t_idle

    t_stale, t_aware, t_idle = once(run_both)

    print()
    print(f"ASU sharing (16 ASUs, {duty:.0%} of each ASU taken by a competitor)")
    print(f"  idle platform, idle-chosen config (alpha={cfg_stale.alpha}): {t_idle:.3f}s")
    print(f"  shared platform, stale config     (alpha={cfg_stale.alpha}): {t_stale:.3f}s")
    print(f"  shared platform, load-aware config (alpha={cfg_aware.alpha}): {t_aware:.3f}s")

    # Sharing hurts, reconfiguration recovers part of the loss, and the
    # load-aware solver shifts work off the loaded ASUs (lower alpha).
    assert t_stale > t_idle
    assert t_aware < t_stale
    assert cfg_aware.alpha < cfg_stale.alpha
