"""Extension — direct ASU-to-ASU exchange (§5's noted alternative [1, 32]).

Fully offloaded run formation: ASUs distribute and sort among themselves with
no host in the loop.  Each record crosses the interconnect once instead of
twice; with enough ASUs the offloaded sort beats the host-based pipeline
because the single host no longer caps throughput.
"""

from conftest import bench_n

from repro.bench.fig9 import fig9_params
from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob, OffloadedDsmSort


def test_offloaded_vs_host_based(once):
    n = bench_n(quick=1 << 16, full=1 << 18)
    cfg = DSMConfig.for_n(n, alpha=64, gamma=64)

    def run_all():
        rows = []
        for d in (4, 8, 32, 64):
            params = fig9_params(n_asus=d)
            off = OffloadedDsmSort(params, cfg, seed=1)
            r_off = off.run_pass1()
            off.verify()
            r_host = DsmSortJob(params, cfg, seed=1).run_pass1()
            rows.append((d, r_off, r_host))
        return rows

    rows = once(run_all)

    print()
    print(f"{'ASUs':>5s} {'offloaded(s)':>13s} {'host-based(s)':>14s} "
          f"{'off net MiB':>12s} {'host net MiB':>13s}")
    for d, r_off, r_host in rows:
        print(f"{d:5d} {r_off.makespan:13.3f} {r_host.makespan:14.3f} "
              f"{r_off.net_bytes / (1 << 20):12.1f} {r_host.net_bytes / (1 << 20):13.1f}")

    by_d = {d: (r_off, r_host) for d, r_off, r_host in rows}
    # (1) Interconnect traffic roughly halves (one crossing, minus local hits).
    for d, (r_off, r_host) in by_d.items():
        assert r_off.net_bytes < 0.6 * r_host.net_bytes, d
    # (2) Hosts are idle in the offloaded mode.
    assert all(u == 0.0 for r_off, _ in by_d.values() for u in r_off.host_util)
    # (3) Few ASUs: host-based wins; many ASUs: offloaded wins.
    assert by_d[4][1].makespan < by_d[4][0].makespan
    assert by_d[64][0].makespan < by_d[64][1].makespan
