"""Microbench: amortized out-of-order IntervalAccumulator.insert.

Modelled spans are back-dated from their completion instant
(``BusyTracker.add_span`` / ``add_interval``), so busy intervals arrive out
of start order.  The former eager splice — ``bisect`` + ``list.insert`` +
prefix-max rebuild from the splice point — cost O(depth) per insert, where
depth is how far back the span's start lands.  Shallow back-dating is cheap,
but long modelled spans against a slowly advancing clock (queued write-behind
reservations, overlapping transfers) make depth grow with run length and the
accounting quadratic: ~3.5 s for 32k deep inserts versus ~45 ms with the
pending-buffer lazy merge (~76x on the measurement machine, and growing with
n).  This bench times that deep-back-dating pattern end to end, query
included.

No BENCH_*.json is written: wall time is machine-dependent, so this bench
participates in the wall-clock smoke numbers (``--benchmark-json``) but not
in the byte-identity regress gate.
"""

import random

from conftest import bench_n

from repro.util.stats import IntervalAccumulator

N_INSERTS = bench_n(20_000, 200_000)


def run_insert_storm(n: int, seed: int = 11, span: float = 200.0) -> float:
    """n deeply back-dated inserts then one series query.

    Each span ends at an advancing frontier but may have started anywhere in
    the last ``span`` time units — the splice depth the eager implementation
    paid per insert grows with n under this pattern.
    """
    rng = random.Random(seed)
    acc = IntervalAccumulator()
    t = 0.0
    for _ in range(n):
        t += rng.uniform(0.0, 0.1)
        dur = rng.uniform(0.0, span)
        acc.insert(max(0.0, t - dur), t)
    # One query pays the single lazy merge.
    return acc.busy_in(0.0, t)


def test_interval_insert_storm(once):
    busy = once(run_insert_storm, N_INSERTS)
    assert busy > 0.0
