"""Ablation — the external-sort substrate's I/O complexity (§2.1).

Checks that the pass structure follows the Aggarwal–Vitter shape: the number
of merge passes is ceil(log_fanin(N/M)), and total block I/O grows linearly
with passes.  Also times the local DSM-Sort against NumPy's in-memory sort
(the emulator-free lower bound).
"""

import numpy as np
from conftest import bench_n

from repro.bte import MemoryBTE
from repro.containers import RecordStream
from repro.core import DSMConfig
from repro.dsmsort import dsm_sort_local
from repro.tpie import external_sort
from repro.util.distributions import make_workload
from repro.util.rng import RngRegistry
from repro.util.validation import check_sorted_permutation


def test_external_sort_io_complexity(once):
    n = bench_n(quick=1 << 15, full=1 << 18)
    rng = RngRegistry(1).get("w")
    data = make_workload(rng, n, "uniform")

    rows = []
    for fan_in in (2, 4, 16):
        bte = MemoryBTE()
        bte.write_all("in", data)
        before = bte.stats.total_ios
        out, stats = external_sort(
            bte, bte.open("in"), "out", memory_records=n // 64, fan_in=fan_in
        )
        ios = bte.stats.total_ios - before
        check_sorted_permutation(data, bte.read_all(out))
        assert stats.n_merge_passes == stats.expected_merge_passes()
        rows.append((fan_in, stats.n_merge_passes, ios))

    print()
    print("fan-in  merge-passes  block-IOs")
    for fan_in, passes, ios in rows:
        print(f"{fan_in:6d}  {passes:12d}  {ios:9d}")

    # Fewer passes at higher fan-in, and I/O volume shrinks with passes.
    passes = [r[1] for r in rows]
    ios = [r[2] for r in rows]
    assert passes[0] > passes[1] > passes[2] >= 1
    assert ios[0] > ios[2]

    def run():
        bte = MemoryBTE()
        bte.write_all("bench_in", data)
        external_sort(bte, bte.open("bench_in"), "bench_out",
                      memory_records=n // 64, fan_in=8)

    once(run)


def test_dsm_local_vs_numpy(once):
    n = bench_n(quick=1 << 15, full=1 << 18)
    rng = RngRegistry(2).get("w")
    data = make_workload(rng, n, "uniform")
    cfg = DSMConfig.for_n(n, alpha=16, gamma=16)

    def run_dsm():
        bte = MemoryBTE()
        src = RecordStream("in", bte=bte)
        src.append(data)
        out, _ = dsm_sort_local(src, cfg, block_records=4096)
        return out.read_all()

    result = once(run_dsm)
    expect = np.sort(data, order="key", kind="stable")
    assert np.array_equal(result["key"], expect["key"])
