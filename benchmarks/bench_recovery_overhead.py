"""Checkpoint overhead — manifest-on vs. manifest-off DSM-Sort (repro.recovery).

Two hosts, 16 ASUs, fault-free two-pass DSM-Sort.  The same workload runs
once without a run manifest and once journaling every distribute block,
shard completion, durable run, and merged bucket through the write-ahead
manifest (whose I/O is charged simulated time via the emulated disk layer).

The acceptance bound from the recovery tentpole: checkpointing adds less
than 2% to the simulated makespan, and — because the journal is
write-behind and never on the critical path of record flow — the sorted
output is byte-identical with and without it.

The whole experiment is deterministic: a second run with the same seed
must reproduce every number bit-for-bit.
"""

import numpy as np
from conftest import bench_n

from repro.bench.report import render_table, write_bench_json
from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import FaultPlan
from repro.recovery import RunManifest

OVERHEAD_BOUND = 0.02


def overhead_params():
    return SystemParams(
        n_hosts=2,
        n_asus=16,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )


def run_overhead(n_records: int, seed: int = 3):
    """Fault-free sort with and without the write-ahead manifest."""
    params = overhead_params()
    cfg = DSMConfig.for_n(n_records, alpha=16, gamma=16)

    def sort_once(manifest):
        faults = FaultPlan() if manifest is not None else None
        job = DsmSortJob(
            params, cfg, policy="sr", active=True, seed=seed,
            faults=faults, manifest=manifest,
        )
        r1 = job.run_pass1()
        r2 = job.run_pass2()
        job.verify()
        return r1.makespan + r2.makespan, job.collected_output()

    t_off, out_off = sort_once(None)
    manifest = RunManifest()
    t_on, out_on = sort_once(manifest)
    rep = manifest.report()
    return {
        "t_off": t_off,
        "t_on": t_on,
        "overhead_frac": (t_on - t_off) / t_off,
        "byte_identical": bool(np.array_equal(out_off, out_on)),
        "manifest_entries": len(manifest.entries),
        "manifest_bytes": manifest.bytes_logged,
        "manifest_report": rep,
    }


def test_recovery_overhead(once):
    n = bench_n(quick=1 << 16, full=1 << 19)
    res = once(run_overhead, n)
    print()
    print(
        render_table(
            ["variant", "makespan", "overhead"],
            [
                ["manifest off", res["t_off"], 0.0],
                ["manifest on", res["t_on"], res["overhead_frac"]],
            ],
            title=(
                f"checkpoint overhead, N={n}, "
                f"{res['manifest_entries']} journal entries / "
                f"{res['manifest_bytes']} bytes"
            ),
        )
    )
    write_bench_json(
        "recovery_overhead",
        {
            "params": overhead_params().as_dict(),
            "n_records": n,
            "seed": 3,
            "overhead_bound": OVERHEAD_BOUND,
            **{k: v for k, v in res.items() if k != "manifest_report"},
        },
    )

    # (1) The journal is write-behind: well under the 2% acceptance bound.
    assert res["overhead_frac"] < OVERHEAD_BOUND
    # (2) Checkpointing never perturbs the sorted output.
    assert res["byte_identical"]
    # (3) The manifest actually journaled the run (not a silent no-op).
    assert res["manifest_entries"] > 0 and res["manifest_bytes"] > 0

    # (4) Bit-identical reproducibility: same seed, same numbers.
    assert run_overhead(n) == res
