"""Replication kill sweep — recovery cost vs. replication factor (repro.replica).

Two hosts, four ASUs, fault-tolerant two-pass DSM-Sort.  For each
replication factor r in {1, 2, 3} the same workload runs once fault-free
(the makespan baseline) and then once per ASU with that ASU fail-stopped
halfway through the fault-free makespan.

The acceptance contract from the replication tentpole:

- with r >= 2 every kill recovers by *promotion* — zero fragment replay and
  zero run re-emission — because the surviving replicas are already durable;
- every interrupted run produces output byte-identical to the uninterrupted
  reference (replication changes placement, never content);
- mean recovery overhead (kill makespan minus fault-free makespan) at
  r >= 2 is measurably lower than the r=1 re-emission path.

The whole experiment is deterministic: a second run with the same seed must
reproduce every number bit-for-bit.
"""

import hashlib

from conftest import bench_n

from repro.bench.report import render_table, write_bench_json
from repro.core import DSMConfig
from repro.dsmsort import DsmSortJob
from repro.emulator.params import SystemParams
from repro.faults import FaultPlan, crash_asu
from repro.replica import ReplicationConfig

R_VALUES = (1, 2, 3)
#: run emission on this workload bursts in the last ~40% of pass 1, so the
#: kill must land inside that window to strand durable runs on the victim
KILL_FRAC = 0.8
#: detection must resolve well inside the ~0.02s toy makespan
HB = dict(heartbeat_interval=0.002, heartbeat_timeout=0.008)


def replication_params():
    return SystemParams(n_hosts=2, n_asus=4)


def _sort_once(params, cfg, seed, r, faults):
    job = DsmSortJob(
        params, cfg, policy="sr", seed=seed,
        faults=faults, replication=ReplicationConfig(r=r), **HB,
    )
    r1 = job.run_pass1()
    job.run_pass2()
    job.verify()
    digest = hashlib.sha256(job.collected_output().tobytes()).hexdigest()
    return r1, digest


def run_replication(n_records: int, seed: int = 3):
    """Kill sweep across every ASU at each replication factor."""
    params = replication_params()
    cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
    out = {}
    ref_digest = None
    for r in R_VALUES:
        ref, digest = _sort_once(params, cfg, seed, r, FaultPlan([]))
        if ref_digest is None:
            ref_digest = digest
        cases = []
        for asu in range(params.n_asus):
            plan = FaultPlan([crash_asu(KILL_FRAC * ref.makespan, asu)])
            r1, d = _sort_once(params, cfg, seed, r, plan)
            cases.append({
                "asu": asu,
                "completed": bool(r1.completed),
                "recovery": r1.makespan - ref.makespan,
                "n_replayed_frags": int(r1.n_replayed_frags),
                "n_reemitted_runs": int(r1.n_reemitted_runs),
                "n_promoted_runs": int(r1.n_promoted_runs),
                "byte_identical": bool(d == ref_digest),
            })
        out[r] = {
            "t0": ref.makespan,
            "mean_recovery": sum(c["recovery"] for c in cases) / len(cases),
            "n_reemitted_runs": sum(c["n_reemitted_runs"] for c in cases),
            "n_replayed_frags": sum(c["n_replayed_frags"] for c in cases),
            "n_promoted_runs": sum(c["n_promoted_runs"] for c in cases),
            "all_completed": all(c["completed"] for c in cases),
            "all_identical": all(c["byte_identical"] for c in cases),
            "cases": cases,
        }
    return out


def test_replication(once):
    n = bench_n(quick=1 << 13, full=1 << 16)
    res = once(run_replication, n)
    print()
    print(
        render_table(
            ["r", "t0 (s)", "mean recovery (s)", "reemitted", "promoted",
             "identical"],
            [
                [r, f"{res[r]['t0']:.4f}", f"{res[r]['mean_recovery']:.4f}",
                 res[r]["n_reemitted_runs"], res[r]["n_promoted_runs"],
                 "yes" if res[r]["all_identical"] else "NO"]
                for r in R_VALUES
            ],
            title=f"replication kill sweep, N={n}, "
                  f"{replication_params().n_asus} ASUs killed at "
                  f"{KILL_FRAC:.0%} of t0",
        )
    )
    write_bench_json(
        "replication",
        {
            "params": replication_params().as_dict(),
            "n_records": n,
            "seed": 3,
            "kill_frac": KILL_FRAC,
            "sweep": {str(r): res[r] for r in R_VALUES},
        },
    )

    for r in R_VALUES:
        # (1) Every kill case completes and reproduces the reference bytes.
        assert res[r]["all_completed"] and res[r]["all_identical"]
        # (2) Pure ASU kills never replay fragments (host-death machinery).
        assert res[r]["n_replayed_frags"] == 0
    # (3) r >= 2 recovers by promotion alone: zero run re-emission, and the
    # r=1 fallback really exercises the re-emission path it improves on.
    assert res[1]["n_reemitted_runs"] > 0
    for r in (2, 3):
        assert res[r]["n_reemitted_runs"] == 0
        assert res[r]["n_promoted_runs"] > 0
        # (4) Promotion is measurably cheaper than re-emission.
        assert res[r]["mean_recovery"] < res[1]["mean_recovery"]

    # (5) Bit-identical reproducibility: same seed, same numbers.
    assert run_replication(n) == res
