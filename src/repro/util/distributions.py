"""Key-distribution workload generators.

Figure 10's experiment draws the first half of the input from a uniform
distribution and the second half from an exponential distribution, producing
skew that unbalances a statically partitioned distribute phase (§6).  These
generators produce integer keys in the full key range of a
:class:`~repro.util.records.RecordSchema` so the same α-way splitters can be
used regardless of distribution.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from .records import DEFAULT_SCHEMA, RecordSchema, make_records

__all__ = [
    "uniform_keys",
    "exponential_keys",
    "zipf_keys",
    "gaussian_keys",
    "half_uniform_half_exponential",
    "make_workload",
    "KEY_DISTRIBUTIONS",
]


def uniform_keys(
    rng: np.random.Generator, n: int, schema: RecordSchema = DEFAULT_SCHEMA
) -> np.ndarray:
    """Keys uniform over the full key range."""
    return rng.integers(0, schema.key_max, size=n, dtype=np.uint64).astype(
        schema.key_dtype
    )


def exponential_keys(
    rng: np.random.Generator,
    n: int,
    schema: RecordSchema = DEFAULT_SCHEMA,
    scale: float = 0.1,
) -> np.ndarray:
    """Exponentially distributed keys concentrated at the low end of the range.

    ``scale`` is the exponential mean as a fraction of the key range; the
    paper's skew experiment uses an exponential second half, which piles most
    records into the low-key buckets.
    """
    x = rng.exponential(scale=scale, size=n)
    x = np.clip(x, 0.0, 1.0)
    return (x * schema.key_max).astype(schema.key_dtype)


def zipf_keys(
    rng: np.random.Generator,
    n: int,
    schema: RecordSchema = DEFAULT_SCHEMA,
    a: float = 1.5,
) -> np.ndarray:
    """Zipf-distributed keys (heavy head), folded into the key range."""
    z = rng.zipf(a=a, size=n).astype(np.float64)
    x = np.clip(z / 1e4, 0.0, 1.0)
    return (x * schema.key_max).astype(schema.key_dtype)


def gaussian_keys(
    rng: np.random.Generator,
    n: int,
    schema: RecordSchema = DEFAULT_SCHEMA,
    spread: float = 0.15,
) -> np.ndarray:
    """Gaussian keys centred mid-range (mild clustering)."""
    x = rng.normal(loc=0.5, scale=spread, size=n)
    x = np.clip(x, 0.0, 1.0)
    return (x * schema.key_max).astype(schema.key_dtype)


def half_uniform_half_exponential(
    rng: np.random.Generator,
    n: int,
    schema: RecordSchema = DEFAULT_SCHEMA,
    scale: float = 0.1,
) -> np.ndarray:
    """The Figure-10 workload: first half uniform, second half exponential.

    The two halves are kept in arrival order (uniform records arrive first),
    which is what lets the utilization traces show the imbalance developing
    mid-run.
    """
    n_first = n // 2
    first = uniform_keys(rng, n_first, schema)
    second = exponential_keys(rng, n - n_first, schema, scale=scale)
    return np.concatenate([first, second])


KEY_DISTRIBUTIONS: dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform_keys,
    "exponential": exponential_keys,
    "zipf": zipf_keys,
    "gaussian": gaussian_keys,
    "half_uniform_half_exponential": half_uniform_half_exponential,
}


def make_workload(
    rng: np.random.Generator,
    n: int,
    distribution: str = "uniform",
    schema: RecordSchema = DEFAULT_SCHEMA,
    **kwargs,
) -> np.ndarray:
    """Generate ``n`` records with keys drawn from a named distribution."""
    try:
        gen = KEY_DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValueError(
            f"unknown distribution {distribution!r}; "
            f"choose from {sorted(KEY_DISTRIBUTIONS)}"
        ) from None
    keys = gen(rng, n, schema, **kwargs)
    return make_records(keys, schema)
