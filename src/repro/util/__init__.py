"""Shared utilities: records, workloads, stats, units, deterministic RNG."""

from .records import (
    DEFAULT_SCHEMA,
    RecordSchema,
    concat_records,
    empty_records,
    make_records,
    records_nbytes,
)
from .distributions import KEY_DISTRIBUTIONS, make_workload
from .rng import RngRegistry, derive_seed
from .stats import IntervalAccumulator, OnlineStats, TimeSeries
from .validation import (
    check_permutation,
    check_sorted,
    check_sorted_permutation,
    is_sorted,
    key_histogram,
)

__all__ = [
    "DEFAULT_SCHEMA",
    "RecordSchema",
    "concat_records",
    "empty_records",
    "make_records",
    "records_nbytes",
    "KEY_DISTRIBUTIONS",
    "make_workload",
    "RngRegistry",
    "derive_seed",
    "IntervalAccumulator",
    "OnlineStats",
    "TimeSeries",
    "check_permutation",
    "check_sorted",
    "check_sorted_permutation",
    "is_sorted",
    "key_histogram",
]
