"""Fixed-size records, the unit of data in the streaming model.

The paper's experiments sort 128-byte records with 4-byte keys (§6).  We
represent record batches as NumPy structured arrays with a ``key`` field and a
``payload`` byte field; all functors operate on such batches.  A
:class:`RecordSchema` captures the layout so containers and the emulator can
convert between record counts and bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "RecordSchema",
    "DEFAULT_SCHEMA",
    "make_records",
    "records_nbytes",
    "concat_records",
    "empty_records",
    "sort_records",
]


@dataclass(frozen=True)
class RecordSchema:
    """Layout of a fixed-size record: a sortable key plus opaque payload.

    Parameters
    ----------
    record_size:
        Total bytes per record (payload size is derived).
    key_dtype:
        NumPy dtype of the key field; must be a fixed-size scalar type.
    """

    record_size: int = 128
    key_dtype: str = "<u4"

    def __post_init__(self) -> None:
        if self.record_size < self.key_size:
            raise ValueError(
                f"record_size={self.record_size} smaller than key "
                f"({self.key_size} bytes)"
            )

    @property
    def key_size(self) -> int:
        return int(np.dtype(self.key_dtype).itemsize)

    @property
    def payload_size(self) -> int:
        return self.record_size - self.key_size

    @property
    def dtype(self) -> np.dtype:
        """Structured dtype for a batch of records."""
        if self.payload_size:
            return np.dtype(
                [("key", self.key_dtype), ("payload", "V%d" % self.payload_size)]
            )
        return np.dtype([("key", self.key_dtype)])

    @property
    def key_max(self) -> int:
        """Largest representable key value (for integer key dtypes)."""
        dt = np.dtype(self.key_dtype)
        if dt.kind in "iu":
            return int(np.iinfo(dt).max)
        raise TypeError(f"key dtype {dt} has no integer max")

    def nbytes(self, n_records: int) -> int:
        """Bytes occupied by ``n_records`` records."""
        return int(n_records) * self.record_size

    def records_in(self, n_bytes: int) -> int:
        """How many whole records fit in ``n_bytes``."""
        return int(n_bytes) // self.record_size


DEFAULT_SCHEMA = RecordSchema(record_size=128, key_dtype="<u4")


def make_records(
    keys: np.ndarray, schema: RecordSchema = DEFAULT_SCHEMA
) -> np.ndarray:
    """Build a record batch from an array of keys (payload zero-filled)."""
    keys = np.asarray(keys)
    out = np.zeros(keys.shape[0], dtype=schema.dtype)
    out["key"] = keys.astype(schema.key_dtype, copy=False)
    return out


def empty_records(schema: RecordSchema = DEFAULT_SCHEMA) -> np.ndarray:
    """An empty record batch of the given schema."""
    return np.empty(0, dtype=schema.dtype)


def records_nbytes(batch: np.ndarray) -> int:
    """Total bytes of a record batch."""
    return int(batch.nbytes)


def concat_records(batches: list[np.ndarray], schema: RecordSchema = DEFAULT_SCHEMA) -> np.ndarray:
    """Concatenate record batches (empty list yields an empty batch)."""
    if not batches:
        return empty_records(schema)
    if len(batches) == 1:
        return batches[0]
    return np.concatenate(batches)


def sort_records(batch: np.ndarray) -> np.ndarray:
    """Stable sort of a record batch by its ``key`` field.

    Same element order as ``np.sort(batch, order="key", kind="stable")`` for
    the record batches used here (payloads are opaque and zero-filled, so key
    ties are full-record ties and stability pins their order either way), but
    implemented as a stable argsort of the key column plus a take — skipping
    NumPy's per-call structured-dtype field promotion, which dominates the
    cost of small-run sorts.
    """
    if batch.dtype.names:
        return batch[np.argsort(batch["key"], kind="stable")]
    return np.sort(batch, kind="stable")
