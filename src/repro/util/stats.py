"""Small online statistics used by the emulator's instrumentation.

The emulator reports per-node CPU utilization over time (Figure 10) and
aggregate run statistics.  These accumulators avoid storing per-event data:
busy intervals fold into a step function sampled on demand.
"""

from __future__ import annotations

import math
from bisect import bisect_right

__all__ = ["OnlineStats", "IntervalAccumulator", "TimeSeries"]


class OnlineStats:
    """Welford online mean/variance accumulator."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        self._min = min(self._min, x)
        self._max = max(self._max, x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / (self.n - 1) if self.n > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        return self._min if self.n else 0.0

    @property
    def max(self) -> float:
        return self._max if self.n else 0.0

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (parallel Welford merge)."""
        out = OnlineStats()
        n = self.n + other.n
        if n == 0:
            return out
        delta = other.mean - self.mean
        out.n = n
        out._mean = self.mean + delta * other.n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        return out


def _merge_by_start(left, right):
    """Stable merge of two by-start-sorted interval lists, left first on ties."""
    i = j = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        if left[i][0] <= right[j][0]:
            yield left[i]
            i += 1
        else:
            yield right[j]
            j += 1
    yield from left[i:]
    yield from right[j:]


class IntervalAccumulator:
    """Accumulates busy time from (start, end) intervals.

    Used to compute utilization: ``busy_in(w0, w1) / (w1 - w0)``.  Intervals
    must be appended in nondecreasing start order (event time order), which
    the simulator guarantees; :meth:`insert` accepts out-of-order intervals
    for modelled spans that are back-dated from their completion instant.

    Intervals may overlap (queued modelled work); ``busy_in`` sums each
    interval's own overlap with the window, so utilization over 1.0 reports
    overcommit rather than clipping it.
    """

    __slots__ = ("_starts", "_ends", "total_busy", "_max_ends", "_pending")

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._ends: list[float] = []
        self.total_busy: float = 0.0
        #: running prefix maximum of ``ends`` — lets the backward window scan
        #: stop as soon as no earlier interval can still overlap
        self._max_ends: list[float] = []
        #: out-of-order intervals awaiting their sorted splice (lazy merge on
        #: the next query) — keeps :meth:`insert` amortized instead of O(n)
        self._pending: list[tuple[float, float]] = []

    @property
    def starts(self) -> list[float]:
        """Interval starts, sorted (flushes pending out-of-order inserts)."""
        if self._pending:
            self._flush()
        return self._starts

    @property
    def ends(self) -> list[float]:
        """Interval ends, in by-start order (flushes pending inserts)."""
        if self._pending:
            self._flush()
        return self._ends

    def __repr__(self) -> str:
        return (
            f"IntervalAccumulator(n={len(self._starts) + len(self._pending)}, "
            f"total_busy={self.total_busy})"
        )

    def add(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        starts = self._starts
        if starts and start < starts[-1]:
            raise ValueError("intervals must be added in start order")
        starts.append(float(start))
        self._ends.append(float(end))
        prev = self._max_ends[-1] if self._max_ends else -math.inf
        self._max_ends.append(max(prev, float(end)))
        self.total_busy += end - start

    def insert(self, start: float, end: float) -> None:
        """Add an interval at its sorted position (out-of-order tolerant).

        Fast path is an append.  An interval starting before the latest
        start (e.g. a long modelled span ending at the same instant as a
        short one) lands in a pending buffer and is spliced in lazily on
        the next query — the former eager O(n) list splice plus prefix-max
        rebuild *per insert* made disk write-behind accounting quadratic on
        long runs; the lazy merge pays one sort-and-merge per insert→query
        transition instead.  Query results are identical to the eager
        splice: the merged order is the stable by-start order either way.
        """
        if end < start:
            raise ValueError(f"interval end {end} before start {start}")
        if not self._starts or start >= self._starts[-1]:
            self.add(start, end)
            return
        self._pending.append((float(start), float(end)))
        self.total_busy += end - start

    def _flush(self) -> None:
        """Merge pending out-of-order intervals into the sorted arrays."""
        pend = self._pending
        if not pend:
            return
        self._pending = []
        pend.sort(key=lambda iv: iv[0])  # stable: equal starts keep insert order
        starts, ends = self._starts, self._ends
        i = bisect_right(starts, pend[0][0])
        tail = list(zip(starts[i:], ends[i:]))
        del starts[i:]
        del ends[i:]
        del self._max_ends[i:]
        prev = self._max_ends[i - 1] if i > 0 else -math.inf
        # Existing intervals first on ties — where bisect_right would have
        # spliced each pending interval.
        for s, e in _merge_by_start(tail, pend):
            starts.append(s)
            ends.append(e)
            prev = max(prev, e)
            self._max_ends.append(prev)

    def busy_in(self, w0: float, w1: float) -> float:
        """Total busy time overlapping window [w0, w1)."""
        if self._pending:
            self._flush()
        if w1 <= w0:
            return 0.0
        busy = 0.0
        starts, ends, max_ends = self._starts, self._ends, self._max_ends
        # First interval that could overlap: starts before w1.
        hi = bisect_right(starts, w1)
        for i in range(hi - 1, -1, -1):
            if max_ends[i] <= w0:
                # No interval at or before i reaches into the window: every
                # earlier end is <= max_ends[i] <= w0.
                break
            lo = max(starts[i], w0)
            hi_t = min(ends[i], w1)
            if hi_t > lo:
                busy += hi_t - lo
        return busy

    def utilization(self, w0: float, w1: float) -> float:
        """Fraction of [w0, w1) spent busy."""
        if w1 <= w0:
            return 0.0
        return self.busy_in(w0, w1) / (w1 - w0)

    def utilization_series(
        self,
        t_end: float,
        dt: float,
        t_start: float = 0.0,
        open_start: float | None = None,
    ) -> list[tuple[float, float]]:
        """Sampled utilization over [t_start, t_end) in windows of ``dt``.

        Returns (window_midpoint, utilization) pairs — the data behind the
        Figure-10 utilization traces.  Window edges are indexed
        (``t_start + i*dt``) rather than accumulated, so the edge error stays
        at one rounding ulp regardless of run length and the final window is
        neither duplicated nor dropped.

        ``open_start`` accounts a busy interval still in flight at sampling
        time (start known, end not yet): it contributes its overlap with
        every window from ``open_start`` on, exactly as ``busy_in`` would
        count it once closed at ``t_end`` or later.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        span = t_end - t_start
        if span <= 0:
            return []
        n_full = int(span / dt + 1e-9)
        rem = span - n_full * dt
        n = n_full + (1 if rem > dt * 1e-9 else 0)
        out = []
        for i in range(n):
            w0 = t_start + i * dt
            w1 = min(t_start + (i + 1) * dt, t_end)
            busy = self.busy_in(w0, w1)
            if open_start is not None:
                lo = max(open_start, w0)
                if w1 > lo:
                    busy += w1 - lo
            out.append(((w0 + w1) / 2.0, busy / (w1 - w0) if w1 > w0 else 0.0))
        return out


class TimeSeries:
    """A simple (time, value) series with nondecreasing times."""

    def __init__(self) -> None:
        self.times: list[float] = []
        self.values: list[float] = []

    def append(self, t: float, v: float) -> None:
        if self.times and t < self.times[-1]:
            raise ValueError("time series must be appended in time order")
        self.times.append(float(t))
        self.values.append(float(v))

    def __len__(self) -> int:
        return len(self.times)

    def value_at(self, t: float) -> float:
        """Step-function lookup: last value at or before ``t`` (0 if none)."""
        i = bisect_right(self.times, t) - 1
        return self.values[i] if i >= 0 else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0
