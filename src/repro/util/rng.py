"""Deterministic random-stream management.

Every stochastic component in the library draws from a named substream of a
single root seed, so a whole emulation run is reproducible from one integer.
Substreams are derived with :class:`numpy.random.SeedSequence` spawning keyed
by a stable hash of the stream name, which keeps streams independent of the
order in which components are constructed.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic 64-bit child seed from ``root_seed`` and a name.

    Uses CRC32 of the name mixed with the root seed; stable across runs and
    Python processes (unlike :func:`hash`).
    """
    tag = zlib.crc32(name.encode("utf-8"))
    return (root_seed * 0x9E3779B97F4A7C15 + tag) & 0xFFFFFFFFFFFFFFFF


class RngRegistry:
    """A registry of named, independently seeded random generators.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.get("workload")
    >>> b = rngs.get("routing")
    >>> a is rngs.get("workload")
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            seq = np.random.SeedSequence(derive_seed(self.seed, name))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """Return a child registry whose streams are independent of ours."""
        return RngRegistry(derive_seed(self.seed, "fork:" + name))

    def reset(self) -> None:
        """Drop all streams; subsequent ``get`` calls restart their sequences."""
        self._streams.clear()
