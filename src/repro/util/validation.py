"""Correctness checks shared by tests, examples and the bench harness.

The emulator *really executes* functor code on record batches (DESIGN §4.2),
so every emulated sort/merge/distribute can be validated: output must be a
sorted permutation of the input.  These helpers implement those checks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_sorted",
    "check_sorted",
    "check_permutation",
    "check_sorted_permutation",
    "key_histogram",
]


def is_sorted(batch: np.ndarray) -> bool:
    """True if the batch's keys are nondecreasing."""
    keys = batch["key"] if batch.dtype.names else batch
    if keys.shape[0] < 2:
        return True
    return bool(np.all(keys[:-1] <= keys[1:]))


def check_sorted(batch: np.ndarray, what: str = "output") -> None:
    """Raise ``AssertionError`` if keys are not nondecreasing."""
    keys = batch["key"] if batch.dtype.names else batch
    if keys.shape[0] >= 2:
        bad = np.nonzero(keys[:-1] > keys[1:])[0]
        if bad.size:
            i = int(bad[0])
            raise AssertionError(
                f"{what} not sorted at index {i}: "
                f"key[{i}]={keys[i]} > key[{i+1}]={keys[i+1]}"
            )


def check_permutation(inp: np.ndarray, out: np.ndarray, what: str = "output") -> None:
    """Raise ``AssertionError`` unless ``out`` keys are a permutation of ``inp``'s."""
    ki = np.sort(inp["key"] if inp.dtype.names else inp)
    ko = np.sort(out["key"] if out.dtype.names else out)
    if ki.shape != ko.shape:
        raise AssertionError(
            f"{what} has {ko.shape[0]} records, input had {ki.shape[0]}"
        )
    if not np.array_equal(ki, ko):
        raise AssertionError(f"{what} keys are not a permutation of the input keys")


def check_sorted_permutation(inp: np.ndarray, out: np.ndarray, what: str = "output") -> None:
    """Full sort validation: sorted keys *and* a permutation of the input."""
    check_sorted(out, what)
    check_permutation(inp, out, what)


def key_histogram(batch: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Histogram of keys over bucket ``edges`` (as used by the distribute functor)."""
    keys = batch["key"] if batch.dtype.names else batch
    idx = np.searchsorted(edges, keys, side="right")
    return np.bincount(idx, minlength=len(edges) + 1)
