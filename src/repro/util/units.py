"""Units and human-readable formatting helpers.

The emulator expresses CPU work in *cycles*, storage in *bytes*, and time in
*seconds* (floats).  These helpers keep magnitude conversions explicit so the
system parameters in :mod:`repro.emulator.params` read like a spec sheet.
"""

from __future__ import annotations

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "KHZ",
    "MHZ",
    "GHZ",
    "USEC",
    "MSEC",
    "fmt_bytes",
    "fmt_time",
    "fmt_rate",
    "fmt_count",
]

KB = 1 << 10
MB = 1 << 20
GB = 1 << 30
TB = 1 << 40

KHZ = 1_000.0
MHZ = 1_000_000.0
GHZ = 1_000_000_000.0

USEC = 1e-6
MSEC = 1e-3


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary-prefix unit, e.g. ``'12.0 MiB'``."""
    n = float(n)
    for unit, scale in (("TiB", TB), ("GiB", GB), ("MiB", MB), ("KiB", KB)):
        if abs(n) >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Format a duration picking an appropriate unit, e.g. ``'3.42 ms'``."""
    s = float(seconds)
    a = abs(s)
    if a >= 60.0:
        return f"{s / 60.0:.2f} min"
    if a >= 1.0:
        return f"{s:.2f} s"
    if a >= MSEC:
        return f"{s / MSEC:.2f} ms"
    if a >= USEC:
        return f"{s / USEC:.2f} us"
    return f"{s * 1e9:.0f} ns"


def fmt_rate(bytes_per_sec: float) -> str:
    """Format a bandwidth, e.g. ``'25.0 MiB/s'``."""
    return f"{fmt_bytes(bytes_per_sec)}/s"


def fmt_count(n: float) -> str:
    """Format a large count with metric suffix, e.g. ``'1.5M'``."""
    n = float(n)
    for unit, scale in (("G", 1e9), ("M", 1e6), ("K", 1e3)):
        if abs(n) >= scale:
            return f"{n / scale:.1f}{unit}"
    return f"{n:.0f}"
