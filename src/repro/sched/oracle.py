"""The service oracle: real emulated service times for scheduled jobs.

The scheduler never *models* a job's runtime — it **measures** it by running
the job's actual emulation on the sliced platform its lease grants.  Leases
are exclusive (disjoint node sets), so the single-job emulation is an exact
account of the job's service time on the shared fleet.  Everything is
deterministic in ``(spec, slice shape, routing hints)``, so measured
makespans are memoized: a workload of thousands of jobs drawn from a
template mix costs one emulation per distinct template, not per job.

Preemption semantics per app class:

* ``dsmsort`` is **checkpointable**: runs under PR 5's
  :class:`~repro.recovery.checkpoint.RecoverableSort`, journaling to a
  :class:`~repro.recovery.manifest.RunManifest`.  A preemption is a
  ``crash_coordinator`` at the preempt instant; on re-dispatch the oracle
  *replays* the job's crash history against a fresh manifest and measures
  the genuine resumed makespan — completed shards/runs/buckets are not
  re-done, exactly as a production resume would behave.
* ``filterscan`` / ``rtree`` are **kill-and-requeue**: preemption discards
  the segment's work; the job restarts from scratch when next dispatched,
  charged against its :class:`~repro.recovery.supervisor.RestartBudget`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.config import DSMConfig
from ..emulator.params import SystemParams
from .job import JobSpec

__all__ = ["ServiceOracle"]


#: apps whose emulation consumes routing hints; for everything else the
#: hints are normalized out of the memo key so distinct wear-derived hint
#: values on an identical (spec, slice) don't trigger redundant emulations
_HINT_AWARE_APPS = frozenset({"dsmsort"})


def _spec_key(spec: JobSpec, slice_shape: tuple, hints: dict) -> tuple:
    if spec.app in _HINT_AWARE_APPS:
        weights = hints.get("weights")
        hint_key: tuple = (
            hints.get("policy", "sr"), tuple(weights) if weights else None,
        )
    else:
        hint_key = ("sr", None)
    return (
        spec.app, spec.n_records, spec.workload, spec.seed,
        spec.need.replication, slice_shape, *hint_key,
    )


def _dsm_config(n_records: int) -> DSMConfig:
    """Slice-friendly DSM configuration (small alpha/gamma for small jobs)."""
    return DSMConfig.for_n(n_records, alpha=8, gamma=8)


class ServiceOracle:
    """Measures (and memoizes) per-job service times on leased slices."""

    def __init__(self):
        #: (spec key, crash history) -> makespan of the *final* attempt
        self._cache: dict[tuple, float] = {}
        self.n_emulations = 0

    # -- public api ----------------------------------------------------------
    def makespan(
        self,
        spec: JobSpec,
        slice_params: SystemParams,
        hints: Optional[dict] = None,
        crash_instants: tuple = (),
    ) -> float:
        """Service time of the job's next run segment on this slice.

        ``crash_instants`` is the job's preemption history (elapsed virtual
        seconds into each prior segment); non-empty histories are only valid
        for checkpointable apps.
        """
        hints = hints or {}
        shape = (slice_params.n_asus, slice_params.n_hosts)
        key = (_spec_key(spec, shape, hints), tuple(crash_instants))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        if crash_instants and not spec.checkpointable:
            raise ValueError(
                f"app {spec.app!r} is not checkpointable; preempted segments "
                "cannot resume (kill-and-requeue restarts from scratch)"
            )
        runner = getattr(self, f"_run_{spec.app}")
        t = runner(spec, slice_params, hints, tuple(crash_instants))
        self._cache[key] = t
        self.n_emulations += 1
        return t

    # -- app runners ---------------------------------------------------------
    def _recoverable(self, spec: JobSpec, slice_params, hints):
        from ..recovery.checkpoint import RecoverableSort

        policy = hints.get("policy", "sr")
        weights = hints.get("weights")
        job_kwargs = {}
        if weights:
            job_kwargs["routing_weights"] = tuple(weights)
        if spec.need.replication > 1:
            from ..replica import ReplicationConfig

            job_kwargs["replication"] = ReplicationConfig(
                r=spec.need.replication
            )
        return RecoverableSort(
            slice_params,
            _dsm_config(spec.n_records),
            seed=spec.seed,
            policy=policy,
            workload=spec.workload,
            job_kwargs=job_kwargs or None,
        )

    def _run_dsmsort(self, spec, slice_params, hints, crash_instants) -> float:
        """Replay the crash history, then measure the next (final) attempt.

        Each replayed attempt advances the shared manifest exactly as the
        original preempted segment did (same seed, same slice, same kill
        instant — the emulation is deterministic), so the final attempt's
        makespan is the true checkpoint-assisted resume time.
        """
        sort = self._recoverable(spec, slice_params, hints)
        for crash_at in crash_instants:
            out = sort.attempt(crash_at=crash_at)
            if out.completed:
                raise RuntimeError(
                    f"replayed segment completed before its preempt instant "
                    f"{crash_at}; scheduler preempted a finished job"
                )
        final = sort.attempt()
        if not final.completed:
            raise RuntimeError("uninterrupted dsmsort attempt did not complete")
        sort.verify()
        return final.makespan

    def _run_filterscan(self, spec, slice_params, hints, crash_instants) -> float:
        from ..apps.filterscan import FilterScanJob

        job = FilterScanJob(
            slice_params,
            spec.n_records,
            predicate=lambda b: b["key"] % 2 == 0,
            workload=spec.workload,
            seed=spec.seed,
        )
        stats, out = job.run(active=True)
        job.verify(out)
        return stats.makespan

    def _run_rtree(self, spec, slice_params, hints, crash_instants) -> float:
        from ..apps.rtree.distributed import DistributedRTree
        from ..apps.rtree.workload import random_points, window_queries
        from ..util.rng import derive_seed

        rng = np.random.default_rng(derive_seed(spec.seed, "sched-rtree"))
        rects = random_points(rng, spec.n_records)
        n_queries = max(16, spec.n_records // 64)
        windows = window_queries(rng, n_queries)
        tree = DistributedRTree(rects, slice_params, organisation="partition")
        return tree.run_queries(windows).makespan
