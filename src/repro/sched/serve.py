"""`repro serve`: sweep queue policies across rising offered load.

The canonical serving scenario: three tenants with unequal shares — one of
them (*crawler*) flooding the platform with cheap scans — submit a
heterogeneous mix of DSM-Sort, filter-scan and R-tree jobs to one shared
fleet.  The sweep runs the same seeded arrival stream under each queue
policy at several offered-load levels (expressed as multiples of the
fleet's measured service capacity, so "saturation" means the same thing on
any parameter set) and emits one deterministic :class:`ServeReport`.

The headline comparison: at load past saturation, FIFO drains the flooding
tenant's backlog in arrival order and its Jain fairness index collapses,
while deficit-round-robin fair share keeps completing every tenant's work
in share proportion.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..emulator.params import SystemParams
from ..recovery.supervisor import RestartBudget
from .job import Quota, ResourceNeed, Tenant
from .report import ServeReport, summarize_outcome
from .scheduler import Scheduler
from .workload import JobTemplate, OpenLoopWorkload

__all__ = [
    "default_mix",
    "default_tenants",
    "estimate_capacity",
    "run_serve",
    "serve_params",
]

DEFAULT_POLICIES = ("fifo", "fair", "priority")
#: offered load as a multiple of fleet capacity: below, at, and past saturation
DEFAULT_LOAD_FACTORS = (0.5, 1.2, 3.0)


def serve_params() -> SystemParams:
    """A small shared fleet: 3 hosts, 6 ASUs, cheap cycles for fast sweeps."""
    return SystemParams(
        n_hosts=3,
        n_asus=6,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=512,
    )


def default_tenants() -> list[Tenant]:
    """Three tenants: a big analytics share, a paying app, and a flooder."""
    return [
        Tenant("analytics", share=2.0, quota=Quota(max_queued=24, max_running=3)),
        Tenant("webapp", share=1.0, quota=Quota(max_queued=12, max_running=2)),
        # the open-loop flooder: small share, modest queue quota — past
        # saturation its excess arrivals are rejected (backpressure), not
        # absorbed into an ever-growing backlog
        Tenant("crawler", share=0.5, quota=Quota(max_queued=16, max_running=3)),
    ]


def default_mix() -> list[JobTemplate]:
    """Heterogeneous job mix: 2 app kinds minimum, 3 tenants, mixed SLOs."""
    slice1 = ResourceNeed(n_asus=2, n_hosts=1)
    return [
        JobTemplate(
            "analytics-sort", "analytics", "dsmsort", 2048,
            need=slice1, priority=1, deadline=0.5, weight=2.0,
        ),
        JobTemplate(
            "analytics-scan", "analytics", "filterscan", 8192,
            need=slice1, priority=1, deadline=0.3, weight=1.0,
        ),
        JobTemplate(
            "webapp-rtree", "webapp", "rtree", 512,
            need=slice1, priority=2, deadline=0.1, weight=2.0,
        ),
        JobTemplate(
            "webapp-sort", "webapp", "dsmsort", 1024,
            need=slice1, priority=2, deadline=0.3, weight=1.0,
        ),
        # the flood: frequent cheap scans, no SLO, lowest priority
        JobTemplate(
            "crawler-scan", "crawler", "filterscan", 4096,
            need=slice1, priority=0, weight=6.0,
        ),
    ]


def estimate_capacity(
    params: SystemParams,
    mix: Sequence[JobTemplate],
    oracle,
) -> float:
    """Fleet service capacity (jobs/s) for this mix, measured not modelled.

    Mean service demand is the weight-averaged oracle makespan of each
    template on its own slice; parallelism is how many mix-typical slices
    the fleet holds at once.  Offered-load factors are expressed against
    this so a "3×" sweep saturates on any fleet.
    """
    total_w = sum(t.weight for t in mix)
    mean_service = 0.0
    slots = []
    for t in mix:
        spec = t.spec()
        sliced = params.with_(
            n_asus=spec.need.n_asus, n_hosts=spec.need.n_hosts,
            host_clock_multipliers=None,
        )
        mean_service += (t.weight / total_w) * oracle.makespan(spec, sliced)
        slots.append(min(
            params.n_asus // spec.need.n_asus,
            params.n_hosts // spec.need.n_hosts,
        ))
    parallelism = min(slots)
    if mean_service <= 0:
        raise RuntimeError("mean service time measured as zero")
    return parallelism / mean_service


def run_serve(
    *,
    params: Optional[SystemParams] = None,
    tenants: Optional[Sequence[Tenant]] = None,
    mix: Optional[Sequence[JobTemplate]] = None,
    policies: Sequence[str] = DEFAULT_POLICIES,
    load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
    n_jobs: int = 60,
    seed: int = 0,
    restart_budget: Optional[RestartBudget] = None,
    tracer=None,
    slo_monitor=None,
) -> ServeReport:
    """Run the policy × load sweep and return the deterministic report.

    ``tracer`` / ``slo_monitor`` (both default ``None`` — zero overhead and
    byte-identical reports without them) are threaded into every scheduler
    cell: the tracer collects ``sched:<tenant>:<job_id>`` spans for the
    critical-path profiler, the :class:`~repro.obs.SLOMonitor` is fed
    predicted/actual SLO events for burn-rate alerting.
    """
    params = params if params is not None else serve_params()
    tenants = list(tenants) if tenants is not None else default_tenants()
    mix = list(mix) if mix is not None else default_mix()
    if not policies:
        raise ValueError("need at least one policy")
    if not load_factors:
        raise ValueError("need at least one load factor")
    for f in load_factors:
        if f <= 0:
            raise ValueError(f"load factors must be positive, got {f}")

    from .oracle import ServiceOracle

    # One oracle across the whole sweep: every cell reuses the measured
    # service times, so the sweep costs one emulation per distinct
    # (template, slice, hints, crash-history) — not per job.
    oracle = ServiceOracle()
    capacity = estimate_capacity(params, mix, oracle)
    report = ServeReport(
        params=params.as_dict(),
        tenants={
            t.name: {"share": t.share, "max_queued": t.quota.max_queued,
                     "max_running": t.quota.max_running}
            for t in tenants
        },
        mix=[
            {"name": t.name, "tenant": t.tenant, "app": t.app,
             "n_records": t.n_records, "weight": t.weight,
             "priority": t.priority, "deadline": t.deadline}
            for t in mix
        ],
        n_jobs=n_jobs,
        seed=seed,
    )
    for factor in load_factors:
        rate = factor * capacity
        arrivals = OpenLoopWorkload(rate, mix, n_jobs, seed=seed).generate()
        for policy in policies:
            sched = Scheduler(
                params,
                tenants,
                policy,
                oracle=oracle,
                restart_budget=restart_budget,
                preempt=(policy == "priority"),
                policy_kwargs=(
                    {"age_rate": 0.05} if policy == "priority" else None
                ),
                tracer=tracer,
                slo_monitor=slo_monitor,
            )
            outcome = sched.run(arrivals)
            cell = summarize_outcome(outcome, sched.tenants, rate)
            cell["load_factor"] = factor
            report.cells.append(cell)
    return report
