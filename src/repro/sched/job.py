"""Schedulable units: job specs, tenants, quotas, and runtime job records.

The paper's platform runs *one* dataflow at a time; the scheduler turns the
existing applications — DSM-Sort, active filter-scan, distributed R-tree
query batches — into **schedulable units** competing for one shared fleet of
hosts and ASUs.  The problem shape follows Benoit/Casanova/Rehn-Sonigo/
Robert (*Resource Allocation for Multiple Concurrent In-Network
Stream-Processing Applications*, PAPERS.md): many concurrent operator graphs,
each with a resource need and a tenant owner, sharing node capacity under a
fairness/priority policy.

A :class:`JobSpec` is immutable and describes *what* to run (app kind, input
size, seed) and *how it wants to be treated* (priority, relative SLO
deadline, resource need).  A :class:`Tenant` owns a stream of specs and
carries the admission quota and fair-share weight.  A :class:`Job` is the
scheduler's mutable per-submission record: state machine, timeline, and the
preemption/restart bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = [
    "APP_KINDS",
    "Job",
    "JobSpec",
    "JobState",
    "Quota",
    "ResourceNeed",
    "Tenant",
]

#: application kinds the scheduler knows how to run, and whether their
#: progress survives preemption (checkpoint-assisted via the RunManifest —
#: PR 5's RecoverableSort) or must restart from scratch (kill-and-requeue)
APP_KINDS = {
    "dsmsort": {"checkpointable": True, "replicable": True},
    "filterscan": {"checkpointable": False, "replicable": False},
    "rtree": {"checkpointable": False, "replicable": False},
}


@dataclass(frozen=True)
class ResourceNeed:
    """Fleet slice a job must lease before it can run."""

    n_asus: int = 2
    n_hosts: int = 1
    #: run-replication factor the job runs with (see repro.replica); every
    #: replica needs a distinct ASU inside the exclusive lease, so the slice
    #: itself must be wide enough
    replication: int = 1

    def __post_init__(self):
        if self.n_asus < 1:
            raise ValueError(f"n_asus must be >= 1, got {self.n_asus}")
        if self.n_hosts < 1:
            raise ValueError(f"n_hosts must be >= 1, got {self.n_hosts}")
        if self.replication < 1:
            raise ValueError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.replication > self.n_asus:
            raise ValueError(
                f"replication factor {self.replication} exceeds the leased "
                f"slice ({self.n_asus} ASUs): every run replica needs a "
                "distinct ASU"
            )


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of one schedulable dataflow job."""

    #: application kind (see :data:`APP_KINDS`)
    app: str
    #: input size: records for dsmsort/filterscan, rectangles for rtree
    n_records: int
    #: workload seed (fixes the generated input, hence the service demand)
    seed: int = 0
    #: strict-priority class; higher runs first, never negative
    priority: int = 0
    #: relative SLO target in virtual seconds from *arrival* (None = no SLO)
    deadline: Optional[float] = None
    #: exclusive fleet slice the job runs on
    need: ResourceNeed = field(default_factory=ResourceNeed)
    #: workload distribution for record-generating apps
    workload: str = "uniform"

    def __post_init__(self):
        if self.app not in APP_KINDS:
            raise ValueError(
                f"unknown app {self.app!r}; expected one of {sorted(APP_KINDS)}"
            )
        if self.n_records < 1:
            raise ValueError(f"n_records must be >= 1, got {self.n_records}")
        if self.priority < 0:
            raise ValueError(
                f"priority must be nonnegative, got {self.priority} "
                "(use tenant shares, not negative priorities, to deprioritise)"
            )
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive, got {self.deadline}")
        if self.need.replication > 1 and not APP_KINDS[self.app].get(
            "replicable", False
        ):
            raise ValueError(
                f"app {self.app!r} does not support run replication; only "
                "manifest-backed apps can write replicated runs"
            )

    @property
    def checkpointable(self) -> bool:
        return APP_KINDS[self.app]["checkpointable"]

    @property
    def cost_units(self) -> float:
        """Policy-visible work estimate (records × ASUs leased).

        Used by the fair-share deficit counters *before* the service oracle
        has measured the job; deliberately crude — fairness accounting only
        needs relative magnitudes.
        """
        return float(self.n_records * self.need.n_asus)


@dataclass(frozen=True)
class Quota:
    """Per-tenant admission limits (the backpressure boundary)."""

    #: jobs a tenant may have waiting; arrivals beyond this are rejected
    max_queued: int = 64
    #: jobs a tenant may have running at once
    max_running: int = 8

    def __post_init__(self):
        if self.max_queued < 1:
            raise ValueError(f"max_queued must be positive, got {self.max_queued}")
        if self.max_running < 1:
            raise ValueError(f"max_running must be positive, got {self.max_running}")


@dataclass(frozen=True)
class Tenant:
    """One paying customer of the shared platform."""

    name: str
    #: fair-share weight (deficit counters are credited share × quantum)
    share: float = 1.0
    quota: Quota = field(default_factory=Quota)

    def __post_init__(self):
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.share <= 0:
            raise ValueError(f"tenant share must be positive, got {self.share}")


class JobState:
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    PREEMPTED = "preempted"
    DONE = "done"
    FAILED = "failed"
    REJECTED = "rejected"

    TERMINAL = (DONE, FAILED, REJECTED)


@dataclass
class Job:
    """Mutable scheduler-side record of one submission."""

    job_id: str
    spec: JobSpec
    tenant: str
    arrival_t: float
    state: str = JobState.QUEUED
    #: first instant the job held a lease (None until scheduled)
    first_start_t: Optional[float] = None
    #: start of the *current* run segment
    start_t: Optional[float] = None
    finish_t: Optional[float] = None
    #: virtual time spent holding a lease (all segments, incl. lost work)
    occupied: float = 0.0
    #: times the job was checkpoint-preempted (resumes from its manifest)
    n_preemptions: int = 0
    #: times the job was killed and requeued (work lost, budget charged)
    n_restarts: int = 0
    #: why the job was rejected/failed ("" otherwise)
    reason: str = ""
    #: crash instants (elapsed-in-attempt) accumulated from preemptions;
    #: the checkpointable runner replays these to recover the manifest state
    crash_instants: list = field(default_factory=list)
    #: epoch guard: a pending completion event is valid only if it carries
    #: the epoch it was scheduled under (preemption bumps it)
    epoch: int = 0
    #: earliest instant the job may be dispatched again (restart backoff)
    eligible_t: float = 0.0

    @property
    def wait(self) -> Optional[float]:
        if self.first_start_t is None:
            return None
        return self.first_start_t - self.arrival_t

    @property
    def turnaround(self) -> Optional[float]:
        if self.finish_t is None:
            return None
        return self.finish_t - self.arrival_t

    @property
    def slo_met(self) -> Optional[bool]:
        """True/False against the spec deadline; None when no SLO declared."""
        if self.spec.deadline is None:
            return None
        if self.finish_t is None:
            return False
        return self.turnaround <= self.spec.deadline

    def __repr__(self) -> str:
        return (
            f"<Job {self.job_id} {self.spec.app} tenant={self.tenant} "
            f"{self.state} prio={self.spec.priority}>"
        )
