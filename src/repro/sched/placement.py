"""Capacity leases over the shared fleet, fed by registry gauges.

The scheduler space-shares the platform: a running job holds an **exclusive
lease** on a slice of ASUs and hosts, so concurrent jobs occupy disjoint
nodes of one fleet (the paper's "ASUs are shared by multiple applications",
§3.3, lifted from functor-level interference to whole-job placement).
Because leases are disjoint, each job's existing single-job emulation on the
sliced platform is an *exact* account of its service time — no approximation
of cross-job contention is smuggled in.

All placement signals live in the scheduler's
:class:`~repro.metrics.MetricsRegistry`:

* ``repro_sched_free_asus`` / ``repro_sched_free_hosts`` — free capacity;
* ``repro_sched_node_lease_seconds`` (gauge vectors, per node class) —
  cumulative leased time per node, the *wear* signal the packer balances;
* ``repro_sched_queue_depth`` — wait-queue depth (scraped for percentiles).

:meth:`LeaseManager.acquire` picks the least-leased free nodes (ties broken
by index), so load spreads across the fleet the same way the intra-job
LoadManager spreads fragments across hosts.  :meth:`routing_hints` closes
the feedback loop downward: the lease's relative node wear becomes the
routing-policy hint handed to the job's own
:class:`~repro.core.load_manager.LoadManager`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..emulator.params import SystemParams
from ..faults.errors import StaleLeaseError
from ..metrics.registry import MetricsRegistry
from .job import ResourceNeed

__all__ = ["Lease", "LeaseManager"]


@dataclass(frozen=True)
class Lease:
    """An exclusive slice of the fleet, held by one running job.

    ``epoch`` is the grant's fencing token: preemption (or any other
    revocation) retires the epoch, so a completion presented against a
    revoked lease fails :meth:`LeaseManager.check` with a typed
    :class:`~repro.faults.errors.StaleLeaseError` instead of silently
    racing the re-grant (docs/PARTITIONS.md §fencing)."""

    asus: tuple
    hosts: tuple
    t_start: float
    epoch: int = 0

    @property
    def n_asus(self) -> int:
        return len(self.asus)

    @property
    def n_hosts(self) -> int:
        return len(self.hosts)


class LeaseManager:
    """Owns the fleet's free/leased state and the packing decision."""

    def __init__(self, params: SystemParams, registry: Optional[MetricsRegistry] = None):
        self.params = params
        self.registry = registry if registry is not None else MetricsRegistry()
        self._free_asus = set(range(params.n_asus))
        self._free_hosts = set(range(params.n_hosts))
        #: cumulative leased seconds per node — the wear-balancing signal
        self._asu_lease = self.registry.gauge_vector(
            "repro_sched_node_lease_seconds", params.n_asus, node_class="asu"
        )
        self._host_lease = self.registry.gauge_vector(
            "repro_sched_node_lease_seconds", params.n_hosts, node_class="host"
        )
        self._g_free_asus = self.registry.gauge("repro_sched_free_asus")
        self._g_free_hosts = self.registry.gauge("repro_sched_free_hosts")
        self._g_free_asus.set(float(params.n_asus))
        self._g_free_hosts.set(float(params.n_hosts))
        self.n_leases_granted = 0
        self.n_leases_revoked = 0
        #: monotone grant counter — each lease's fencing epoch
        self.epoch = 0
        #: epochs retired by revocation; completions against them are stale
        self._revoked: set[int] = set()

    # -- capacity queries ----------------------------------------------------
    def can_place(self, need: ResourceNeed) -> bool:
        return (
            len(self._free_asus) >= need.n_asus
            and len(self._free_hosts) >= need.n_hosts
        )

    def fits_fleet(self, need: ResourceNeed) -> bool:
        """Whether the need could *ever* be satisfied by this fleet."""
        return (
            need.n_asus <= self.params.n_asus
            and need.n_hosts <= self.params.n_hosts
        )

    @property
    def free_asus(self) -> int:
        return len(self._free_asus)

    @property
    def free_hosts(self) -> int:
        return len(self._free_hosts)

    # -- acquire / release ---------------------------------------------------
    def _pick(self, free: set, wear, k: int) -> tuple:
        """k least-leased free nodes (wear ties broken by index)."""
        order = sorted(free, key=lambda i: (float(wear.values[i]), i))
        return tuple(order[:k])

    def acquire(self, need: ResourceNeed, now: float) -> Optional[Lease]:
        if not self.can_place(need):
            return None
        asus = self._pick(self._free_asus, self._asu_lease, need.n_asus)
        hosts = self._pick(self._free_hosts, self._host_lease, need.n_hosts)
        self._free_asus.difference_update(asus)
        self._free_hosts.difference_update(hosts)
        self._g_free_asus.set(float(len(self._free_asus)))
        self._g_free_hosts.set(float(len(self._free_hosts)))
        self.n_leases_granted += 1
        self.epoch += 1
        return Lease(asus=asus, hosts=hosts, t_start=now, epoch=self.epoch)

    def revoke(self, lease: Lease, now: float) -> None:
        """Release a lease *and* retire its epoch (preemption/eviction).

        After revocation the old holder can no longer complete against the
        lease: :meth:`check` raises for its epoch forever.
        """
        self.release(lease, now)
        self._revoked.add(lease.epoch)
        self.n_leases_revoked += 1

    def check(self, lease: Lease) -> None:
        """Validate a completion's lease; raise if its epoch was revoked."""
        if lease.epoch in self._revoked:
            raise StaleLeaseError(
                f"lease(asus={lease.asus},hosts={lease.hosts})",
                lease.epoch, self.epoch,
            )

    def release(self, lease: Lease, now: float) -> None:
        held = max(0.0, now - lease.t_start)
        for i in lease.asus:
            if i in self._free_asus:
                raise RuntimeError(f"double release of asu{i}")
            self._asu_lease.add(i, held)
        for i in lease.hosts:
            if i in self._free_hosts:
                raise RuntimeError(f"double release of host{i}")
            self._host_lease.add(i, held)
        self._free_asus.update(lease.asus)
        self._free_hosts.update(lease.hosts)
        self._g_free_asus.set(float(len(self._free_asus)))
        self._g_free_hosts.set(float(len(self._free_hosts)))

    # -- downstream integration ----------------------------------------------
    def slice_params(self, lease: Lease) -> SystemParams:
        """The sliced platform a leased job emulates on.

        Node counts shrink to the lease; per-node characteristics (clocks,
        disks, links) are the fleet's — nodes are homogeneous within a class,
        so slice identity is positional.
        """
        return self.params.with_(
            n_asus=lease.n_asus, n_hosts=lease.n_hosts,
            host_clock_multipliers=None,
        )

    def routing_hints(self, lease: Lease) -> dict:
        """Queue-aware hints for the leased job's own LoadManager.

        The scheduler knows each leased host's cumulative wear; when wear is
        uneven the hint asks the job to run its *weighted* routing policy
        with weights inversely proportional to wear (a fresher node takes
        more fragments), otherwise the shortest-remaining default stands.
        The hint is deterministic in the lease, so the service oracle can
        cache measured makespans per (spec, slice, hints) key.
        """
        wear = [float(self._host_lease.values[h]) for h in lease.hosts]
        if len(wear) > 1 and max(wear) > 0 and max(wear) != min(wear):
            # Normalise to the heaviest node; invert so wear steers away.
            # Coarse (1-decimal) buckets keep the hint space small so the
            # service oracle's (spec, slice, hints) cache stays effective.
            top = max(wear)
            weights = tuple(round(2.0 - w / top, 1) for w in wear)
            if len(set(weights)) > 1:
                return {"policy": "weighted", "weights": weights}
        return {"policy": "sr", "weights": None}
