"""Open-loop workload generation: seeded Poisson arrivals over a job mix.

An **open-loop** generator submits jobs on its own clock regardless of how
backed up the platform is — the arrival process does not slow down when the
queue grows, which is what pushes a served system past saturation and makes
the backpressure/fairness behaviour visible (closed-loop generators
self-throttle and hide it).

Arrivals are a Poisson process (exponential inter-arrival gaps) over a
weighted mix of :class:`JobTemplate`\\ s, each owned by a tenant.  Everything
is seeded: the same ``(rate, mix, seed)`` yields the identical submission
schedule, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..util.rng import derive_seed
from .job import JobSpec, ResourceNeed

__all__ = ["Arrival", "JobTemplate", "OpenLoopWorkload"]


@dataclass(frozen=True)
class JobTemplate:
    """One entry of the heterogeneous job mix."""

    name: str
    tenant: str
    app: str
    n_records: int
    need: ResourceNeed = field(default_factory=ResourceNeed)
    priority: int = 0
    deadline: Optional[float] = None
    workload: str = "uniform"
    seed: int = 0
    #: relative arrival weight within the mix
    weight: float = 1.0

    def __post_init__(self):
        if not self.name:
            raise ValueError("template name must be non-empty")
        if self.weight <= 0:
            raise ValueError(
                f"template {self.name!r} weight must be positive, got {self.weight}"
            )
        # Delegate the rest: constructing the spec validates app, size,
        # priority and deadline with the same errors submission would raise.
        self.spec()

    def spec(self) -> JobSpec:
        return JobSpec(
            app=self.app,
            n_records=self.n_records,
            seed=self.seed,
            priority=self.priority,
            deadline=self.deadline,
            need=self.need,
            workload=self.workload,
        )


@dataclass(frozen=True)
class Arrival:
    """One submission: when, what, and for whom."""

    t: float
    spec: JobSpec
    tenant: str
    template: str


class OpenLoopWorkload:
    """Seeded Poisson arrivals over a weighted template mix.

    ``rate`` is the aggregate arrival rate (jobs per virtual second) across
    the whole mix; each arrival draws its template with probability
    proportional to template weight.  Generation stops after ``n_jobs``
    submissions.
    """

    def __init__(
        self,
        rate: float,
        mix: Sequence[JobTemplate],
        n_jobs: int,
        seed: int = 0,
    ):
        if not np.isfinite(rate) or rate <= 0:
            raise ValueError(
                f"arrival rate must be positive and finite, got {rate} "
                "(a zero-rate generator never submits anything)"
            )
        if not mix:
            raise ValueError("job mix must be non-empty")
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        names = [t.name for t in mix]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate template names in mix: {sorted(names)}")
        self.rate = float(rate)
        self.mix = tuple(mix)
        self.n_jobs = int(n_jobs)
        self.seed = int(seed)

    def generate(self) -> list[Arrival]:
        rng = np.random.default_rng(derive_seed(self.seed, "sched-arrivals"))
        weights = np.array([t.weight for t in self.mix], dtype=float)
        probs = weights / weights.sum()
        gaps = rng.exponential(1.0 / self.rate, size=self.n_jobs)
        picks = rng.choice(len(self.mix), size=self.n_jobs, p=probs)
        out: list[Arrival] = []
        t = 0.0
        for gap, pick in zip(gaps, picks):
            t += float(gap)
            tmpl = self.mix[int(pick)]
            out.append(
                Arrival(t=t, spec=tmpl.spec(), tenant=tmpl.tenant, template=tmpl.name)
            )
        return out
