"""Admission control and the wait queue's scheduling policies.

Admission is the backpressure boundary: when a tenant's offered load exceeds
its queue quota (or the global queue is full), new work is **rejected at
arrival** rather than absorbed — the served system stays stable past
saturation and the rejection counts become a first-class report metric.

The wait queue itself is pluggable.  Three policies, per the scheduler
tentpole:

* ``fifo`` — arrival order, tenant-blind.  The baseline every fairness claim
  is measured against: a flooding tenant monopolises the head of the queue.
* ``fair`` — fair share via **deficit counters** (deficit round-robin across
  tenants).  Each scheduling round credits every backlogged tenant
  ``share × quantum`` work units; the tenant with the largest deficit whose
  head job fits the available capacity runs next and is debited the job's
  cost.  Work-conserving, starvation-free, and proportional to shares in
  steady state.
* ``priority`` — strict priority with **aging**: effective priority is
  ``spec.priority + age_rate × wait``, so a low class eventually overtakes a
  saturated high class instead of starving.  Ties break by arrival then id.

Every policy exposes the same two-step protocol: :meth:`select` picks the
next job that the placement layer reports placeable (a candidate whose slice
cannot currently be leased is skipped, so one wide job cannot idle the whole
fleet), and :meth:`charge` settles the fairness accounting once the job
actually starts.
"""

from __future__ import annotations

from typing import Callable, Optional

from .job import Job, Tenant

__all__ = [
    "AdmissionController",
    "FairSharePolicy",
    "FifoPolicy",
    "PriorityAgingPolicy",
    "QueuePolicy",
    "make_policy",
]


class AdmissionController:
    """Accept/reject arrivals against per-tenant quotas and a global bound."""

    def __init__(self, tenants: dict[str, Tenant], max_queue_depth: int = 256):
        if max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        self.tenants = dict(tenants)
        self.max_queue_depth = int(max_queue_depth)

    def admit(
        self,
        job: Job,
        queued: list[Job],
        running: list[Job],
    ) -> tuple[bool, str]:
        """Decide a fresh arrival.  Returns ``(admitted, reason)``."""
        tenant = self.tenants.get(job.tenant)
        if tenant is None:
            return False, f"unknown tenant {job.tenant!r}"
        if len(queued) >= self.max_queue_depth:
            return False, f"global queue full ({self.max_queue_depth})"
        n_queued = sum(1 for j in queued if j.tenant == job.tenant)
        if n_queued >= tenant.quota.max_queued:
            return False, (
                f"tenant {job.tenant!r} queue quota exhausted "
                f"({tenant.quota.max_queued})"
            )
        return True, ""

    def may_run(self, job: Job, running: list[Job]) -> bool:
        """Per-tenant running-job cap (checked at schedule time)."""
        tenant = self.tenants[job.tenant]
        n_running = sum(1 for j in running if j.tenant == job.tenant)
        return n_running < tenant.quota.max_running


class QueuePolicy:
    """Common interface: ordered selection + post-schedule accounting."""

    name = "abstract"

    def __init__(self, tenants: dict[str, Tenant]):
        self.tenants = dict(tenants)

    def select(
        self,
        queued: list[Job],
        now: float,
        placeable: Callable[[Job], bool],
    ) -> Optional[Job]:
        """Next job to start, or None if nothing eligible fits."""
        raise NotImplementedError

    def charge(self, job: Job, cost: float) -> None:
        """Settle accounting for a job that just started (cost in work units)."""

    def requeue(self, job: Job) -> None:
        """A preempted/killed job re-entered the queue (hook for subclasses)."""


def _arrival_key(job: Job) -> tuple:
    return (job.arrival_t, job.job_id)


class FifoPolicy(QueuePolicy):
    """Strict arrival order across all tenants."""

    name = "fifo"

    def select(self, queued, now, placeable):
        for job in sorted(queued, key=_arrival_key):
            if placeable(job):
                return job
        return None


class FairSharePolicy(QueuePolicy):
    """Deficit round-robin across tenants, weighted by tenant share.

    ``quantum`` is the work-unit credit a share-1.0 tenant earns per
    scheduling round.  Deficits accumulate only while a tenant is backlogged
    (an idle tenant cannot hoard credit and later starve everyone) and are
    capped at ``burst_rounds`` rounds of credit.
    """

    name = "fair"

    def __init__(
        self,
        tenants: dict[str, Tenant],
        quantum: float = 4096.0,
        burst_rounds: float = 8.0,
    ):
        super().__init__(tenants)
        if quantum <= 0:
            raise ValueError(f"fair-share quantum must be positive, got {quantum}")
        if burst_rounds < 1:
            raise ValueError(
                f"burst_rounds must be >= 1, got {burst_rounds}"
            )
        self.quantum = float(quantum)
        self.burst_rounds = float(burst_rounds)
        self.deficit: dict[str, float] = {name: 0.0 for name in self.tenants}

    def _backlogged(self, queued: list[Job]) -> dict[str, list[Job]]:
        per: dict[str, list[Job]] = {}
        for job in sorted(queued, key=_arrival_key):
            per.setdefault(job.tenant, []).append(job)
        return per

    def select(self, queued, now, placeable):
        per = self._backlogged(queued)
        if not per:
            return None
        # Credit rounds until some backlogged tenant can afford its oldest
        # placeable job.  Bounded: each round adds share*quantum to every
        # backlogged tenant, and job costs are finite.
        for _round in range(10_000):
            # Tenants by largest deficit (ties: name, for determinism).
            order = sorted(per, key=lambda t: (-self.deficit[t], t))
            for tname in order:
                head = next((j for j in per[tname] if placeable(j)), None)
                if head is None:
                    continue
                if head.spec.cost_units <= self.deficit[tname]:
                    return head
            # Nobody can afford their head job yet: credit one round.
            progressed = False
            for tname in per:
                share = self.tenants[tname].share
                cap = self.burst_rounds * share * self.quantum
                before = self.deficit[tname]
                self.deficit[tname] = min(cap, before + share * self.quantum)
                progressed = progressed or self.deficit[tname] > before
            if not progressed:
                # Every backlogged tenant is at its burst cap and still can't
                # afford its head job (cost > cap): serve the largest-deficit
                # placeable head anyway — work conservation beats strictness.
                for tname in order:
                    head = next((j for j in per[tname] if placeable(j)), None)
                    if head is not None:
                        return head
                return None
        raise RuntimeError("fair-share crediting failed to converge")

    def charge(self, job, cost):
        self.deficit[job.tenant] = self.deficit.get(job.tenant, 0.0) - cost


class PriorityAgingPolicy(QueuePolicy):
    """Strict priority, softened by aging so low classes cannot starve."""

    name = "priority"

    def __init__(self, tenants: dict[str, Tenant], age_rate: float = 0.0):
        super().__init__(tenants)
        if age_rate < 0:
            raise ValueError(f"age_rate must be nonnegative, got {age_rate}")
        self.age_rate = float(age_rate)

    def effective_priority(self, job: Job, now: float) -> float:
        return job.spec.priority + self.age_rate * max(0.0, now - job.arrival_t)

    def select(self, queued, now, placeable):
        order = sorted(
            queued,
            key=lambda j: (-self.effective_priority(j, now), j.arrival_t, j.job_id),
        )
        for job in order:
            if placeable(job):
                return job
        return None


def make_policy(name: str, tenants: dict[str, Tenant], **kwargs) -> QueuePolicy:
    """Policy factory with validated names and knobs."""
    factories = {
        "fifo": FifoPolicy,
        "fair": FairSharePolicy,
        "priority": PriorityAgingPolicy,
    }
    if name not in factories:
        raise ValueError(
            f"unknown scheduling policy {name!r}; expected one of "
            f"{sorted(factories)}"
        )
    return factories[name](tenants, **kwargs)
