"""ServeReport: deterministic multi-tenant serving metrics.

One report covers a sweep of (queue policy × offered-load level) cells over
the same arrival process.  Each cell summarises what the platform's tenants
experienced: completions, goodput, waits, SLO attainment, queue-depth
percentiles, and the **Jain fairness index** over share-normalised goodput.

Jain's index (Jain/Chiu/Hawe 1984) over allocations ``x_i``::

    J = (Σ x_i)² / (n · Σ x_i²)

is 1.0 when all tenants get goodput proportional to their shares and tends
to ``1/n`` when one tenant monopolises the platform.  Goodput is counted in
the **observation window** — submissions completed before the arrival
process ends — because that is where the policies differ at saturation:
FIFO serves the flooding tenant's backlog in arrival order, fair share
completes work in share proportion.

Everything derives from the virtual clock and the seeded workload, so
:meth:`ServeReport.to_json` is byte-identical across same-seed runs
(canonical key order and separators, no wall-clock anywhere).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..bench.report import SCHEMA_VERSION
from .job import Job, JobState, Tenant

__all__ = ["ServeReport", "jain_index", "summarize_outcome"]


def jain_index(values: Sequence[float]) -> float:
    """Jain fairness index of an allocation vector (1.0 if empty/all-zero)."""
    xs = [float(v) for v in values]
    if not xs:
        return 1.0
    total = sum(xs)
    sq = sum(x * x for x in xs)
    if sq == 0.0:
        return 1.0  # uniformly nothing is still uniform
    return (total * total) / (len(xs) * sq)


def _pct(values: Sequence[float], q: float) -> float:
    if not len(values):
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), q, method="nearest"))


def summarize_outcome(outcome, tenants: dict[str, Tenant], rate: float) -> dict:
    """One report cell from one :class:`~repro.sched.scheduler.SchedOutcome`."""
    jobs: list[Job] = outcome.jobs
    t_obs = outcome.t_last_arrival
    per_tenant = {}
    norm_goodput = []
    for name in sorted(tenants):
        share = tenants[name].share
        mine = [j for j in jobs if j.tenant == name]
        done = [j for j in mine if j.state == JobState.DONE]
        in_window = [j for j in done if j.finish_t is not None and j.finish_t <= t_obs]
        goodput = sum(j.spec.cost_units for j in in_window)
        waits = [j.wait for j in done if j.wait is not None]
        per_tenant[name] = {
            "submitted": len(mine),
            "rejected": sum(1 for j in mine if j.state == JobState.REJECTED),
            "completed": len(done),
            "completed_in_window": len(in_window),
            "goodput_units": goodput,
            "share": share,
            "wait_p50": _pct(waits, 50),
            "wait_p90": _pct(waits, 90),
        }
        norm_goodput.append(goodput / share)
    slo_jobs = [j for j in jobs if j.spec.deadline is not None
                and j.state != JobState.REJECTED]
    slo_met = sum(1 for j in slo_jobs if j.slo_met)
    depths = [d for _t, d in outcome.depth_samples]
    return {
        "policy": outcome.policy,
        "rate": rate,
        "n_jobs": len(jobs),
        "n_admitted": sum(1 for j in jobs if j.state != JobState.REJECTED),
        "n_rejected": outcome.n_rejected,
        "n_completed": sum(1 for j in jobs if j.state == JobState.DONE),
        "n_failed": outcome.n_failed,
        "n_preempted": outcome.n_preempted,
        "n_restarted": outcome.n_restarted,
        "makespan": outcome.makespan,
        "t_last_arrival": t_obs,
        "jain_fairness": jain_index(norm_goodput),
        "slo_attainment": (slo_met / len(slo_jobs)) if slo_jobs else None,
        "queue_depth_p50": _pct(depths, 50),
        "queue_depth_p90": _pct(depths, 90),
        "queue_depth_p99": _pct(depths, 99),
        "queue_depth_max": float(max(depths)) if depths else 0.0,
        "n_emulations": outcome.n_emulations,
        "per_tenant": per_tenant,
    }


@dataclass
class ServeReport:
    """Outcome of one `repro serve` sweep (JSON-stable, wall-clock free)."""

    #: full ``SystemParams.as_dict()`` of the shared fleet — baselines are
    #: self-describing, like every other BENCH payload
    params: dict
    tenants: dict
    mix: list
    n_jobs: int
    seed: int
    cells: list = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "params": self.params,
            "tenants": self.tenants,
            "mix": self.mix,
            "n_jobs": self.n_jobs,
            "seed": self.seed,
            "cells": self.cells,
        }

    def to_json(self) -> str:
        """Canonical JSON: two identical sweeps are byte-identical."""
        return json.dumps(
            self.as_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def cell(self, policy: str, rate: float) -> dict:
        for c in self.cells:
            if c["policy"] == policy and c["rate"] == rate:
                return c
        raise KeyError(f"no cell for policy={policy!r} rate={rate}")

    def render(self) -> str:
        from ..bench.report import render_table

        rows = []
        for c in self.cells:
            slo = "-" if c["slo_attainment"] is None else f"{c['slo_attainment']:.2f}"
            rows.append([
                c["policy"], f"{c['rate']:.3g}",
                c["n_completed"], c["n_rejected"], c["n_failed"],
                c["n_preempted"], c["n_restarted"],
                f"{c['jain_fairness']:.3f}", slo,
                f"{c['queue_depth_p90']:.0f}",
                f"{c['makespan']:.2f}",
            ])
        table = render_table(
            ["policy", "rate", "done", "rej", "fail", "pre", "rst",
             "jain", "slo", "qd-p90", "makespan"],
            rows,
        )
        head = (
            f"serve: {self.n_jobs} jobs/level, "
            f"{len(self.tenants)} tenants, seed {self.seed}"
        )
        return head + "\n" + table
