"""The multi-tenant scheduler: a job-level virtual-time event loop.

One :class:`Scheduler` owns the shared fleet.  Jobs arrive (open-loop),
pass admission control, wait under a pluggable queue policy, lease an
exclusive slice from the :class:`~repro.sched.placement.LeaseManager`, and
run for exactly the service time the
:class:`~repro.sched.oracle.ServiceOracle` *measures* by emulating the job
on its slice.  Because leases are disjoint, the per-job emulations compose
into an exact account of the shared platform — the scheduler adds queueing
and placement on top without approximating the jobs themselves.

Preemption (priority policy, ``preempt=True``): when a queued job's static
priority class strictly exceeds a running job's, the victim is evicted and
the freed capacity is handed *directly* to the preempting job — it starts in
the same dispatch pass rather than competing in an open re-dispatch, where a
heavily aged victim could win the slot back and be evicted again forever.

* checkpointable victims (dsmsort) take a **checkpoint-assisted preemption**:
  the elapsed segment time is recorded as a crash instant and the oracle
  later replays the crash history against the job's manifest, so completed
  shards/runs/buckets are not redone;
* everything else is **kill-and-requeue**: the segment's work is lost, the
  restart is charged against the job's
  :class:`~repro.recovery.supervisor.RestartBudget`, and the job backs off
  exponentially before becoming dispatchable again.  Budget exhaustion fails
  the job.

Pending completion events are guarded by a per-job *epoch*: preemption bumps
the epoch, so the stale finish event of an evicted segment is ignored when
it pops.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..emulator.params import SystemParams
from ..faults.errors import StaleLeaseError
from ..metrics.registry import MetricsRegistry
from ..recovery.supervisor import RestartBudget
from .job import Job, JobState, Tenant
from .oracle import ServiceOracle
from .placement import LeaseManager
from .queue import AdmissionController, PriorityAgingPolicy, QueuePolicy, make_policy
from .workload import Arrival

__all__ = ["SchedOutcome", "Scheduler"]

# event ordering at equal instants: free capacity first, then wake backed-off
# jobs, then admit new arrivals — so a same-instant arrival sees the true
# post-completion queue and fleet
_EV_FINISH, _EV_WAKE, _EV_ARRIVAL = 0, 1, 2

#: preemption elapsed below this is treated as "no progress worth a replay"
_MIN_CHECKPOINT_ELAPSED = 1e-9


@dataclass
class SchedOutcome:
    """Everything the serve report needs from one scheduler run."""

    policy: str
    jobs: list = field(default_factory=list)
    #: (t, queue depth) sampled at every event
    depth_samples: list = field(default_factory=list)
    #: completion instant of the last job (0.0 if nothing ran)
    makespan: float = 0.0
    #: end of the arrival process — the fairness observation window
    t_last_arrival: float = 0.0
    n_emulations: int = 0
    n_rejected: int = 0
    n_preempted: int = 0
    n_restarted: int = 0
    n_failed: int = 0


class Scheduler:
    """Admission + queueing + placement over the shared emulated fleet."""

    def __init__(
        self,
        params: SystemParams,
        tenants: Sequence[Tenant],
        policy: str = "fifo",
        *,
        registry: Optional[MetricsRegistry] = None,
        oracle: Optional[ServiceOracle] = None,
        max_queue_depth: int = 256,
        restart_budget: Optional[RestartBudget] = None,
        preempt: bool = False,
        policy_kwargs: Optional[dict] = None,
        tracer=None,
        slo_monitor=None,
    ):
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names: {sorted(names)}")
        self.params = params
        self.tenants = {t.name: t for t in tenants}
        self.registry = registry if registry is not None else MetricsRegistry()
        self.oracle = oracle if oracle is not None else ServiceOracle()
        self.admission = AdmissionController(self.tenants, max_queue_depth)
        self.policy: QueuePolicy = make_policy(
            policy, self.tenants, **(policy_kwargs or {})
        )
        self.leases = LeaseManager(params, self.registry)
        self.budget = restart_budget if restart_budget is not None else RestartBudget()
        self.preempt = bool(preempt)
        if self.preempt and not isinstance(self.policy, PriorityAgingPolicy):
            raise ValueError(
                "preemption requires the 'priority' policy (fifo/fair are "
                "run-to-completion)"
            )
        #: optional repro.trace.Tracer — scheduler-level spans land on
        #: ``sched:<tenant>:<job_id>`` tracks (queued / run / preemption
        #: segments) so the critical-path profiler can blame queueing and
        #: preemption separately from emulated service time
        self.tracer = tracer
        #: optional repro.obs.SLOMonitor fed at dispatch time (predicted
        #: at-risk, strictly before the miss is recorded at finish) and at
        #: completion (actual outcome)
        self.slo_monitor = slo_monitor
        # live state
        self._seen: dict[str, Job] = {}
        self.queued: list[Job] = []
        self.running: list[Job] = []
        self._lease_of: dict[str, object] = {}
        self._segment_end: dict[str, float] = {}
        self._queue_enter: dict[str, float] = {}
        #: stale finish events that correctly failed the lease epoch check
        self.n_stale_lease_rejections = 0
        # instruments
        self._g_depth = self.registry.gauge("repro_sched_queue_depth")
        self._c_admit = self.registry.counter("repro_sched_jobs_admitted_total")
        self._c_reject = self.registry.counter("repro_sched_jobs_rejected_total")
        self._c_done = self.registry.counter("repro_sched_jobs_completed_total")
        self._c_fail = self.registry.counter("repro_sched_jobs_failed_total")
        self._c_preempt = self.registry.counter("repro_sched_preemptions_total")
        self._c_restart = self.registry.counter("repro_sched_restarts_total")

    # -- the event loop ------------------------------------------------------
    def run(self, arrivals: Sequence[Arrival]) -> SchedOutcome:
        """Serve the arrival stream to completion and return the outcome."""
        out = SchedOutcome(policy=self.policy.name)
        events: list = []
        seq = 0
        for i, a in enumerate(sorted(arrivals, key=lambda a: (a.t, a.tenant))):
            job = Job(
                job_id=f"j{i:04d}",
                spec=a.spec,
                tenant=a.tenant,
                arrival_t=a.t,
                eligible_t=a.t,
            )
            heapq.heappush(events, (a.t, _EV_ARRIVAL, seq, "arrival", job))
            seq += 1
            out.t_last_arrival = max(out.t_last_arrival, a.t)
        while events:
            now, _rank, _seq, kind, payload = heapq.heappop(events)
            if kind == "finish":
                self._on_finish(now, payload, out)
            elif kind == "wake":
                pass  # wakes exist only to trigger the dispatch pass below
            else:
                self._on_arrival(now, payload, out)
            seq = self._dispatch(now, events, seq, out)
            depth = len(self.queued)
            self._g_depth.set(float(depth))
            out.depth_samples.append((now, depth))
        out.jobs.extend(self._all_jobs)
        out.n_emulations = self.oracle.n_emulations
        return out

    # -- event handlers ------------------------------------------------------
    @property
    def _all_jobs(self) -> list[Job]:
        return sorted(self._seen.values(), key=lambda j: j.job_id)

    def _on_arrival(self, now: float, job: Job, out: SchedOutcome) -> None:
        self._seen[job.job_id] = job
        if not self.leases.fits_fleet(job.spec.need):
            ok, reason = False, (
                f"need {job.spec.need} exceeds fleet "
                f"({self.params.n_asus} asus, {self.params.n_hosts} hosts)"
            )
        else:
            ok, reason = self.admission.admit(job, self.queued, self.running)
        if not ok:
            job.state = JobState.REJECTED
            job.reason = reason
            out.n_rejected += 1
            self._c_reject.inc()
            return
        self._queue_enter[job.job_id] = now
        self.queued.append(job)
        self._c_admit.inc()

    def _on_finish(self, now: float, payload: tuple, out: SchedOutcome) -> None:
        job_id, epoch, seg_lease = payload
        job = self._seen[job_id]
        if epoch != job.epoch or job.state != JobState.RUNNING:
            # Stale event from a preempted segment.  Its lease was revoked at
            # eviction, so completing against it must fail the typed check —
            # the fencing invariant the membership layer also relies on.
            if seg_lease is not None:
                try:
                    self.leases.check(seg_lease)
                except StaleLeaseError:
                    self.n_stale_lease_rejections += 1
            return
        lease = self._lease_of.pop(job.job_id)
        self.leases.check(lease)  # a valid completion's epoch is never revoked
        self.leases.release(lease, now)
        self._segment_end.pop(job.job_id, None)
        self.running.remove(job)
        if self.tracer is not None:
            self.tracer.span(
                job.start_t, now, f"sched:{job.tenant}:{job.job_id}",
                job.spec.app, cat="sched-run",
                sid=f"{job.job_id}.run", parent=f"{job.job_id}.queue",
            )
        if self.slo_monitor is not None and job.spec.deadline is not None:
            self.slo_monitor.record(
                now, job.tenant, good=(now - job.arrival_t) <= job.spec.deadline
            )
        job.occupied += now - job.start_t
        job.state = JobState.DONE
        job.finish_t = now
        out.makespan = max(out.makespan, now)
        self._c_done.inc()

    # -- dispatch + preemption ----------------------------------------------
    def _dispatch(self, now: float, events: list, seq: int, out: SchedOutcome) -> int:
        while True:
            eligible = [j for j in self.queued if j.eligible_t <= now]
            if not eligible:
                break

            def placeable(j: Job) -> bool:
                return self.admission.may_run(j, self.running) and self.leases.can_place(
                    j.spec.need
                )

            job = self.policy.select(eligible, now, placeable)
            if job is None:
                if self.preempt:
                    new_seq = self._try_preempt(now, eligible, events, seq, out)
                    if new_seq is not None:
                        seq = new_seq  # a candidate preempted and started
                        continue
                break
            seq = self._start(now, job, events, seq, out)
        # a backed-off job with no other trigger needs a wake event
        pending = [j.eligible_t for j in self.queued if j.eligible_t > now]
        if pending:
            t_wake = min(pending)
            if not any(ev[0] <= t_wake and ev[3] == "wake" for ev in events):
                heapq.heappush(events, (t_wake, _EV_WAKE, seq, "wake", None))
                seq += 1
        return seq

    def _start(
        self, now: float, job: Job, events: list, seq: int, out: SchedOutcome
    ) -> int:
        lease = self.leases.acquire(job.spec.need, now)
        assert lease is not None, "policy selected an unplaceable job"
        hints = self.leases.routing_hints(lease)
        slice_params = self.leases.slice_params(lease)
        makespan = self.oracle.makespan(
            job.spec, slice_params, hints, tuple(job.crash_instants)
        )
        self.queued.remove(job)
        self.running.append(job)
        self._lease_of[job.job_id] = lease
        enter_t = self._queue_enter.pop(job.job_id, now)
        if self.tracer is not None and now > enter_t:
            self.tracer.span(
                enter_t, now, f"sched:{job.tenant}:{job.job_id}",
                "queued", cat="sched-queue", sid=f"{job.job_id}.queue",
            )
        if self.slo_monitor is not None and job.spec.deadline is not None:
            # Predicted at-risk signal at *dispatch* time: if the measured
            # service time already overruns the deadline, the burn-rate
            # alert can fire strictly before the miss lands in ServeReport.
            self.slo_monitor.record(
                now, job.tenant,
                good=(now + makespan - job.arrival_t) <= job.spec.deadline,
            )
        job.state = JobState.RUNNING
        job.start_t = now
        if job.first_start_t is None:
            job.first_start_t = now
        self._segment_end[job.job_id] = now + makespan
        self.policy.charge(job, job.spec.cost_units)
        heapq.heappush(
            events,
            (now + makespan, _EV_FINISH, seq, "finish",
             (job.job_id, job.epoch, lease)),
        )
        return seq + 1

    def _try_preempt(
        self, now: float, eligible: list[Job], events: list, seq: int,
        out: SchedOutcome,
    ) -> Optional[int]:
        """Evict lower-priority running jobs and start a queued job in their
        place.

        Candidates are tried best effective priority first, but eviction
        itself compares STATIC priority classes only.  Aging orders the wait
        queue (so a low class is dispatched eventually) but must not evict:
        an aged job preempting a higher class would itself be preempted
        right back.  The first candidate whose need is reachable by evicting
        strictly lower classes wins — a top-ranked aged job that cannot
        evict anyone does not block a lower-ranked high-class job from
        preempting.

        The winner is started *here*, in the freed capacity, rather than
        left to an open re-dispatch: a requeued victim can out-age the
        candidate under a large ``age_rate``, and letting it win the freed
        slot back would evict it again in an endless same-instant loop.
        Victims are chosen lowest static priority first, newest segment
        first, and only if the freed nodes actually reach the candidate's
        need (no pointless evictions).

        Returns the advanced event sequence number when a candidate started,
        else None.
        """
        assert isinstance(self.policy, PriorityAgingPolicy)
        cands = sorted(
            (j for j in eligible if self.admission.may_run(j, self.running)),
            key=lambda j: (
                -self.policy.effective_priority(j, now), j.arrival_t, j.job_id,
            ),
        )
        for cand in cands:
            victims_pool = sorted(
                (j for j in self.running if j.spec.priority < cand.spec.priority),
                key=lambda j: (j.spec.priority, -(j.start_t or 0.0), j.job_id),
            )
            need = cand.spec.need
            free_a, free_h = self.leases.free_asus, self.leases.free_hosts
            chosen: list[Job] = []
            for v in victims_pool:
                if free_a >= need.n_asus and free_h >= need.n_hosts:
                    break
                lease = self._lease_of[v.job_id]
                free_a += lease.n_asus
                free_h += lease.n_hosts
                chosen.append(v)
            if not chosen or free_a < need.n_asus or free_h < need.n_hosts:
                continue
            for v in chosen:
                self._evict(now, v, out)
            return self._start(now, cand, events, seq, out)
        return None

    def _evict(self, now: float, job: Job, out: SchedOutcome) -> None:
        lease = self._lease_of.pop(job.job_id)
        # Revoke (not merely release): the evicted segment's in-flight finish
        # event still holds this lease, and it must fail the epoch check.
        self.leases.revoke(lease, now)
        self._segment_end.pop(job.job_id, None)
        self.running.remove(job)
        elapsed = now - job.start_t
        if self.tracer is not None and elapsed > 0.0:
            self.tracer.span(
                job.start_t, now, f"sched:{job.tenant}:{job.job_id}",
                f"evicted:{job.spec.app}", cat="preemption",
            )
        job.occupied += elapsed
        job.epoch += 1  # invalidates the in-flight finish event
        if job.spec.checkpointable and elapsed > _MIN_CHECKPOINT_ELAPSED:
            # checkpoint-assisted: the manifest keeps the segment's progress
            job.crash_instants.append(elapsed)
            job.n_preemptions += 1
            job.state = JobState.QUEUED
            job.eligible_t = now
            out.n_preempted += 1
            self._c_preempt.inc()
        elif job.spec.checkpointable:
            # evicted before doing anything: plain requeue, nothing to replay
            job.state = JobState.QUEUED
            job.eligible_t = now
            out.n_preempted += 1
            self._c_preempt.inc()
        else:
            # kill-and-requeue under the restart budget
            job.n_restarts += 1
            out.n_restarted += 1
            self._c_restart.inc()
            if job.n_restarts > self.budget.max_restarts:
                job.state = JobState.FAILED
                job.reason = (
                    f"restart budget exhausted: {job.n_restarts} restarts > "
                    f"max_restarts={self.budget.max_restarts}"
                )
                out.n_failed += 1
                self._c_fail.inc()
                return
            job.state = JobState.QUEUED
            job.eligible_t = now + self.budget.backoff(job.n_restarts)
        self._queue_enter[job.job_id] = now
        self.queued.append(job)
        self.policy.requeue(job)
