"""repro.sched — multi-tenant job scheduler for the shared active-storage
platform.

Turns the repo's applications (DSM-Sort, filter-scan, R-tree) into
schedulable units competing for one emulated fleet: admission control with
per-tenant quotas, pluggable queue policies (FIFO / deficit-round-robin
fair share / strict priority with aging), exclusive capacity leases with
wear-balanced packing and queue-aware routing hints, checkpoint-assisted
preemption for manifest-backed jobs and kill-and-requeue under a restart
budget for the rest, and an open-loop Poisson workload generator feeding
the `repro serve` sweep.
"""

from .job import APP_KINDS, Job, JobSpec, JobState, Quota, ResourceNeed, Tenant
from .oracle import ServiceOracle
from .placement import Lease, LeaseManager
from .queue import (
    AdmissionController,
    FairSharePolicy,
    FifoPolicy,
    PriorityAgingPolicy,
    QueuePolicy,
    make_policy,
)
from .report import ServeReport, jain_index, summarize_outcome
from .scheduler import SchedOutcome, Scheduler
from .serve import (
    DEFAULT_LOAD_FACTORS,
    DEFAULT_POLICIES,
    default_mix,
    default_tenants,
    estimate_capacity,
    run_serve,
    serve_params,
)
from .workload import Arrival, JobTemplate, OpenLoopWorkload

__all__ = [
    "APP_KINDS",
    "AdmissionController",
    "Arrival",
    "DEFAULT_LOAD_FACTORS",
    "DEFAULT_POLICIES",
    "FairSharePolicy",
    "FifoPolicy",
    "Job",
    "JobSpec",
    "JobState",
    "JobTemplate",
    "Lease",
    "LeaseManager",
    "OpenLoopWorkload",
    "PriorityAgingPolicy",
    "QueuePolicy",
    "Quota",
    "ResourceNeed",
    "SchedOutcome",
    "Scheduler",
    "ServeReport",
    "ServiceOracle",
    "Tenant",
    "default_mix",
    "default_tenants",
    "estimate_capacity",
    "jain_index",
    "make_policy",
    "run_serve",
    "serve_params",
    "summarize_outcome",
]
