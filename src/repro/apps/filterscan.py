"""Active filtering and aggregation at the storage (§2).

"Filtering and aggregation operations performed directly at the ASUs can
reduce data movement across the interconnect, helping to overcome bandwidth
limitations" — the canonical active-disk workload the paper builds on
[1, 19, 26].  A :class:`FilterScanJob` scans records resident on the ASUs
through a :class:`~repro.functors.basic.FilterFunctor` (or an
:class:`~repro.functors.basic.AggregateFunctor`), either at the storage
(active) or at the host (passive), and reports makespan plus interconnect
traffic.  The filter really runs: the surviving records are returned and
checked against a direct evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform
from ..functors.basic import FilterFunctor
from ..util.distributions import make_workload
from ..util.records import concat_records
from ..util.rng import RngRegistry

__all__ = ["FilterScanJob", "FilterScanResult"]


@dataclass
class FilterScanResult:
    makespan: float
    net_bytes: int
    n_selected: int
    host_util: float
    asu_cpu_util: list[float]

    @property
    def selectivity(self) -> float:
        return self.n_selected  # set properly by the job (records basis)


class FilterScanJob:
    """Scan + filter (or aggregate) over ASU-resident records."""

    def __init__(
        self,
        params: SystemParams,
        n_records: int,
        predicate: Callable[[np.ndarray], np.ndarray],
        predicate_compares: float = 1.0,
        workload: str = "uniform",
        seed: int = 0,
    ):
        self.params = params
        self.n_records = int(n_records)
        self.functor = FilterFunctor(predicate, compares=predicate_compares)
        self.rngs = RngRegistry(seed)
        per_asu = self.n_records // params.n_asus
        self.asu_data = [
            make_workload(self.rngs.get(f"w.{d}"), per_asu, workload, params.schema)
            for d in range(params.n_asus)
        ]

    def expected_output(self) -> np.ndarray:
        """Direct evaluation of the filter (for verification)."""
        kept = [self.functor.apply(b)[0] for b in self.asu_data]
        return concat_records(kept, self.params.schema)

    def run(self, active: bool) -> tuple[FilterScanResult, np.ndarray]:
        """Emulate the scan; returns (stats, records that reached the host)."""
        plat = ActivePlatform(self.params)
        host = plat.hosts[0]
        D = self.params.n_asus
        blk = self.params.block_records
        rs = self.params.schema.record_size
        collected: list[np.ndarray] = []

        def producer(d):
            from ..emulator.readahead import ReadAhead

            asu = plat.asus[d]
            data = self.asu_data[d]
            blocks = [data[s : s + blk] for s in range(0, data.shape[0], blk)]
            ra = ReadAhead(plat, asu, [b.shape[0] * rs for b in blocks])
            for i, block in enumerate(blocks):
                yield ra.wait_next()
                if active:
                    staging = block.shape[0] * rs * self.params.cycles_per_io_byte
                    kept = yield from asu.compute(
                        cycles=staging
                        + self.functor.cost_cycles(block.shape[0], self.params),
                        fn=lambda b: self.functor.apply(b)[0],
                        args=(block,),
                    )
                    if kept.shape[0]:
                        yield from asu.send_async(
                            host, ("data", kept), kept.shape[0] * rs, tag="data"
                        )
                else:
                    plat.network.post(
                        asu.node_id, host.node_id, ("data", block),
                        block.shape[0] * rs, tag="data",
                    )
            if active:
                yield from asu.send_async(host, ("eof", None), 16, tag="eof")
            else:
                plat.network.post(asu.node_id, host.node_id, ("eof", None), 16)

        def sink():
            n_eof = 0
            while n_eof < D:
                msg = yield from host.recv()
                kind, payload = msg.payload
                if kind == "eof":
                    n_eof += 1
                    continue
                if active:
                    collected.append(payload)
                else:
                    kept = yield from host.compute(
                        cycles=self.functor.cost_cycles(payload.shape[0], self.params),
                        fn=lambda b: self.functor.apply(b)[0],
                        args=(payload,),
                    )
                    if kept.shape[0]:
                        collected.append(kept)

        procs = [plat.spawn(producer(d)) for d in range(D)]
        procs.append(plat.spawn(sink()))
        plat.run(wait_for=procs)

        out = concat_records(collected, self.params.schema)
        stats = FilterScanResult(
            makespan=plat.sim.now,
            net_bytes=plat.network.bytes_total,
            n_selected=int(out.shape[0]),
            host_util=host.cpu.utilization(plat.sim.now),
            asu_cpu_util=[a.cpu.utilization(plat.sim.now) for a in plat.asus],
        )
        return stats, out

    def verify(self, out: np.ndarray) -> None:
        expect = self.expected_output()
        got = np.sort(out["key"])
        want = np.sort(expect["key"])
        if not np.array_equal(got, want):
            raise AssertionError("filtered output does not match direct evaluation")
