"""TerraFlow: I/O-efficient terrain analysis (watershed + flow, §4.1)."""

from .flow import (
    FlowResult,
    d8_directions,
    flow_accumulation,
    flow_accumulation_reference,
)
from .grid import NEIGHBOR_OFFSETS, TerrainGrid, cone_dem, synthetic_dem
from .pipeline import (
    StepPhaseJob,
    distributed_elevation_sort,
    TerraflowOutput,
    sortable_f64_key,
    step_speedups,
    terraflow_emulated,
    TerraflowEmulation,
    terraflow_pipeline,
)
from .restructure import (
    CELL_DTYPE,
    CELL_SCHEMA,
    cells_as_set,
    restructure,
    restructure_blocked,
)
from .watershed import WatershedResult, watershed_labels, watershed_reference

__all__ = [
    "FlowResult",
    "d8_directions",
    "flow_accumulation",
    "flow_accumulation_reference",
    "NEIGHBOR_OFFSETS",
    "TerrainGrid",
    "cone_dem",
    "synthetic_dem",
    "StepPhaseJob",
    "distributed_elevation_sort",
    "TerraflowOutput",
    "sortable_f64_key",
    "step_speedups",
    "terraflow_emulated",
    "TerraflowEmulation",
    "terraflow_pipeline",
    "CELL_DTYPE",
    "CELL_SCHEMA",
    "cells_as_set",
    "restructure",
    "restructure_blocked",
    "WatershedResult",
    "watershed_labels",
    "watershed_reference",
]
