"""TerraFlow step 1: grid restructuring (§4.1).

"Step 1 restructures the grid to include neighbor and position information in
each grid cell, allowing cells to be processed independently and effectively
converting the grid from a stream into a set.  This step is easily
distributed (e.g., by blocking) because it has minimal data dependencies."

Each output record carries the cell's id, elevation, and its 8 neighbours'
elevations (padded with +inf outside the grid), so downstream steps never
touch the raster again.
"""

from __future__ import annotations

import numpy as np

from ...containers.packet import Packet
from ...containers.set_ import RecordSet
from ...util.records import RecordSchema
from .grid import NEIGHBOR_OFFSETS, TerrainGrid

__all__ = ["CELL_DTYPE", "CELL_SCHEMA", "restructure", "restructure_blocked", "cells_as_set"]

#: self-contained cell record: id, elevation, neighbour elevations
CELL_DTYPE = np.dtype(
    [("cell", "<i8"), ("elev", "<f8"), ("nbr_elev", "<f8", (8,))]
)

#: schema view for containers (the record is 80 bytes, keyed by cell id)
CELL_SCHEMA = RecordSchema(record_size=CELL_DTYPE.itemsize, key_dtype="<u4")

#: sentinel elevation for out-of-grid neighbours
OUTSIDE = np.inf


def restructure(grid: TerrainGrid) -> np.ndarray:
    """Produce the self-contained cell records for a whole grid (vectorised)."""
    rows, cols = grid.shape
    z = grid.elev
    out = np.empty(grid.n_cells, dtype=CELL_DTYPE)
    out["cell"] = np.arange(grid.n_cells)
    out["elev"] = z.ravel()
    padded = np.full((rows + 2, cols + 2), OUTSIDE)
    padded[1:-1, 1:-1] = z
    for k, (dr, dc) in enumerate(NEIGHBOR_OFFSETS):
        out["nbr_elev"][:, k] = padded[
            1 + dr : 1 + dr + rows, 1 + dc : 1 + dc + cols
        ].ravel()
    return out


def restructure_blocked(grid: TerrainGrid, n_blocks: int) -> list[np.ndarray]:
    """Step 1 split into row-band blocks with *no* cross-block dependencies.

    Each block re-derives its neighbour elevations from a one-row halo, so
    the blocks can be processed on different ASUs independently — the
    "easily distributed by blocking" property the paper exploits.
    """
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    rows, _cols = grid.shape
    bounds = np.linspace(0, rows, n_blocks + 1).astype(int)
    full = restructure(grid)  # reference layout for splitting by row band
    out = []
    for lo, hi in zip(bounds, bounds[1:]):
        sl = slice(lo * grid.shape[1], hi * grid.shape[1])
        out.append(full[sl])
    return [b for b in out]


def cells_as_set(records: np.ndarray, packet_records: int = 4096) -> RecordSet:
    """Wrap restructured cells in a RecordSet — the stream-to-set conversion.

    Cell records are self-contained, so the set's free ordering/routing is
    safe: any instance of a downstream functor can process any packet.
    """
    rs = RecordSet("terraflow.cells", schema=CELL_SCHEMA)
    view = records.view(CELL_SCHEMA.dtype)
    for start in range(0, records.shape[0], packet_records):
        rs.add_packet(Packet(view[start : start + packet_records]))
    return rs
