"""TerraFlow step 3: watershed labelling via time-forward processing (§4.1).

"Step 3 uses neighbor information to propagate colors from the lowest points
up/outward to the peaks and ridges.  This step is difficult to parallelize
because it uses time-forward processing and relies on ordering for
correctness."

Cells are processed in increasing (elevation, id) order.  A cell with no
strictly lower neighbour is a local minimum and starts a new watershed; any
other cell adopts the label of its **steepest** lower neighbour.  Labels
travel as messages through an external priority queue keyed by the receiving
cell's processing time — the classic time-forward processing pattern [12]:
when cell c learns its label, it sends (steepness, label) to every strictly
higher neighbour; when a cell's turn comes, its candidate messages are all
waiting at the head of the queue.

A strict total order (ties broken by cell id) plus deterministic steepness
tie-breaking makes the labelling reproducible, and a simple
steepest-descent-pointer reference implementation must agree exactly —
that equivalence is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...bte.base import BTE
from ...tpie.pqueue import ExternalPriorityQueue
from .grid import NEIGHBOR_DISTS, NEIGHBOR_OFFSETS, TerrainGrid

__all__ = ["watershed_labels", "watershed_reference", "WatershedResult"]


@dataclass
class WatershedResult:
    """Labels plus bookkeeping from the time-forward run."""

    labels: np.ndarray       # flat int64 label per cell
    n_watersheds: int
    n_messages: int
    pq_spilled_runs: int

    def label_grid(self, grid: TerrainGrid) -> np.ndarray:
        return self.labels.reshape(grid.shape)


def _pack(direction: int, label: int) -> int:
    """Pack (sender->receiver direction index, label) into one PQ payload.

    Carrying the *direction* rather than a quantised steepness lets the
    receiver recompute exact slopes from its own neighbourhood (exactly the
    information the restructured cell records carry), so the choice of
    steepest lower neighbour uses full float precision.
    """
    return (int(direction) << 32) | int(label)


def _unpack(data: int) -> tuple[int, int]:
    return data >> 32, data & 0xFFFFFFFF


def watershed_labels(
    grid: TerrainGrid,
    bte: BTE | None = None,
    memory_entries: int = 1 << 15,
) -> WatershedResult:
    """Label every cell with its watershed via time-forward processing."""
    order = grid.elevation_order()              # processing schedule
    rank_of = np.empty(grid.n_cells, dtype=np.int64)
    rank_of[order] = np.arange(grid.n_cells)    # cell id -> processing time

    z = grid.elev.ravel()
    labels = np.full(grid.n_cells, -1, dtype=np.int64)
    pq = ExternalPriorityQueue(bte=bte, memory_entries=memory_entries, name="ws.pq")
    n_labels = 0
    n_messages = 0
    rows, cols = grid.shape

    for t, cid in enumerate(order):
        cid = int(cid)
        # Collect the label candidates addressed to this processing time.
        candidates = pq.pop_all_at(t)
        if candidates:
            # Each candidate came from a strictly lower neighbour; pick the
            # steepest-descent one (exact slopes, smallest sender id on
            # ties) — the same rule the reference pointer-chaser applies.
            best_label = -1
            best_slope = -1.0
            best_sender = -1
            for data in candidates:
                k, label = _unpack(data)
                dr, dc = NEIGHBOR_OFFSETS[k]
                sender = cid - (dr * cols + dc)
                slope = (z[cid] - z[sender]) / NEIGHBOR_DISTS[k]
                if slope > best_slope or (
                    slope == best_slope and (best_sender == -1 or sender < best_sender)
                ):
                    best_slope = slope
                    best_sender = sender
                    best_label = label
            label = best_label
        else:
            # No lower neighbour sent anything: a local minimum.
            label = n_labels
            n_labels += 1
        labels[cid] = label

        # Send the label forward to every strictly higher neighbour.
        r, c = divmod(cid, cols)
        for k, (dr, dc) in enumerate(NEIGHBOR_OFFSETS):
            rr, cc = r + dr, c + dc
            if not (0 <= rr < rows and 0 <= cc < cols):
                continue
            nid = rr * cols + cc
            if z[nid] > z[cid]:
                pq.push(int(rank_of[nid]), _pack(k, label))
                n_messages += 1

    return WatershedResult(
        labels=labels,
        n_watersheds=n_labels,
        n_messages=n_messages,
        pq_spilled_runs=pq.n_spilled_runs,
    )


def watershed_reference(grid: TerrainGrid) -> np.ndarray:
    """Independent reference: follow steepest-descent pointers to a minimum.

    Uses the same steepest-lower-neighbour rule (slope then smallest cell id)
    but a completely different mechanism — pointer chasing with path
    memoisation — so agreement with :func:`watershed_labels` is meaningful.
    Label numbering matches because minima are numbered in (elevation, id)
    order in both implementations.
    """
    z = grid.elev.ravel()
    rows, cols = grid.shape
    n = grid.n_cells

    # Downhill pointer per cell (-1 for minima).
    down = np.full(n, -1, dtype=np.int64)
    for cid in range(n):
        r, c = divmod(cid, cols)
        best_slope = 0.0
        best_nb = -1
        for k, (dr, dc) in enumerate(NEIGHBOR_OFFSETS):
            rr, cc = r + dr, c + dc
            if not (0 <= rr < rows and 0 <= cc < cols):
                continue
            nid = rr * cols + cc
            if z[nid] < z[cid]:
                slope = (z[cid] - z[nid]) / NEIGHBOR_DISTS[k]
                if slope > best_slope or (
                    slope == best_slope and (best_nb == -1 or nid < best_nb)
                ):
                    best_slope = slope
                    best_nb = nid
        down[cid] = best_nb

    # Number minima in (elevation, id) order to match the time-forward run.
    order = grid.elevation_order()
    labels = np.full(n, -1, dtype=np.int64)
    n_labels = 0
    for cid in order:
        cid = int(cid)
        if down[cid] == -1:
            labels[cid] = n_labels
            n_labels += 1
        else:
            # The downhill neighbour is strictly lower: already labelled.
            labels[cid] = labels[down[cid]]
    return labels
