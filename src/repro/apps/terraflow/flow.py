"""Flow accumulation: the "upstream area" index TerraFlow computes (§4.1).

Each cell drains to its steepest strictly-lower neighbour (D8 single-flow
direction).  The accumulation of a cell is 1 (itself) plus the accumulation
of every cell draining into it.  Computed by time-forward processing in
*decreasing* elevation order: when a cell is processed, all upstream
contributions have already arrived as messages through the priority queue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...bte.base import BTE
from ...tpie.pqueue import ExternalPriorityQueue
from .grid import NEIGHBOR_DISTS, NEIGHBOR_OFFSETS, TerrainGrid

__all__ = ["flow_accumulation", "flow_accumulation_reference", "FlowResult", "d8_directions"]


@dataclass
class FlowResult:
    accumulation: np.ndarray  # flat int64 per cell
    n_messages: int
    pq_spilled_runs: int

    def accumulation_grid(self, grid: TerrainGrid) -> np.ndarray:
        return self.accumulation.reshape(grid.shape)


def d8_directions(grid: TerrainGrid) -> np.ndarray:
    """Steepest-descent pointer per cell (-1 for local minima).

    Exact slope comparison with smallest-id tie-breaking — the same rule the
    watershed step uses, so the two indices are consistent.
    """
    z = grid.elev.ravel()
    rows, cols = grid.shape
    down = np.full(grid.n_cells, -1, dtype=np.int64)
    for cid in range(grid.n_cells):
        r, c = divmod(cid, cols)
        best_slope = 0.0
        best_nb = -1
        for k, (dr, dc) in enumerate(NEIGHBOR_OFFSETS):
            rr, cc = r + dr, c + dc
            if not (0 <= rr < rows and 0 <= cc < cols):
                continue
            nid = rr * cols + cc
            if z[nid] < z[cid]:
                slope = (z[cid] - z[nid]) / NEIGHBOR_DISTS[k]
                if slope > best_slope or (
                    slope == best_slope and (best_nb == -1 or nid < best_nb)
                ):
                    best_slope = slope
                    best_nb = nid
        down[cid] = best_nb
    return down


def flow_accumulation(
    grid: TerrainGrid,
    bte: BTE | None = None,
    memory_entries: int = 1 << 15,
) -> FlowResult:
    """Upstream-area index via time-forward processing (high to low)."""
    down = d8_directions(grid)
    order = grid.elevation_order()[::-1]  # decreasing (elev, id)
    rank_of = np.empty(grid.n_cells, dtype=np.int64)
    rank_of[order] = np.arange(grid.n_cells)

    acc = np.ones(grid.n_cells, dtype=np.int64)
    pq = ExternalPriorityQueue(bte=bte, memory_entries=memory_entries, name="flow.pq")
    n_messages = 0

    for t, cid in enumerate(order):
        cid = int(cid)
        for contribution in pq.pop_all_at(t):
            acc[cid] += contribution
        target = down[cid]
        if target >= 0:
            pq.push(int(rank_of[target]), int(acc[cid]))
            n_messages += 1

    return FlowResult(
        accumulation=acc,
        n_messages=n_messages,
        pq_spilled_runs=pq.n_spilled_runs,
    )


def flow_accumulation_reference(grid: TerrainGrid) -> np.ndarray:
    """Independent reference: accumulate over cells sorted by -elevation."""
    down = d8_directions(grid)
    z = grid.elev.ravel()
    acc = np.ones(grid.n_cells, dtype=np.int64)
    order = np.lexsort((np.arange(grid.n_cells), z))[::-1]
    for cid in order:
        t = down[cid]
        if t >= 0:
            acc[t] += acc[cid]
    return acc
