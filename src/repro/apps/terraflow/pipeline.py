"""The TerraFlow pipeline (§4.1) and its per-step distribution analysis.

Steps, exactly as the paper describes the watershed computation:

1. **Restructure** the grid into self-contained cell records (stream → set;
   easily distributed by blocking);
2. **External sort** the records by elevation (DSM-Sort's domain);
3. **Watershed colouring** by time-forward processing (hard to parallelise:
   relies on ordering).

:func:`terraflow_pipeline` runs the real computation end-to-end over a BTE.
:class:`StepPhaseJob` emulates the *distribution* of a phase on the active
platform — it demonstrates the paper's claim that "data parallelism in ASUs
may improve the first two steps considerably while offering limited
improvement of the final step".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...bte.base import BTE
from ...bte.memory import MemoryBTE
from ...core.costs import RecordCosts
from ...emulator.params import SystemParams
from ...emulator.platform import ActivePlatform
from ...tpie.external_sort import external_sort
from ...util.records import RecordSchema
from .flow import FlowResult, flow_accumulation
from .grid import TerrainGrid
from .restructure import restructure
from .watershed import WatershedResult, watershed_labels

__all__ = [
    "distributed_elevation_sort",
    "terraflow_emulated",
    "TerraflowEmulation",
    "sortable_f64_key",
    "terraflow_pipeline",
    "TerraflowOutput",
    "StepPhaseJob",
    "step_speedups",
]

#: sort records: elevation key (order-preserving u64) + cell id payload
SORT_SCHEMA = RecordSchema(record_size=16, key_dtype="<u8")


def sortable_f64_key(x: np.ndarray) -> np.ndarray:
    """Map float64 to uint64 preserving order (IEEE-754 total order trick)."""
    bits = np.asarray(x, dtype=np.float64).view(np.int64)
    flipped = np.where(bits >= 0, bits ^ np.int64(-0x8000000000000000), ~bits)
    return flipped.view(np.uint64)


@dataclass
class TerraflowOutput:
    """Everything the pipeline produced, plus per-step accounting."""

    watershed: WatershedResult
    flow: FlowResult
    sort_io_blocks: int
    elevation_order: np.ndarray
    step_records: dict[str, int] = field(default_factory=dict)


def terraflow_pipeline(
    grid: TerrainGrid,
    bte: BTE | None = None,
    memory_records: int = 1 << 14,
    fan_in: int = 8,
) -> TerraflowOutput:
    """Run restructure → external sort → watershed (+ flow accumulation)."""
    bte = bte if bte is not None else MemoryBTE(SORT_SCHEMA)

    # -- step 1: restructure (the real cell records) -------------------------
    cells = restructure(grid)

    # -- step 2: external sort by elevation -----------------------------------
    sort_in = np.empty(grid.n_cells, dtype=SORT_SCHEMA.dtype)
    sort_in["key"] = sortable_f64_key(cells["elev"])
    # Payload carries the cell id (little-endian bytes of the int64).
    sort_in["payload"] = cells["cell"].astype("<i8").view("V8")
    bte.write_all("tf.sort_in", sort_in)
    before = bte.stats.total_ios
    out_handle, _stats = external_sort(
        bte, bte.open("tf.sort_in"), "tf.sort_out",
        memory_records=memory_records, fan_in=fan_in,
    )
    sort_io = bte.stats.total_ios - before
    sorted_records = bte.read_all(out_handle)
    keys = sorted_records["key"]
    ids = sorted_records["payload"].view("<i8").ravel()
    # Canonical tie order: equal elevations process in cell-id order.  The
    # merge is not stable across runs, so re-rank ties explicitly.
    order = ids[np.lexsort((ids, keys))].astype(np.int64)

    expected = grid.elevation_order()
    if not np.array_equal(order, expected):
        raise AssertionError("external sort order disagrees with elevation order")

    # -- step 3: watershed colouring (time-forward processing) ----------------
    ws = watershed_labels(grid)

    # -- bonus index: flow accumulation ---------------------------------------
    fl = flow_accumulation(grid)

    return TerraflowOutput(
        watershed=ws,
        flow=fl,
        sort_io_blocks=sort_io,
        elevation_order=order,
        step_records={
            "restructure": int(cells.shape[0]),
            "sort": int(sorted_records.shape[0]),
            "watershed": int(ws.labels.shape[0]),
        },
    )


def distributed_elevation_sort(
    grid: TerrainGrid,
    params: SystemParams,
    alpha: int = 16,
    gamma: int = 16,
    seed: int = 0,
):
    """Run TerraFlow's step 2 through the *emulated* DSM-Sort.

    The grid's cells become 16-byte sort records (order-preserving uint64
    elevation key + cell id payload), pre-distributed across the ASUs by row
    band — exactly the data layout step 1 leaves behind.  Returns the
    finished :class:`~repro.dsmsort.runtime.DsmSortJob` (verified) and the
    canonical elevation order recovered from its output.
    """
    from ...core.config import DSMConfig
    from ...dsmsort.runtime import DsmSortJob

    sort_params = params.with_(schema=SORT_SCHEMA)
    n = grid.n_cells
    keys = sortable_f64_key(grid.elev.ravel())
    records = np.empty(n, dtype=SORT_SCHEMA.dtype)
    records["key"] = keys
    records["payload"] = np.arange(n, dtype="<i8").view("V8")
    bounds = np.linspace(0, n, sort_params.n_asus + 1).astype(int)
    asu_data = [records[lo:hi] for lo, hi in zip(bounds, bounds[1:])]

    cfg = DSMConfig.for_n(max(n, 1), alpha=alpha, gamma=gamma)
    job = DsmSortJob(sort_params, cfg, policy="sr", seed=seed, asu_data=asu_data)
    job.run_pass1()
    job.run_pass2()
    job.verify()

    out = job.collected_output()
    ids = out["payload"].view("<i8").ravel()
    order = ids[np.lexsort((ids, out["key"]))].astype(np.int64)
    return job, order


@dataclass
class TerraflowEmulation:
    """End-to-end emulated TerraFlow run: per-step makespans + real outputs."""

    makespans: dict[str, float]
    watershed: WatershedResult
    elevation_order: np.ndarray

    @property
    def total_makespan(self) -> float:
        return sum(self.makespans.values())


def terraflow_emulated(
    grid: TerrainGrid,
    params: SystemParams,
    alpha: int = 8,
    gamma: int = 16,
    seed: int = 0,
) -> TerraflowEmulation:
    """Run the whole watershed computation on the emulated platform.

    * step 1 (restructure) executes as a distributable map phase on the ASUs;
    * step 2 (sort by elevation) runs through the emulated DSM-Sort on the
      real cell keys and is verified against the grid's canonical order;
    * step 3 (watershed colouring) is order-dependent: its records stream to
      one host, where the time-forward processing really runs.

    The per-step makespans quantify §4.1's claim — steps 1–2 benefit from
    the ASUs, step 3 does not.
    """
    import math

    n = grid.n_cells
    logn = max(1.0, math.log2(max(n, 2)))

    # Step 1 on ASUs (distributable).
    t1 = StepPhaseJob(params, n, compares_per_record=8.0, distributable=True).run(
        active=True
    )

    # Step 2 through the emulated DSM-Sort (really sorts; verified inside).
    job, order = distributed_elevation_sort(
        grid, params, alpha=alpha, gamma=gamma, seed=seed
    )
    t2 = job.run_pass1().makespan + job.run_pass2().makespan

    # Step 3 at one host (order-dependent): emulated streaming time plus the
    # real computation.
    t3 = StepPhaseJob(
        params, n, compares_per_record=2.0 * logn, distributable=False
    ).run(active=True)
    ws = watershed_labels(grid)

    return TerraflowEmulation(
        makespans={"restructure": t1, "sort": t2, "watershed": t3},
        watershed=ws,
        elevation_order=order,
    )


class StepPhaseJob:
    """Emulate one TerraFlow phase on the active platform.

    A phase is characterised by its per-record comparison cost and whether it
    is *distributable* (step 1: blocked map, runs where the data lives) or
    *order-dependent* (step 3: must run on one host in a global order).

    Distributable + active: each ASU reads its blocks, computes in place,
    writes results back — no interconnect traffic at all.
    Distributable + passive: blocks stream to the host, which computes and
    streams results back.
    Order-dependent: data streams to one host in both modes; ASU processing
    cannot help because the global order serialises the computation (§4.1).
    """

    def __init__(
        self,
        params: SystemParams,
        n_records: int,
        compares_per_record: float,
        distributable: bool,
        record_size: int = 80,
    ):
        self.params = params
        self.n = int(n_records)
        self.cpr = float(compares_per_record)
        self.distributable = distributable
        self.rs = int(record_size)
        self.costs = RecordCosts(params)

    def _cycles(self, n: int) -> float:
        return n * (
            self.cpr * self.params.cycles_per_compare
            + self.params.cycles_per_record
        )

    def run(self, active: bool) -> float:
        """Makespan of the phase under the given placement."""
        plat = ActivePlatform(self.params)
        D = self.params.n_asus
        blk = self.params.block_records
        per_asu = self.n // D
        rs = self.rs
        host = plat.hosts[0]
        io_c = rs * self.params.cycles_per_io_byte
        net_c = rs * self.params.cycles_per_net_byte

        def asu_local(d):
            """Active distributable phase: read, compute, write, all local."""
            asu = plat.asus[d]
            remaining = per_asu
            pending = plat.spawn(asu.disk.read(min(blk, remaining) * rs)) if remaining else None
            while remaining > 0:
                n = min(blk, remaining)
                remaining -= n
                yield pending
                if remaining:
                    pending = plat.spawn(asu.disk.read(min(blk, remaining) * rs))
                yield from asu.cpu.execute(cycles=n * io_c + self._cycles(n))
                yield from asu.disk_write(n * rs)
            yield from asu.disk.drain()

        def asu_stream(d, charge_cpu):
            """Stream blocks to the host (passive or order-dependent)."""
            asu = plat.asus[d]
            remaining = per_asu
            pending = plat.spawn(asu.disk.read(min(blk, remaining) * rs)) if remaining else None
            while remaining > 0:
                n = min(blk, remaining)
                remaining -= n
                yield pending
                if remaining:
                    pending = plat.spawn(asu.disk.read(min(blk, remaining) * rs))
                if charge_cpu:
                    yield from asu.cpu.execute(cycles=n * (io_c + net_c))
                plat.network.post(asu.node_id, host.node_id, n, n * rs)
            plat.network.post(asu.node_id, host.node_id, None, 16)

        def host_sink():
            """Host computes on every streamed block."""
            eofs = 0
            while eofs < D:
                msg = yield host.mailbox.get()
                if msg.payload is None:
                    eofs += 1
                    continue
                n = msg.payload
                yield from host.cpu.execute(
                    cycles=n * net_c + self._cycles(n) + n * net_c
                )

        procs = []
        if active and self.distributable:
            procs += [plat.spawn(asu_local(d)) for d in range(D)]
        else:
            charge = active  # active ASUs pay their own streaming CPU
            procs += [plat.spawn(asu_stream(d, charge)) for d in range(D)]
            procs.append(plat.spawn(host_sink()))
        plat.run(wait_for=procs)
        return plat.sim.now


def step_speedups(params: SystemParams, n_cells: int) -> dict[str, float]:
    """Active-vs-passive speedup per TerraFlow step (the §4.1 claim).

    Step costs (compares/record): restructure ≈ 8 (one visit per neighbour),
    sort ≈ log2(n), watershed ≈ 2·log2(n) (PQ push+pop) but order-dependent.
    """
    import math

    logn = max(1.0, math.log2(max(n_cells, 2)))
    steps = {
        "restructure": (8.0, True),
        "sort": (logn, True),
        "watershed": (2.0 * logn, False),
    }
    out = {}
    for name, (cpr, distributable) in steps.items():
        job = StepPhaseJob(params, n_cells, cpr, distributable)
        t_passive = job.run(active=False)
        t_active = job.run(active=True)
        out[name] = t_passive / t_active
    return out
