"""Spatial workload generators for the R-tree experiments."""

from __future__ import annotations

import numpy as np

from .geometry import make_rects

__all__ = ["random_points", "clustered_points", "window_queries"]


def random_points(rng: np.random.Generator, n: int, extent: float = 1000.0) -> np.ndarray:
    """Uniform point rectangles in [0, extent)^2."""
    x = rng.random(n) * extent
    y = rng.random(n) * extent
    return make_rects(x, y, x, y)


def clustered_points(
    rng: np.random.Generator,
    n: int,
    n_clusters: int = 8,
    extent: float = 1000.0,
    spread: float = 20.0,
) -> np.ndarray:
    """Gaussian clusters — the skewed spatial distribution."""
    centers = rng.random((n_clusters, 2)) * extent
    which = rng.integers(0, n_clusters, size=n)
    pts = centers[which] + rng.normal(0.0, spread, size=(n, 2))
    pts = np.clip(pts, 0.0, extent)
    return make_rects(pts[:, 0], pts[:, 1], pts[:, 0], pts[:, 1])


def window_queries(
    rng: np.random.Generator,
    n: int,
    extent: float = 1000.0,
    window: float = 50.0,
) -> np.ndarray:
    """Square window queries of side ``window`` placed uniformly."""
    x = rng.random(n) * (extent - window)
    y = rng.random(n) * (extent - window)
    return make_rects(x, y, x + window, y + window)
