"""Distributed R-trees on active storage (§4.2, Figure 5)."""

from .distributed import DistributedRTree, QueryStats
from .online import MaintenanceReport, OnlineDistributedRTree
from .geometry import (
    area,
    contains_points,
    intersects,
    make_rects,
    point_rects,
    rects_valid,
    union_mbr,
)
from .rtree import RTree, str_pack_order
from .workload import clustered_points, random_points, window_queries

__all__ = [
    "DistributedRTree",
    "QueryStats",
    "MaintenanceReport",
    "OnlineDistributedRTree",
    "area",
    "contains_points",
    "intersects",
    "make_rects",
    "point_rects",
    "rects_valid",
    "union_mbr",
    "RTree",
    "str_pack_order",
    "clustered_points",
    "random_points",
    "window_queries",
]
