"""Online distributed R-tree with ASU-side batch maintenance (§4.2).

"For online data structures, the maintenance work (for example, rebalancing)
at the lower levels can run as a batch job running on the ASUs, while the
host layer maintains the upper levels online."

:class:`OnlineDistributedRTree` keeps a *partitioned* distributed R-tree plus
a host-side insert buffer.  Queries stay correct at all times: they consult
the ASU subtrees *and* linearly scan the (small) buffer at the host.  When
the buffer crosses its threshold, :meth:`run_maintenance` executes the
rebalance as an emulated batch job: buffered rectangles stream to their
owning ASUs (by region), every dirty ASU rebuilds its subtree on its own CPU,
and the host refreshes its top-level MBRs online.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...emulator.params import SystemParams
from ...emulator.platform import ActivePlatform
from .distributed import CYCLES_PER_VISIT, DistributedRTree
from .geometry import intersects

__all__ = ["OnlineDistributedRTree", "MaintenanceReport"]


@dataclass
class MaintenanceReport:
    makespan: float
    n_inserted: int
    n_dirty_asus: int
    asu_cpu_util: list[float]
    host_util: float


class OnlineDistributedRTree:
    """Partitioned distributed R-tree + host insert buffer + batch rebuilds."""

    def __init__(
        self,
        rects: np.ndarray,
        params: SystemParams,
        page: int = 64,
        buffer_threshold: int = 1024,
    ):
        if buffer_threshold < 1:
            raise ValueError("buffer_threshold must be >= 1")
        self.params = params
        self.page = page
        self.buffer_threshold = int(buffer_threshold)
        self.base = DistributedRTree(rects, params, organisation="partition", page=page)
        #: host-side insert buffer (rows of rects)
        self.buffer = np.empty((0, 4), dtype=np.float64)
        self.n_maintenance_runs = 0

    # -- online operations ------------------------------------------------------
    @property
    def n_items(self) -> int:
        return int(self.base.rects.shape[0] + self.buffer.shape[0])

    @property
    def maintenance_due(self) -> bool:
        return self.buffer.shape[0] >= self.buffer_threshold

    def insert(self, rects: np.ndarray) -> None:
        """Buffer new rectangles at the host (upper levels stay online)."""
        rects = np.atleast_2d(np.asarray(rects, dtype=np.float64))
        if rects.shape[0]:
            self.buffer = np.concatenate([self.buffer, rects])

    def query(self, window: np.ndarray) -> np.ndarray:
        """All current rectangles intersecting the window.

        Returns the rects themselves (ids are reassigned by maintenance, so
        coordinates are the stable identity).
        """
        window = np.asarray(window, dtype=np.float64)
        ids = self.base.query_local(window)
        parts = [self.base.rects[ids]] if ids.shape[0] else []
        if self.buffer.shape[0]:
            mask = intersects(self.buffer, window)
            if mask.any():
                parts.append(self.buffer[mask])
        if not parts:
            return np.empty((0, 4), dtype=np.float64)
        return np.concatenate(parts)

    def query_brute(self, window: np.ndarray) -> np.ndarray:
        """Reference: linear scan over everything (base + buffer)."""
        allr = np.concatenate([self.base.rects, self.buffer])
        return allr[intersects(allr, np.asarray(window, dtype=np.float64))]

    # -- maintenance --------------------------------------------------------------
    def _owner_of(self, rects: np.ndarray) -> np.ndarray:
        """Region owner per rect: the ASU whose MBR grows least (classic
        least-enlargement R-tree placement against the host-level MBRs)."""
        mbrs = self.base.host_mbrs  # (D, 4)
        cx = (rects[:, 0] + rects[:, 2]) / 2.0
        cy = (rects[:, 1] + rects[:, 3]) / 2.0
        D = mbrs.shape[0]
        enlargement = np.empty((rects.shape[0], D))
        for d in range(D):
            m = mbrs[d]
            if not np.isfinite(m).all():
                enlargement[:, d] = np.inf
                continue
            nx0 = np.minimum(m[0], rects[:, 0])
            ny0 = np.minimum(m[1], rects[:, 1])
            nx1 = np.maximum(m[2], rects[:, 2])
            ny1 = np.maximum(m[3], rects[:, 3])
            enlargement[:, d] = (nx1 - nx0) * (ny1 - ny0) - (m[2] - m[0]) * (m[3] - m[1])
        return np.argmin(enlargement, axis=1)

    def run_maintenance(self) -> MaintenanceReport:
        """Flush the buffer: distribute inserts, rebuild dirty ASU subtrees.

        The rebuild is emulated: each dirty ASU streams its (old + new) data
        off disk, pays n·log2(n) compares to re-pack its subtree, and writes
        it back; the host pays only the per-insert routing and the top-level
        MBR refresh — the upper levels stay online.
        """
        new = self.buffer
        n_new = int(new.shape[0])
        owners = self._owner_of(new) if n_new else np.empty(0, dtype=np.int64)
        dirty = sorted(set(int(o) for o in owners))

        plat = ActivePlatform(self.params)
        host = plat.hosts[0]
        rs = 32  # bytes per stored rectangle

        def host_proc():
            # Route each buffered rect (least-enlargement test per rect).
            if n_new:
                yield from host.cpu.execute(
                    cycles=n_new * CYCLES_PER_VISIT / self.page
                )
            for d in dirty:
                batch = new[owners == d]
                yield from host.send_async(
                    plat.asus[d], ("inserts", batch), batch.shape[0] * rs, tag="ins"
                )

        def asu_proc(d):
            asu = plat.asus[d]
            msg = yield from asu.recv()
            _kind, batch = msg.payload
            n_local = self.base.asu_ids[d].shape[0] + batch.shape[0]
            # Stream old subtree in, rebuild (n log n), stream back out.
            yield from asu.disk_read(n_local * rs)
            logn = math.log2(max(n_local, 2))
            yield from asu.cpu.execute(cycles=n_local * logn * 50.0)
            yield from asu.disk_write(n_local * rs)
            yield from asu.disk.drain()

        procs = [plat.spawn(host_proc(), name="host")]
        procs += [plat.spawn(asu_proc(d), name=f"reb{d}") for d in dirty]
        plat.run(wait_for=procs)
        makespan = plat.sim.now

        # Apply the rebuild for real: fold the buffer into the base index.
        all_rects = np.concatenate([self.base.rects, new])
        self.base = DistributedRTree(
            all_rects, self.params, organisation="partition", page=self.page
        )
        self.buffer = np.empty((0, 4), dtype=np.float64)
        self.n_maintenance_runs += 1

        return MaintenanceReport(
            makespan=makespan,
            n_inserted=n_new,
            n_dirty_asus=len(dirty),
            asu_cpu_util=[a.cpu.utilization(makespan) for a in plat.asus],
            host_util=host.cpu.utilization(makespan),
        )
