"""Rectangle geometry for spatial indexing (§4.2).

Rectangles are stored as ``(N, 4)`` float64 arrays of ``[xmin, ymin, xmax,
ymax]`` so intersection tests vectorise over whole node pages.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "make_rects",
    "rects_valid",
    "intersects",
    "contains_points",
    "union_mbr",
    "area",
    "point_rects",
]


def make_rects(xmin, ymin, xmax, ymax) -> np.ndarray:
    """Stack coordinate arrays into an (N, 4) rect array."""
    return np.stack(
        [
            np.asarray(xmin, dtype=np.float64),
            np.asarray(ymin, dtype=np.float64),
            np.asarray(xmax, dtype=np.float64),
            np.asarray(ymax, dtype=np.float64),
        ],
        axis=-1,
    )


def point_rects(x, y) -> np.ndarray:
    """Degenerate rectangles for points."""
    return make_rects(x, y, x, y)


def rects_valid(rects: np.ndarray) -> bool:
    r = np.atleast_2d(rects)
    return bool(np.all(r[:, 0] <= r[:, 2]) and np.all(r[:, 1] <= r[:, 3]))


def intersects(rects: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Boolean mask: which rects overlap the query rect (borders touch)."""
    r = np.atleast_2d(rects)
    q = np.asarray(query, dtype=np.float64)
    return (
        (r[:, 0] <= q[2])
        & (r[:, 2] >= q[0])
        & (r[:, 1] <= q[3])
        & (r[:, 3] >= q[1])
    )


def contains_points(query: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    q = np.asarray(query, dtype=np.float64)
    return (x >= q[0]) & (x <= q[2]) & (y >= q[1]) & (y <= q[3])


def union_mbr(rects: np.ndarray) -> np.ndarray:
    """Minimum bounding rectangle of a set of rects."""
    r = np.atleast_2d(rects)
    if r.shape[0] == 0:
        raise ValueError("union of zero rectangles")
    return np.array(
        [r[:, 0].min(), r[:, 1].min(), r[:, 2].max(), r[:, 3].max()],
        dtype=np.float64,
    )


def area(rects: np.ndarray) -> np.ndarray:
    r = np.atleast_2d(rects)
    return (r[:, 2] - r[:, 0]) * (r[:, 3] - r[:, 1])
