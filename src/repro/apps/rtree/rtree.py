"""A packed R-tree with STR bulk loading (§4.2).

Built bottom-up with the Sort-Tile-Recursive method: leaves are filled with
spatially adjacent entries, then each level's MBRs are packed the same way
until a single root remains.  Nodes are arrays, queries are vectorised, and
the search counts node visits — the cost measure the distributed
organisations charge to the emulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .geometry import intersects, union_mbr

__all__ = ["RTree", "str_pack_order"]


def str_pack_order(rects: np.ndarray, page: int) -> np.ndarray:
    """Sort-Tile-Recursive ordering: x-slabs, then y within each slab."""
    n = rects.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    cx = (rects[:, 0] + rects[:, 2]) / 2.0
    cy = (rects[:, 1] + rects[:, 3]) / 2.0
    n_pages = math.ceil(n / page)
    n_slabs = max(1, math.ceil(math.sqrt(n_pages)))
    slab_size = math.ceil(n / n_slabs)
    by_x = np.lexsort((np.arange(n), cx))
    order = []
    for s in range(0, n, slab_size):
        slab = by_x[s : s + slab_size]
        slab_sorted = slab[np.lexsort((slab, cy[slab]))]
        order.append(slab_sorted)
    return np.concatenate(order)


@dataclass
class _Level:
    """One tree level: each node spans a contiguous child range below."""

    mbrs: np.ndarray          # (n_nodes, 4)
    child_start: np.ndarray   # first child index in the level below
    child_count: np.ndarray


@dataclass
class RTree:
    """Packed R-tree over data rectangles (ids are positions in ``rects``)."""

    rects: np.ndarray
    page: int = 64
    #: levels[0] is the leaf level; levels[-1] has a single root node
    levels: list[_Level] = field(default_factory=list, repr=False)
    #: permutation applied to the input: data slot i holds input rects[order[i]]
    order: np.ndarray = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.page < 2:
            raise ValueError("page size must be >= 2")
        self.rects = np.atleast_2d(np.asarray(self.rects, dtype=np.float64))
        if self.rects.shape[0] and self.rects.shape[1] != 4:
            raise ValueError("rects must be (N, 4)")
        self._build()

    # -- construction ---------------------------------------------------------
    def _build(self) -> None:
        n = self.rects.shape[0]
        self.order = str_pack_order(self.rects, self.page) if n else np.empty(0, np.int64)
        data = self.rects[self.order] if n else self.rects
        self._data = data
        if n == 0:
            self.levels = []
            return
        # Leaf level: group the packed data into pages.
        levels = []
        starts = np.arange(0, n, self.page)
        counts = np.minimum(self.page, n - starts)
        mbrs = np.stack([union_mbr(data[s : s + c]) for s, c in zip(starts, counts)])
        levels.append(_Level(mbrs, starts, counts))
        # Upper levels pack the level below.
        while levels[-1].mbrs.shape[0] > 1:
            below = levels[-1].mbrs
            m = below.shape[0]
            order = str_pack_order(below, self.page)
            below_sorted = below[order]
            # Permute the level below into packed order so parents span
            # contiguous ranges.
            levels[-1] = _Level(
                below_sorted,
                levels[-1].child_start[order],
                levels[-1].child_count[order],
            )
            starts = np.arange(0, m, self.page)
            counts = np.minimum(self.page, m - starts)
            mbrs = np.stack(
                [union_mbr(below_sorted[s : s + c]) for s, c in zip(starts, counts)]
            )
            levels.append(_Level(mbrs, starts, counts))
        self.levels = levels

    # -- queries --------------------------------------------------------------
    @property
    def height(self) -> int:
        return len(self.levels)

    @property
    def n_items(self) -> int:
        return int(self.rects.shape[0])

    def query(self, window: np.ndarray) -> tuple[np.ndarray, int]:
        """Ids of data rects intersecting the window, plus nodes visited.

        Node visits include the leaf pages scanned; the visit count is the
        I/O-and-CPU cost measure for the distributed organisations.
        """
        if not self.levels:
            return np.empty(0, dtype=np.int64), 0
        window = np.asarray(window, dtype=np.float64)
        visits = 0
        # Walk down from the root.
        frontier = np.array([0], dtype=np.int64)  # node indices at top level
        for li in range(len(self.levels) - 1, 0, -1):
            level = self.levels[li]
            visits += frontier.shape[0]
            next_frontier = []
            for node in frontier:
                if intersects(level.mbrs[node : node + 1], window)[0]:
                    s = level.child_start[node]
                    c = level.child_count[node]
                    hits = np.nonzero(
                        intersects(self.levels[li - 1].mbrs[s : s + c], window)
                    )[0]
                    next_frontier.append(s + hits)
            frontier = (
                np.concatenate(next_frontier) if next_frontier else np.empty(0, np.int64)
            )
        # Leaf pages: scan matching data entries.
        leaves = self.levels[0]
        visits += frontier.shape[0]
        out = []
        for node in frontier:
            s = leaves.child_start[node]
            c = leaves.child_count[node]
            hits = np.nonzero(intersects(self._data[s : s + c], window))[0]
            if hits.shape[0]:
                out.append(self.order[s + hits])
        ids = np.concatenate(out) if out else np.empty(0, dtype=np.int64)
        return np.sort(ids), visits

    def query_brute(self, window: np.ndarray) -> np.ndarray:
        """Reference linear scan."""
        return np.sort(np.nonzero(intersects(self.rects, window))[0])
