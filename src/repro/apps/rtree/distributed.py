"""Distributed R-tree organisations on ASUs (§4.2, Figure 5).

Two ways to split the index between a host and D ASUs:

* **partition** — "build a tree over all the data at each ASU, and treat each
  as a leaf of the host tree".  The host keeps a small top tree whose leaves
  are ASU subtree MBRs; a query descends the host tree and is forwarded only
  to overlapping ASUs.  Searches distribute across ASUs — good throughput for
  many concurrent queries.
* **stripe** — "stripe a host leaf across all of the ASUs".  Data is dealt
  round-robin; every query executes in parallel on all ASUs, each scanning
  1/D of the work — bounded latency for a single query.
* **hybrid** — "hybrid solutions using a subset of the ASUs or replicating
  subtrees on multiple ASUs are also possible": the space is partitioned into
  D/k regions and each region's subtree is replicated on k ASUs; queries go
  to the least-recently-used replica, trading storage for concurrency within
  hot regions.

The emulated query engine charges each ASU ``visits x page-cost`` CPU for its
local search (real searches produce the visit counts) plus message costs, and
reports per-query latency and batch throughput for either organisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ...emulator.params import SystemParams
from ...emulator.platform import ActivePlatform
from .geometry import union_mbr
from .rtree import RTree

__all__ = ["DistributedRTree", "QueryStats"]

#: CPU cycles to inspect one R-tree node page (scan + compares)
CYCLES_PER_VISIT = 20_000.0
#: bytes per forwarded query / reply message header
QUERY_MSG_BYTES = 64


@dataclass
class QueryStats:
    """Result of an emulated query batch."""

    organisation: str
    n_queries: int
    makespan: float
    mean_latency: float
    max_latency: float
    total_asu_visits: int
    #: ASUs contacted per query (average)
    mean_fanout: float

    @property
    def throughput(self) -> float:
        return self.n_queries / self.makespan if self.makespan > 0 else 0.0


class DistributedRTree:
    """An R-tree split across ASUs in either Figure-5 organisation."""

    def __init__(
        self,
        rects: np.ndarray,
        params: SystemParams,
        organisation: str = "partition",
        page: int = 64,
        replication: int = 2,
        placement: str = "modulo",
        placement_seed: int = 0,
    ):
        if organisation not in ("partition", "stripe", "hybrid"):
            raise ValueError("organisation must be 'partition', 'stripe' or 'hybrid'")
        if placement not in ("modulo", "asura"):
            raise ValueError("placement must be 'modulo' or 'asura'")
        self.params = params
        self.organisation = organisation
        self.page = page
        self.placement = placement
        self.rects = np.atleast_2d(np.asarray(rects, dtype=np.float64))
        D = params.n_asus
        n = self.rects.shape[0]
        self.replication = 1
        #: per-group round-robin cursor over that group's replicas
        self._replica_rr: dict[int, int] = {}

        if organisation == "partition":
            # Spatial partition: pack all rects, deal contiguous chunks so
            # each ASU owns a compact region.
            base = RTree(self.rects, page=page)
            packed_ids = base.order
            chunks = np.array_split(packed_ids, D)
        elif organisation == "hybrid":
            if not 1 <= replication <= D:
                raise ValueError(f"replication must be in [1, {D}]")
            self.replication = int(replication)
            n_groups = max(1, D // self.replication)
            base = RTree(self.rects, page=page)
            group_chunks = np.array_split(base.order, n_groups)
            if placement == "asura":
                # ASURA draws (repro.replica): group g's subtree lands on
                # the replica set the deterministic draw sequence picks, so
                # growing the fleet relocates ~1/(D+1) of the replica slots
                # instead of reshuffling every group the way modulo does.
                from ...replica import ReplicaPlacement

                asura = ReplicaPlacement(D, seed=placement_seed)
                self._group_replicas = [
                    asura.replicas(g, self.replication)
                    for g in range(n_groups)
                ]
            else:
                # ASU d serves group d % n_groups: each group gets >=
                # replication replicas spread across the ASU population.
                self._group_replicas = [
                    [d for d in range(D) if d % n_groups == g]
                    for g in range(n_groups)
                ]
            chunks = [
                np.concatenate(
                    [group_chunks[g] for g in range(n_groups)
                     if d in self._group_replicas[g]]
                    or [np.empty(0, dtype=np.int64)]
                )
                for d in range(D)
            ]
            self._n_groups = n_groups
            #: per-group MBR — hybrid query routing is group-level, so the
            #: replica choice is independent of which ASUs hold the group
            self._group_mbrs = np.stack(
                [
                    union_mbr(self.rects[c]) if c.shape[0] else
                    np.array([np.inf, np.inf, -np.inf, -np.inf])
                    for c in group_chunks
                ]
            )
            #: per-group (global ids, subtree) — every replica of a group
            #: holds an identical copy, so a search only touches the chosen
            #: group's subtree even on an ASU that stores several groups
            self._group_trees = [
                (np.asarray(c, dtype=np.int64), RTree(self.rects[c], page=page))
                for c in group_chunks
            ]
        else:
            # Stripe: deal round-robin so every ASU sees every region.
            chunks = [np.arange(d, n, D, dtype=np.int64) for d in range(D)]

        #: per-ASU (global ids, local subtree)
        self.asu_ids: list[np.ndarray] = []
        self.asu_trees: list[RTree] = []
        for chunk in chunks:
            self.asu_ids.append(np.asarray(chunk, dtype=np.int64))
            self.asu_trees.append(RTree(self.rects[chunk], page=page))
        #: host-level MBR per ASU subtree (the "host tree" leaves)
        self.host_mbrs = np.stack(
            [
                union_mbr(self.rects[ids]) if ids.shape[0] else
                np.array([np.inf, np.inf, -np.inf, -np.inf])
                for ids in self.asu_ids
            ]
        )

    # -- logical search ------------------------------------------------------
    def asus_for(self, window: np.ndarray) -> list[int]:
        """Which ASUs a query must visit.

        For the hybrid organisation this *rotates* among a group's replicas,
        so repeated calls for the same window may return different (equally
        correct) replica choices — by design, that is the load spreading.
        """
        return [d for d, _g in self._targets(window)]

    def _targets(self, window: np.ndarray) -> list[tuple[int, Optional[int]]]:
        """(ASU, group) visit list; group is None outside the hybrid layout.

        A hybrid search is *group-scoped*: the chosen replica only searches
        the selected group's subtree, so an ASU storing several groups (the
        ASURA placement allows this) never double-reports neighbours.
        """
        from .geometry import intersects

        D = self.params.n_asus
        if self.organisation == "stripe":
            return [(d, None) for d in range(D)]
        if self.organisation != "hybrid":
            mask = intersects(
                self.host_mbrs, np.asarray(window, dtype=np.float64)
            )
            return [(int(i), None) for i in np.nonzero(mask)[0]]
        # One replica per intersecting group, chosen round-robin per group.
        mask = intersects(
            self._group_mbrs, np.asarray(window, dtype=np.float64)
        )
        out: list[tuple[int, Optional[int]]] = []
        for group in (int(g) for g in np.nonzero(mask)[0]):
            replicas = self._group_replicas[group]
            cursor = self._replica_rr.get(group, 0)
            out.append((replicas[cursor % len(replicas)], group))
            self._replica_rr[group] = cursor + 1
        return out

    def _search_scope(self, d: int, group: Optional[int]):
        """(global ids, subtree) a visit searches on ASU ``d``."""
        if group is None:
            return self.asu_ids[d], self.asu_trees[d]
        return self._group_trees[group]

    def query_local(self, window: np.ndarray) -> np.ndarray:
        """Pure (non-emulated) distributed query, for correctness checks."""
        out = []
        for d, g in self._targets(window):
            ids, tree = self._search_scope(d, g)
            local_ids, _v = tree.query(window)
            if local_ids.shape[0]:
                out.append(ids[local_ids])
        ids = np.concatenate(out) if out else np.empty(0, dtype=np.int64)
        return np.sort(ids)

    # -- emulated execution ------------------------------------------------------
    def run_queries(self, windows: np.ndarray, seed: int = 0) -> QueryStats:
        """Emulate a batch of concurrent window queries.

        The host dispatches every query at t=0 (a server handling concurrent
        search requests); each contacted ASU searches its subtree for real,
        charging visit costs; the host collects all replies.
        """
        windows = np.atleast_2d(np.asarray(windows, dtype=np.float64))
        plat = ActivePlatform(self.params)
        host = plat.hosts[0]
        latencies: dict[int, float] = {}
        issue_time: dict[int, float] = {}
        total_visits = 0

        # Resolve targets once: the hybrid organisation's replica rotation is
        # stateful, so every participant must see the same decision.
        targets_per_query = [self._targets(w) for w in windows]
        fanouts = [len(t) for t in targets_per_query]
        n_replies_expected = sum(fanouts)

        def host_proc():
            # Dispatch: small CPU cost per query to route through host tree.
            for qi, w in enumerate(windows):
                targets = targets_per_query[qi]
                issue_time[qi] = plat.sim.now
                yield from host.cpu.execute(
                    cycles=CYCLES_PER_VISIT * max(1, len(self.host_mbrs)) / self.page
                )
                if not targets:
                    # No ASU subtree overlaps: the host tree answers alone.
                    latencies[qi] = plat.sim.now - issue_time[qi]
                for d, g in targets:
                    yield from host.send_async(
                        plat.asus[d], ("query", qi, w, g), QUERY_MSG_BYTES,
                        tag="q",
                    )
            # Collect replies.
            outstanding = {qi: len(t) for qi, t in enumerate(targets_per_query)}
            received = 0
            while received < n_replies_expected:
                msg = yield from host.recv()
                _kind, qi, _ids = msg.payload
                received += 1
                outstanding[qi] -= 1
                if outstanding[qi] == 0:
                    latencies[qi] = plat.sim.now - issue_time[qi]

        def asu_proc(d):
            nonlocal total_visits
            asu = plat.asus[d]
            expected = sum(
                1 for t in targets_per_query for td, _g in t if td == d
            )
            for _ in range(expected):
                msg = yield from asu.recv()
                _kind, qi, w, g = msg.payload
                gids, tree = self._search_scope(d, g)
                local_ids, visits = tree.query(w)
                total_visits += visits
                # Leaf pages stream off the local disk.
                yield from asu.disk.read(visits * self.page * 32)
                yield from asu.cpu.execute(cycles=visits * CYCLES_PER_VISIT)
                ids = gids[local_ids] if local_ids.shape[0] else local_ids
                nbytes = QUERY_MSG_BYTES + ids.shape[0] * 8
                yield from asu.send_async(host, ("reply", qi, ids), nbytes, tag="r")

        procs = [plat.spawn(host_proc(), name="host")]
        procs += [plat.spawn(asu_proc(d), name=f"asu{d}") for d in range(self.params.n_asus)]
        plat.run(wait_for=procs)

        lat = np.array([latencies[qi] for qi in range(windows.shape[0])])
        return QueryStats(
            organisation=self.organisation,
            n_queries=windows.shape[0],
            makespan=plat.sim.now,
            mean_latency=float(lat.mean()),
            max_latency=float(lat.max()),
            total_asu_visits=total_visits,
            mean_fanout=float(np.mean(fanouts)),
        )
