"""Example application domains: GIS terrain analysis and spatial indexing (§4)."""
