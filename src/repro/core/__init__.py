"""Load-managed active storage: the paper's primary contribution (§3)."""

from .config import BUCKET_BUFFER_BYTES, ConfigSolver, DSMConfig
from .costs import RecordCosts, StepCosts
from .executor import PipelineJob, PipelineResult
from .load_manager import InstanceStats, LoadManager
from .placement import Placement, PlacementSolver, StagePlacement
from .predict import PipelinePrediction, predict_pass1, predict_pass2, predict_speedup
from .routing import (
    AdaptiveSwitch,
    JoinShortestQueue,
    RandomizedCycling,
    RoundRobin,
    Router,
    SimpleRandomization,
    StaticPartition,
    WeightedCapacity,
    make_router,
)

__all__ = [
    "BUCKET_BUFFER_BYTES",
    "ConfigSolver",
    "DSMConfig",
    "RecordCosts",
    "StepCosts",
    "PipelineJob",
    "PipelineResult",
    "InstanceStats",
    "LoadManager",
    "Placement",
    "PlacementSolver",
    "StagePlacement",
    "PipelinePrediction",
    "predict_pass1",
    "predict_pass2",
    "predict_speedup",
    "AdaptiveSwitch",
    "JoinShortestQueue",
    "RandomizedCycling",
    "RoundRobin",
    "Router",
    "SimpleRandomization",
    "StaticPartition",
    "WeightedCapacity",
    "make_router",
]
