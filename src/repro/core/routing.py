"""Routing policies: how records of a set are spread across functor instances.

"The routing of records across functor instances may be responsive to dynamic
load conditions visible to the system.  In some cases, randomized routing
techniques like simple randomization (SR) may reduce data dependencies and
interference ...  Routing policies may also consider static information about
node capacity to handle heterogeneous processing rates." (§3.3)

Policies route *(bucket, fragment)* pairs produced by the distribute phase to
host instances of the block-sort functor:

* :class:`StaticPartition` — Figure 10's baseline: bucket b is owned by host
  b·H/α forever.  Skewed keys ⇒ skewed hosts.
* :class:`RoundRobin` — rotate hosts per fragment.
* :class:`SimpleRandomization` — SR of [35]: each fragment goes to a host
  drawn uniformly at random, preserving balance in expectation regardless of
  bucket skew.
* :class:`JoinShortestQueue` — dynamic: send to the host with the least
  outstanding work (the load feedback loop).
* :class:`WeightedCapacity` — static capacity-aware split for heterogeneous
  hosts.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "Router",
    "StaticPartition",
    "RoundRobin",
    "SimpleRandomization",
    "RandomizedCycling",
    "JoinShortestQueue",
    "WeightedCapacity",
    "AdaptiveSwitch",
    "make_router",
    "pick_least_loaded",
]


def pick_least_loaded(
    values: np.ndarray, candidates: Sequence[int]
) -> Optional[int]:
    """Least-loaded candidate by a live gauge-vector array, lowest index wins.

    The JSQ decision rule factored out for callers that steer over a
    *different* instance axis than a :class:`Router` owns — e.g. the replica
    layer picks read/repair sources among an ASU subset using the same
    registry gauge-vector feedback mechanism the load manager routes functor
    work with.  Deterministic: ties break toward the lowest index.
    """
    best = None
    for i in candidates:
        if best is None or values[i] < values[best]:
            best = i
    return best


class Router(abc.ABC):
    """Chooses a destination instance for each fragment of a set."""

    name = "router"
    #: True if the policy consumes dynamic load feedback
    dynamic = False

    def __init__(self, n_instances: int):
        if n_instances < 1:
            raise ValueError("need at least one instance")
        self.n_instances = int(n_instances)
        #: outstanding records per instance (fed back by the runtime).
        #: float64 so the storage can be adopted by (or swapped for) a
        #: metrics-registry GaugeVector without changing a single decision:
        #: record counts are exact integers far below 2**53, so comparisons,
        #: argmin, and sums are bit-equal to the integer arithmetic.
        self.outstanding = np.zeros(self.n_instances, dtype=np.float64)
        self.sent = np.zeros(self.n_instances, dtype=np.float64)
        #: instances still accepting traffic; cleared by :meth:`quarantine`
        self.alive = np.ones(self.n_instances, dtype=bool)
        #: records currently stalled behind each instance's send window
        #: (None until :meth:`attach_backpressure`); dynamic policies add it
        #: to their load signal so sustained backpressure steers work away.
        self.backpressure: Optional[np.ndarray] = None

    def attach_feedback(self, outstanding: np.ndarray, sent: np.ndarray) -> None:
        """Adopt externally-owned feedback storage (registry GaugeVectors).

        The arrays take over the router's current counts and every subsequent
        ``on_sent``/``on_completed`` mutates them in place — the registry and
        the routing policy read the *same* numbers, making the registry the
        single source of load feedback.
        """
        for arr in (outstanding, sent):
            if arr.shape != (self.n_instances,) or arr.dtype != np.float64:
                raise ValueError("feedback arrays must be float64 of length n_instances")
        outstanding[:] = self.outstanding
        sent[:] = self.sent
        self.outstanding = outstanding
        self.sent = sent

    def attach_backpressure(self, backpressure: np.ndarray) -> None:
        """Adopt externally-owned backpressure storage (a registry GaugeVector).

        The array holds records currently blocked on each instance's send
        window; the load manager mutates it in place around window waits.
        Adding an all-zeros vector to a policy's load signal is float-exact,
        so attaching it changes nothing until backpressure actually occurs.
        """
        if backpressure.shape != (self.n_instances,) or backpressure.dtype != np.float64:
            raise ValueError("backpressure array must be float64 of length n_instances")
        self.backpressure = backpressure

    @abc.abstractmethod
    def choose(self, bucket: int, n_records: int) -> int:
        """Destination instance for a fragment of ``n_records`` of ``bucket``."""

    def pick(self, bucket: int, n_records: int, avoid: Sequence[int] = ()) -> int:
        """Like :meth:`choose`, but never returns a quarantined instance.

        The policy's own decision is remapped to the next alive instance
        (cyclically), so static policies keep their bucket affinity modulo
        failures and the remap is deterministic.  Dynamic policies override
        masking inside ``choose`` where they can do better.

        ``avoid`` lists instances to steer around as a *soft* signal (e.g.
        hosts behind an open circuit breaker): they are skipped like
        quarantined instances, but if every alive instance is avoided the
        remap falls back to alive-only rather than failing — degraded links
        beat no links.
        """
        i = self.choose(bucket, n_records)
        if self.alive[i] and i not in avoid:
            return i
        for step in range(1, self.n_instances):
            j = (i + step) % self.n_instances
            if self.alive[j] and j not in avoid:
                return j
        if self.alive[i]:
            return i
        for step in range(1, self.n_instances):
            j = (i + step) % self.n_instances
            if self.alive[j]:
                return j
        raise RuntimeError("all instances quarantined")

    def quarantine(self, instance: int) -> None:
        """Stop routing to ``instance`` (detected failure)."""
        if not 0 <= instance < self.n_instances:
            raise ValueError(f"instance {instance} out of range")
        self.alive[instance] = False
        if not self.alive.any():
            raise RuntimeError("quarantined the last alive instance")

    # -- feedback from the runtime -----------------------------------------
    def on_sent(self, instance: int, n_records: int) -> None:
        self.outstanding[instance] += n_records
        self.sent[instance] += n_records

    def on_completed(self, instance: int, n_records: int) -> None:
        self.outstanding[instance] -= n_records

    # -- diagnostics -----------------------------------------------------------
    def imbalance(self) -> float:
        """max/mean ratio of records sent (1.0 = perfectly balanced)."""
        total = self.sent.sum()
        if total == 0:
            return 1.0
        return float(self.sent.max() / (total / self.n_instances))


class StaticPartition(Router):
    """Bucket ranges statically assigned to instances (Fig 10 baseline)."""

    name = "static"

    def __init__(self, n_instances: int, n_buckets: int):
        super().__init__(n_instances)
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.n_buckets = int(n_buckets)

    def choose(self, bucket: int, n_records: int) -> int:
        if not 0 <= bucket < self.n_buckets:
            raise ValueError(f"bucket {bucket} out of range [0, {self.n_buckets})")
        return bucket * self.n_instances // self.n_buckets


class RoundRobin(Router):
    """Rotate instances regardless of bucket."""

    name = "round_robin"

    def __init__(self, n_instances: int):
        super().__init__(n_instances)
        self._next = 0

    def choose(self, bucket: int, n_records: int) -> int:
        i = self._next
        self._next = (self._next + 1) % self.n_instances
        return i


class SimpleRandomization(Router):
    """SR: uniform random instance per fragment (Vitter & Hutchinson [35])."""

    name = "sr"

    def __init__(self, n_instances: int, rng: Optional[np.random.Generator] = None):
        super().__init__(n_instances)
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def choose(self, bucket: int, n_records: int) -> int:
        if self.alive.all():
            return int(self.rng.integers(0, self.n_instances))
        # Draw among survivors only: keeps the split uniform after a
        # quarantine instead of piling the dead slot onto one neighbour.
        candidates = np.flatnonzero(self.alive)
        return int(candidates[int(self.rng.integers(0, len(candidates)))])


class RandomizedCycling(Router):
    """RC of Vitter & Hutchinson [35]: per-bucket random cyclic order.

    Each bucket gets an independent random permutation of the instances and
    cycles through it, so consecutive fragments of one bucket never collide
    on one instance while buckets stay decorrelated — the refinement of SR
    the paper cites for distribution sort.
    """

    name = "rc"

    def __init__(self, n_instances: int, n_buckets: int, rng: Optional[np.random.Generator] = None):
        super().__init__(n_instances)
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.n_buckets = int(n_buckets)
        self._perm = np.stack(
            [rng.permutation(n_instances) for _ in range(self.n_buckets)]
        )
        self._pos = np.zeros(self.n_buckets, dtype=np.int64)

    def choose(self, bucket: int, n_records: int) -> int:
        if not 0 <= bucket < self.n_buckets:
            raise ValueError(f"bucket {bucket} out of range [0, {self.n_buckets})")
        i = int(self._perm[bucket, self._pos[bucket] % self.n_instances])
        self._pos[bucket] += 1
        return i


class JoinShortestQueue(Router):
    """Send to the instance with the fewest outstanding records."""

    name = "jsq"
    dynamic = True

    def choose(self, bucket: int, n_records: int) -> int:
        load = self.outstanding
        if self.backpressure is not None:
            # Records stalled behind a full send window count as queued work:
            # sustained backpressure on an instance steers traffic away.  The
            # sum is float-exact, so an all-zeros vector changes no decision.
            load = load + self.backpressure
        if self.alive.all():
            return int(np.argmin(load))
        masked = np.where(self.alive, load, np.inf)
        return int(np.argmin(masked))


class WeightedCapacity(Router):
    """Deterministic proportional split by static capacity weights.

    Routes so that cumulative records per instance track the weight vector —
    the "static information about node capacity" policy for heterogeneous
    hosts (§3.3).
    """

    name = "weighted"

    def __init__(self, weights: Sequence[float]):
        super().__init__(len(weights))
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w <= 0):
            raise ValueError("weights must be positive")
        self.weights = w / w.sum()

    def choose(self, bucket: int, n_records: int) -> int:
        total = self.sent.sum() + 1.0
        deficit = self.weights - self.sent / total
        if not self.alive.all():
            deficit = np.where(self.alive, deficit, -np.inf)
        return int(np.argmax(deficit))


class AdaptiveSwitch(Router):
    """Starts with static ownership, migrates to SR when imbalance appears.

    Implements §3.3's dynamic adaptation *within* a run: the load manager
    watches the record split and, once the max/mean ratio crosses
    ``threshold``, re-routes subsequent fragments with simple randomization.
    Records already routed are not moved — this is function(-load) migration,
    not data migration, exactly the paper's "migration of compute load
    without moving application objects".
    """

    name = "adaptive_switch"
    dynamic = True

    def __init__(
        self,
        n_instances: int,
        n_buckets: int,
        threshold: float = 1.15,
        min_records: int = 1024,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__(n_instances)
        self._static = StaticPartition(n_instances, n_buckets)
        self._sr = SimpleRandomization(n_instances, rng)
        self.threshold = float(threshold)
        self.min_records = int(min_records)
        #: simulated records routed before the switch happened (-1 = never)
        self.switched_after: int = -1

    @property
    def switched(self) -> bool:
        return self.switched_after >= 0

    def quarantine(self, instance: int) -> None:
        super().quarantine(instance)
        self._static.quarantine(instance)
        self._sr.quarantine(instance)

    def choose(self, bucket: int, n_records: int) -> int:
        if not self.switched:
            total = int(self.sent.sum())
            if total >= self.min_records and self.imbalance() > self.threshold:
                self.switched_after = total
        if self.switched:
            return self._sr.choose(bucket, n_records)
        return self._static.choose(bucket, n_records)


def make_router(
    policy: str,
    n_instances: int,
    n_buckets: int = 1,
    rng: Optional[np.random.Generator] = None,
    weights: Optional[Sequence[float]] = None,
) -> Router:
    """Factory by policy name (the bench harness sweeps these)."""
    if policy == "static":
        return StaticPartition(n_instances, n_buckets)
    if policy == "round_robin":
        return RoundRobin(n_instances)
    if policy == "sr":
        return SimpleRandomization(n_instances, rng)
    if policy == "rc":
        return RandomizedCycling(n_instances, n_buckets, rng)
    if policy == "jsq":
        return JoinShortestQueue(n_instances)
    if policy == "adaptive_switch":
        return AdaptiveSwitch(n_instances, n_buckets, rng=rng)
    if policy == "weighted":
        if weights is None:
            raise ValueError("weighted policy needs weights")
        return WeightedCapacity(weights)
    raise ValueError(
        f"unknown routing policy {policy!r}; choose from "
        "static/round_robin/sr/rc/jsq/adaptive_switch/weighted"
    )
