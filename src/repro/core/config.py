"""DSM-Sort configuration: the (α, β, γ) parameter solver (§4.3).

"DSM-Sort can adaptively reconfigure to match varying parameters of the
active storage systems.  Choosing the distribution, sort, and merge
parameters appropriately allows us to balance computation at ASUs and hosts,
as well as conform to memory constraints on the ASUs."

Constraints honoured by the solver:

* α · β · γ = n  (total work n·log(αβγ) = n·log n, §4.3);
* α bounded by ASU buffer space (α bucket buffers must fit ASU memory);
* γ bounded by ASU buffer space (γ merge buffers must fit);
* β bounded by host memory (one run must fit in RAM);
* the merge split γ = γ1 · γ2 divides fan-in between ASUs and hosts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..emulator.params import SystemParams
from .predict import predict_pass1, predict_speedup

__all__ = ["DSMConfig", "ConfigSolver", "BUCKET_BUFFER_BYTES"]

#: per-bucket staging buffer an ASU needs while distributing (bounds α)
BUCKET_BUFFER_BYTES = 32 * 1024
#: per-run merge buffer an ASU needs during the merge phase (bounds γ)
MERGE_BUFFER_BYTES = 64 * 1024


@dataclass(frozen=True)
class DSMConfig:
    """One concrete DSM-Sort configuration."""

    n_records: int
    alpha: int   # distribute order
    beta: int    # block-sort run length
    gamma: int   # total merge fan-in
    gamma1: int = 1  # ASU-side share of the merge fan-in
    gamma2: int = 0  # host-side share (0 = derive as gamma / gamma1)

    def __post_init__(self) -> None:
        for name in ("alpha", "beta", "gamma"):
            v = getattr(self, name)
            if v < 1:
                raise ValueError(f"{name} must be >= 1, got {v}")
        if self.gamma % max(self.gamma1, 1) != 0:
            raise ValueError(
                f"gamma1={self.gamma1} must divide gamma={self.gamma}"
            )
        g2 = self.gamma2 or self.gamma // self.gamma1
        if self.gamma1 * g2 != self.gamma:
            raise ValueError(
                f"gamma1*gamma2 = {self.gamma1}*{g2} != gamma = {self.gamma}"
            )

    @property
    def merge_host_fan_in(self) -> int:
        return self.gamma2 or self.gamma // self.gamma1

    @property
    def work_per_record_log(self) -> float:
        """log2(αβγ) — total compares per record across all phases (§4.3)."""
        return math.log2(self.alpha * self.beta * self.gamma)

    def describe(self) -> str:
        return (
            f"n={self.n_records} alpha={self.alpha} beta={self.beta} "
            f"gamma={self.gamma} (gamma1={self.gamma1} x gamma2={self.merge_host_fan_in})"
        )

    @classmethod
    def for_n(cls, n_records: int, alpha: int, gamma: int, gamma1: int = 1) -> "DSMConfig":
        """Derive β from the α·β·γ = n identity (rounded up to >= 1)."""
        if n_records < 1:
            raise ValueError("n_records must be >= 1")
        beta = max(1, round(n_records / (alpha * gamma)))
        return cls(
            n_records=n_records, alpha=alpha, beta=beta, gamma=gamma, gamma1=gamma1
        )


class ConfigSolver:
    """Chooses the configuration the load manager predicts to be fastest.

    This is the "adaptive" series in Figure 9: for each platform, sweep the
    feasible α values (powers of two within the ASU memory bound) and keep
    the one with the best predicted pass-1 rate.
    """

    def __init__(self, params: SystemParams, gamma: int = 64):
        self.params = params
        self.gamma = int(gamma)

    def max_alpha(self) -> int:
        """Largest power-of-two α whose bucket buffers fit ASU memory."""
        cap = max(1, self.params.asu_mem // BUCKET_BUFFER_BYTES)
        return 1 << (cap.bit_length() - 1)

    def max_gamma(self) -> int:
        """Largest power-of-two merge fan-in fitting ASU merge buffers."""
        cap = max(2, self.params.asu_mem // MERGE_BUFFER_BYTES)
        return 1 << (cap.bit_length() - 1)

    def feasible_alphas(self) -> list[int]:
        out = []
        a = 1
        top = self.max_alpha()
        while a <= top:
            out.append(a)
            a *= 2
        return out

    def beta_for(self, n_records: int, alpha: int) -> int:
        beta = max(1, round(n_records / (alpha * self.gamma)))
        # β is also bounded by host memory (a run must fit in RAM).
        mem_bound = max(1, self.params.host_mem // self.params.schema.record_size)
        return min(beta, mem_bound)

    def config_for_alpha(self, n_records: int, alpha: int) -> DSMConfig:
        return DSMConfig(
            n_records=n_records,
            alpha=alpha,
            beta=self.beta_for(n_records, alpha),
            gamma=min(self.gamma, self.max_gamma()),
        )

    def choose(self, n_records: int) -> DSMConfig:
        """The adaptive configuration: argmax of predicted pass-1 rate."""
        best = None
        best_rate = -1.0
        for alpha in self.feasible_alphas():
            cfg = self.config_for_alpha(n_records, alpha)
            rate = predict_pass1(self.params, cfg.alpha, cfg.beta).bottleneck_rate
            if rate > best_rate:
                best, best_rate = cfg, rate
        assert best is not None
        return best

    def choose_gamma_split(self, gamma: int | None = None) -> tuple[int, int]:
        """Pick (γ1, γ2) with γ1·γ2 = γ maximising predicted pass-2 rate.

        The second adaptation axis of §4.3: "the fan-in of merge functors and
        the fan-out of distribution functors may vary to adjust the balance
        of load between sort pipeline phases executing on ASUs and hosts."
        """
        from .predict import predict_pass2

        g = gamma if gamma is not None else min(self.gamma, self.max_gamma())
        # A pre-merge of fan-in γ1 is only realisable if each ASU actually
        # holds γ1 runs of a bucket: runs are striped, so each ASU gets about
        # γ / D per bucket.  Larger γ1 would merge fewer runs than charged
        # and leave the host a multi-pass completion.
        g1_cap = max(1, g // self.params.n_asus)
        best = (1, g)
        best_rate = -1.0
        g1 = 1
        while g1 <= g1_cap:
            if g % g1 == 0:
                rate = predict_pass2(self.params, g1, g // g1).bottleneck_rate
                if rate > best_rate:
                    best, best_rate = (g1, g // g1), rate
            g1 *= 2
        return best

    def derate_for_sharing(self, asu_duty: float) -> "ConfigSolver":
        """A solver that sees only the ASU capacity left by competitors.

        ASUs are shared network storage (§1); when a competing application
        consumes ``asu_duty`` of every ASU's CPU, the effective power ratio
        rises to c / (1 - duty).  Choosing the configuration against the
        derated platform is how the load manager adapts to load conditions.
        """
        if not 0.0 <= asu_duty < 1.0:
            raise ValueError("asu_duty must be in [0, 1)")
        eff = self.params.with_(
            asu_ratio=self.params.asu_ratio / (1.0 - asu_duty)
        )
        return ConfigSolver(eff, gamma=self.gamma)

    def predicted_speedup(self, cfg: DSMConfig, baseline_alpha: int = 64) -> float:
        base_beta = self.beta_for(cfg.n_records, baseline_alpha)
        return predict_speedup(
            self.params, cfg.alpha, cfg.beta, baseline_alpha, base_beta
        )
