"""The dynamic load manager: runtime feedback driving routing decisions.

"Dynamic changes in load at different points of the system can cause
imbalances ... the load distribution is difficult to determine statically
when ASUs are shared by multiple applications or if nodes have heterogeneous
performance characteristics.  Moreover, many data-intensive applications are
data-dependent; static partitioning of work does not yield a predictably
balanced distribution." (§3.3)

The :class:`LoadManager` ties the pieces together: it owns a
:class:`~repro.core.routing.Router`, keeps per-instance progress counters fed
by the runtime, exposes imbalance metrics, and (between runs) consults the
:class:`~repro.core.config.ConfigSolver` to re-pick the DSM configuration —
the two adaptation axes the paper demonstrates (Figures 9 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..emulator.params import SystemParams
from .config import ConfigSolver, DSMConfig
from .routing import Router, make_router

__all__ = ["LoadManager", "InstanceStats"]


@dataclass
class InstanceStats:
    """Progress counters for one functor instance."""

    records_routed: int = 0
    records_completed: int = 0
    busy_cycles: float = 0.0
    #: set when a detected failure removed this instance from routing
    quarantined: bool = False

    @property
    def backlog(self) -> int:
        return self.records_routed - self.records_completed


class LoadManager:
    """Routing + reconfiguration authority for one application run."""

    def __init__(
        self,
        params: SystemParams,
        n_instances: int,
        n_buckets: int,
        policy: str = "sr",
        rng: Optional[np.random.Generator] = None,
        weights=None,
    ):
        self.params = params
        self.policy = policy
        self.router: Router = make_router(
            policy, n_instances, n_buckets=n_buckets, rng=rng, weights=weights
        )
        self.instances = [InstanceStats() for _ in range(n_instances)]
        self.n_buckets = n_buckets
        #: simulator whose tracer receives routing-decision counters (optional)
        self._sim = None

    def attach_sim(self, sim) -> None:
        """Attach the simulator so routing decisions land in its trace."""
        self._sim = sim

    # -- routing path --------------------------------------------------------
    def route(self, bucket: int, n_records: int) -> int:
        """Pick the instance for a fragment and record the decision.

        Never routes to a quarantined instance: the router's policy choice is
        masked/remapped onto survivors (see :meth:`Router.pick`).
        """
        inst = self.router.pick(bucket, n_records)
        self.router.on_sent(inst, n_records)
        self.instances[inst].records_routed += n_records
        sim = self._sim
        if sim is not None and sim.tracer is not None:
            # Not named "records": routing counts are decisions, not stage
            # throughput, and must not feed the profile's records column.
            sim.tracer.counter(
                sim.now, "router", f"inst{inst}",
                float(self.instances[inst].records_routed),
            )
        return inst

    # -- failure handling ------------------------------------------------------
    def quarantine(self, instance: int) -> None:
        """Remove an instance from routing after a detected failure (§3.3).

        Streams already routed stay pinned — the runtime decides what to do
        with records the dead instance had accepted (see the recovery path in
        :mod:`repro.dsmsort.runtime`); the load manager only guarantees no
        *new* fragment lands there.
        """
        self.router.quarantine(instance)
        self.instances[instance].quarantined = True

    def alive_instances(self) -> list[int]:
        return [i for i in range(len(self.instances)) if self.router.alive[i]]

    def complete(self, instance: int, n_records: int, busy_cycles: float = 0.0) -> None:
        """Runtime feedback: an instance finished processing records."""
        self.router.on_completed(instance, n_records)
        st = self.instances[instance]
        st.records_completed += n_records
        st.busy_cycles += busy_cycles

    # -- diagnostics ---------------------------------------------------------
    def imbalance(self) -> float:
        """max/mean of records routed (1.0 = perfect balance)."""
        routed = np.array([s.records_routed for s in self.instances], dtype=np.float64)
        total = routed.sum()
        if total == 0:
            return 1.0
        return float(routed.max() / (total / len(routed)))

    def backlogs(self) -> list[int]:
        return [s.backlog for s in self.instances]

    # -- reconfiguration -----------------------------------------------------
    def reconfigure(self, n_records: int, gamma: int = 64) -> DSMConfig:
        """Pick the DSM configuration for the *next* run on this platform.

        This is the between-runs adaptation of Figure 9 ("adaptive" series):
        functors themselves are reparameterised — compute migrates without
        moving application objects (§3.3).
        """
        return ConfigSolver(self.params, gamma=gamma).choose(n_records)
