"""The dynamic load manager: runtime feedback driving routing decisions.

"Dynamic changes in load at different points of the system can cause
imbalances ... the load distribution is difficult to determine statically
when ASUs are shared by multiple applications or if nodes have heterogeneous
performance characteristics.  Moreover, many data-intensive applications are
data-dependent; static partitioning of work does not yield a predictably
balanced distribution." (§3.3)

The :class:`LoadManager` ties the pieces together: it owns a
:class:`~repro.core.routing.Router`, keeps per-instance progress counters fed
by the runtime, exposes imbalance metrics, and (between runs) consults the
:class:`~repro.core.config.ConfigSolver` to re-pick the DSM configuration —
the two adaptation axes the paper demonstrates (Figures 9 and 10).

All feedback lives in a :class:`~repro.metrics.MetricsRegistry`: the queue
depths and progress counts the router decides from ARE the registry's gauge
vectors (shared float64 storage, see :meth:`Router.attach_feedback`), so the
load-management signal path and the observability export are one and the
same — the paper's "dynamic load conditions visible to the system" as
first-class metrics.  Pass a shared registry to surface them in a metered
run; by default the manager owns a private one.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..emulator.params import SystemParams
from ..metrics.registry import MetricsRegistry
from .config import ConfigSolver, DSMConfig
from .routing import Router, make_router

__all__ = ["LoadManager", "InstanceStats"]


class InstanceStats:
    """Progress counters for one functor instance.

    A read-only view over the load manager's registry-backed gauge vectors —
    the numbers here are literally the routing feedback signal, not a copy.
    """

    __slots__ = ("_lm", "_i")

    def __init__(self, lm: "LoadManager", i: int):
        self._lm = lm
        self._i = i

    @property
    def records_routed(self) -> int:
        return int(self._lm._gv_routed.values[self._i])

    @property
    def records_completed(self) -> int:
        return int(
            self._lm._gv_routed.values[self._i]
            - self._lm._gv_backlog.values[self._i]
        )

    @property
    def busy_cycles(self) -> float:
        return float(self._lm._gv_busy.values[self._i])

    @property
    def quarantined(self) -> bool:
        """Set when a detected failure removed this instance from routing."""
        return not bool(self._lm.router.alive[self._i])

    @property
    def backlog(self) -> int:
        return int(self._lm._gv_backlog.values[self._i])

    @property
    def backpressure(self) -> int:
        """Records currently stalled behind this instance's send window."""
        return int(self._lm._gv_bp.values[self._i])

    def __repr__(self) -> str:
        return (
            f"<InstanceStats #{self._i} routed={self.records_routed} "
            f"backlog={self.backlog}{' quarantined' if self.quarantined else ''}>"
        )


class LoadManager:
    """Routing + reconfiguration authority for one application run."""

    def __init__(
        self,
        params: SystemParams,
        n_instances: int,
        n_buckets: int,
        policy: str = "sr",
        rng: Optional[np.random.Generator] = None,
        weights=None,
        registry: Optional[MetricsRegistry] = None,
        job_id: Optional[str] = None,
    ):
        self.params = params
        self.policy = policy
        self.router: Router = make_router(
            policy, n_instances, n_buckets=n_buckets, rng=rng, weights=weights
        )
        #: the feedback registry (shared with the platform when metering a
        #: run, private otherwise — routing always reads registry signals)
        self.registry = registry if registry is not None else MetricsRegistry()
        #: scheduler namespace: when several jobs share one registry (the
        #: multi-tenant scheduler), each job's feedback vectors carry a
        #: ``job=<id>`` label so they never alias.  None adds no label, so
        #: single-job registry exports are byte-identical to before.
        self.job_id = job_id
        self._job_labels = {"job": job_id} if job_id is not None else {}
        self._gv_backlog = self.registry.gauge_vector(
            "repro_lm_queue_depth_records", n_instances, **self._job_labels
        )
        self._gv_routed = self.registry.gauge_vector(
            "repro_lm_routed_records_total", n_instances, **self._job_labels
        )
        self._gv_busy = self.registry.gauge_vector(
            "repro_lm_busy_cycles_total", n_instances, **self._job_labels
        )
        self._gv_bp = self.registry.gauge_vector(
            "repro_lm_backpressure_records", n_instances, **self._job_labels
        )
        # A job may rebuild its LoadManager against the same registry (e.g.
        # on a pass re-run): get-or-create returns the existing vectors, so
        # start each manager's life with clean counters.
        for gv in (self._gv_backlog, self._gv_routed, self._gv_busy, self._gv_bp):
            if gv.n != n_instances:
                raise ValueError(
                    f"registry metric {gv.key!r} sized for {gv.n} instances, "
                    f"need {n_instances}"
                )
            gv.values[:] = 0.0
            gv.element_dead[:] = False
        # The router's decision arrays ARE the registry vectors from here on.
        self.router.attach_feedback(self._gv_backlog.values, self._gv_routed.values)
        self.router.attach_backpressure(self._gv_bp.values)
        self.instances = [InstanceStats(self, i) for i in range(n_instances)]
        self.n_buckets = n_buckets
        #: simulator whose tracer receives routing-decision counters (optional)
        self._sim = None
        # Speculation signal (see repro.recovery.speculate): instances the
        # straggler speculator currently considers slow.  Folded into every
        # route() as a soft steer-around set, exactly like backpressure and
        # breaker-open links.  Empty unless a speculator is attached, so
        # fault-free routing decisions are untouched; the backing gauge
        # vector is allocated lazily for the same reason (keeps unmetered
        # and pre-speculation registry exports byte-identical).
        self._spec_slow: set[int] = set()
        self._gv_spec = None

    def attach_sim(self, sim) -> None:
        """Attach the simulator so routing decisions land in its trace."""
        self._sim = sim

    # -- routing path --------------------------------------------------------
    def route(self, bucket: int, n_records: int, avoid=()) -> int:
        """Pick the instance for a fragment and record the decision.

        Never routes to a quarantined instance: the router's policy choice is
        masked/remapped onto survivors (see :meth:`Router.pick`).  ``avoid``
        passes through as the soft steer-around set (breaker-open links),
        merged with any instances the speculator has flagged slow.
        """
        if self._spec_slow:
            avoid = tuple(avoid) + tuple(
                i for i in sorted(self._spec_slow) if i not in avoid
            )
        inst = self.router.pick(bucket, n_records, avoid=avoid)
        self.router.on_sent(inst, n_records)
        sim = self._sim
        if sim is not None and sim.tracer is not None:
            # Not named "records": routing counts are decisions, not stage
            # throughput, and must not feed the profile's records column.
            sim.tracer.counter(
                sim.now, "router", f"inst{inst}",
                float(self._gv_routed.values[inst]),
            )
        return inst

    # -- failure handling ------------------------------------------------------
    def quarantine(self, instance: int) -> None:
        """Remove an instance from routing after a detected failure (§3.3).

        Streams already routed stay pinned — the runtime decides what to do
        with records the dead instance had accepted (see the recovery path in
        :mod:`repro.dsmsort.runtime`); the load manager only guarantees no
        *new* fragment lands there.
        """
        self.router.quarantine(instance)
        # Exported feedback for a quarantined instance reads absent (NaN),
        # not frozen: its queue depth is no longer a meaningful signal.
        self._gv_backlog.mark_element_dead(instance)

    def alive_instances(self) -> list[int]:
        return [i for i in range(len(self.instances)) if self.router.alive[i]]

    def complete(self, instance: int, n_records: int, busy_cycles: float = 0.0) -> None:
        """Runtime feedback: an instance finished processing records."""
        self.router.on_completed(instance, n_records)
        if busy_cycles:
            self._gv_busy.add(instance, busy_cycles)

    # -- speculation feedback --------------------------------------------------
    def mark_speculative(self, instance: int) -> None:
        """Flag ``instance`` as a suspected straggler (soft steer-around).

        Unlike :meth:`quarantine` this is advisory and reversible: the
        instance keeps its routed streams and can still receive fragments
        when every alternative is worse, but new routing decisions prefer
        its peers until :meth:`clear_speculative` is called.
        """
        if self._gv_spec is None:
            self._gv_spec = self.registry.gauge_vector(
                "repro_lm_speculative_slow", len(self.instances), **self._job_labels
            )
        self._spec_slow.add(instance)
        self._gv_spec.set(instance, 1.0)

    def clear_speculative(self, instance: int) -> None:
        """The suspected straggler caught up; stop steering around it."""
        self._spec_slow.discard(instance)
        if self._gv_spec is not None:
            self._gv_spec.set(instance, 0.0)

    @property
    def speculative_slow(self) -> tuple[int, ...]:
        return tuple(sorted(self._spec_slow))

    # -- backpressure feedback -------------------------------------------------
    def backpressure_begin(self, instance: int, n_records: int) -> None:
        """A sender started waiting on ``instance``'s send window."""
        self._gv_bp.add(instance, float(n_records))

    def backpressure_end(self, instance: int, n_records: int, waited: float = 0.0) -> None:
        """The window wait on ``instance`` resolved after ``waited`` seconds."""
        self._gv_bp.add(instance, -float(n_records))
        if waited and self.registry is not None:
            self.registry.counter(
                "repro_lm_backpressure_seconds_total", **self._job_labels
            ).inc(waited)

    # -- diagnostics ---------------------------------------------------------
    def imbalance(self) -> float:
        """max/mean of records routed (1.0 = perfect balance)."""
        routed = self._gv_routed.values
        total = routed.sum()
        if total == 0:
            return 1.0
        return float(routed.max() / (total / len(routed)))

    def backlogs(self) -> list[int]:
        return [s.backlog for s in self.instances]

    # -- reconfiguration -----------------------------------------------------
    def reconfigure(self, n_records: int, gamma: int = 64) -> DSMConfig:
        """Pick the DSM configuration for the *next* run on this platform.

        This is the between-runs adaptation of Figure 9 ("adaptive" series):
        functors themselves are reparameterised — compute migrates without
        moving application objects (§3.3).
        """
        return ConfigSolver(self.params, gamma=gamma).choose(n_records)
