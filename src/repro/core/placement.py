"""Functor placement: mapping stages of a dataflow to hosts and ASUs.

"A key goal of our approach is to enable the system to control the mapping of
computational workload to processing units in order to maximize global system
performance" (§8).  A :class:`Placement` assigns each dataflow stage a node
class (host / ASU) and replica set; the solver checks ASU eligibility
(bounded cost and state, §3.1) before allowing storage-side execution, and
estimates the load split its assignment implies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..emulator.params import SystemParams
from ..functors.base import FunctorError, asu_eligible
from ..functors.graph import Dataflow

__all__ = ["Placement", "StagePlacement", "PlacementSolver"]

NODE_CLASSES = ("host", "asu")


@dataclass
class StagePlacement:
    """Where one stage runs."""

    stage: str
    node_class: str          # "host" or "asu"
    instances: list[int]     # node indices within the class

    def __post_init__(self) -> None:
        if self.node_class not in NODE_CLASSES:
            raise FunctorError(f"unknown node class {self.node_class!r}")
        if not self.instances:
            raise FunctorError(f"stage {self.stage!r} placed on zero instances")


@dataclass
class Placement:
    """A complete stage -> nodes assignment."""

    assignments: dict[str, StagePlacement] = field(default_factory=dict)

    def assign(self, stage: str, node_class: str, instances: list[int]) -> None:
        self.assignments[stage] = StagePlacement(stage, node_class, list(instances))

    def of(self, stage: str) -> StagePlacement:
        try:
            return self.assignments[stage]
        except KeyError:
            raise FunctorError(f"stage {stage!r} has no placement") from None

    def stages_on(self, node_class: str) -> list[str]:
        return [s for s, p in self.assignments.items() if p.node_class == node_class]

    def migrate_off(
        self, node_class: str, index: int, alive: list[int]
    ) -> list[tuple[str, int, int]]:
        """Move every stage replica off a failed node onto survivors.

        ``alive`` lists the surviving node indices of ``node_class``.  Each
        displaced replica goes to the least-loaded survivor (fewest replicas
        across all stages, ties to the lowest index — deterministic).  A
        survivor already hosting the same stage is skipped, so replica sets
        stay distinct.  Returns ``[(stage, old_index, new_index), ...]``.
        """
        if node_class not in NODE_CLASSES:
            raise FunctorError(f"unknown node class {node_class!r}")
        survivors = [i for i in alive if i != index]
        if not survivors:
            raise FunctorError(f"no surviving {node_class} to migrate onto")
        # Current replica count per survivor, across all stages of the class.
        load = {i: 0 for i in survivors}
        for sp in self.assignments.values():
            if sp.node_class == node_class:
                for i in sp.instances:
                    if i in load:
                        load[i] += 1
        moves: list[tuple[str, int, int]] = []
        for sp in self.assignments.values():
            if sp.node_class != node_class or index not in sp.instances:
                continue
            candidates = [i for i in survivors if i not in sp.instances]
            if not candidates:
                # Every survivor already runs this stage: drop the replica.
                sp.instances.remove(index)
                if not sp.instances:
                    raise FunctorError(
                        f"stage {sp.stage!r} lost its last replica on "
                        f"{node_class}{index}"
                    )
                moves.append((sp.stage, index, -1))
                continue
            new = min(candidates, key=lambda i: (load[i], i))
            sp.instances[sp.instances.index(index)] = new
            load[new] += 1
            moves.append((sp.stage, index, new))
        return moves


class PlacementSolver:
    """Validates and scores placements against a dataflow and platform."""

    def __init__(self, params: SystemParams):
        self.params = params

    def validate(self, graph: Dataflow, placement: Placement) -> None:
        """Reject unsafe placements.

        * every stage must be placed;
        * ASU-placed functors must pass the eligibility test (§3.1);
        * replica counts must match the graph's declared replication, which
          itself was validated against edge kinds (set vs stream).
        """
        graph.validate()
        for name, stage in graph.stages.items():
            sp = placement.of(name)
            if sp.node_class == "asu":
                ok, reason = asu_eligible(stage.functor, self.params.asu_mem)
                if not ok:
                    raise FunctorError(
                        f"stage {name!r} cannot run on ASUs: {reason}"
                    )
                for idx in sp.instances:
                    if not 0 <= idx < self.params.n_asus:
                        raise FunctorError(
                            f"stage {name!r}: ASU index {idx} out of range"
                        )
            else:
                for idx in sp.instances:
                    if not 0 <= idx < self.params.n_hosts:
                        raise FunctorError(
                            f"stage {name!r}: host index {idx} out of range"
                        )
            if len(sp.instances) > 1 and stage.replicas == 1:
                raise FunctorError(
                    f"stage {name!r} placed on {len(sp.instances)} nodes but "
                    "the dataflow declares a single instance"
                )

    def repair(
        self,
        graph: Dataflow,
        placement: Placement,
        node_class: str,
        failed_index: int,
        alive: list[int] | None = None,
    ) -> list[tuple[str, int, int]]:
        """Re-place all stages off a failed node and re-validate.

        ``alive`` defaults to every other index of the class.  Returns the
        move list from :meth:`Placement.migrate_off`; raises
        :class:`~repro.functors.base.FunctorError` if the repaired placement
        is not valid (e.g. a functor not ASU-eligible ends up with no home).
        """
        if alive is None:
            n = self.params.n_asus if node_class == "asu" else self.params.n_hosts
            alive = [i for i in range(n) if i != failed_index]
        moves = placement.migrate_off(node_class, failed_index, alive)
        self.validate(graph, placement)
        return moves

    def load_split(self, graph: Dataflow, placement: Placement) -> dict[str, float]:
        """Estimated cycles landing on each node class (the §2.2 balance check)."""
        split = {"host": 0.0, "asu": 0.0}
        for name, stage in graph.stages.items():
            sp = placement.of(name)
            split[sp.node_class] += stage.est_cycles(self.params)
        return split

    def balance_score(self, graph: Dataflow, placement: Placement) -> float:
        """How well the placement matches hardware capacity.

        1.0 = the compute assigned to each class is exactly proportional to
        that class's share of total processing power ("if half the total
        processing power is at the hosts, the application should place half
        the computation there", §2.2).  Lower is worse.
        """
        split = self.load_split(graph, placement)
        total = split["host"] + split["asu"]
        if total == 0:
            return 1.0
        want_host = self.params.host_compute_fraction
        got_host = split["host"] / total
        # Ratio of the slower side's relative finishing time.
        t_host = got_host / max(want_host, 1e-12)
        t_asu = (1 - got_host) / max(1 - want_host, 1e-12)
        return min(t_host, t_asu) / max(t_host, t_asu) if max(t_host, t_asu) > 0 else 1.0
