"""Per-record cost accounting shared by the predictor and the emulated runtime.

The load manager can only place functors sensibly because every step's cost
per record is a known bound (§3.3).  This module centralises those bounds so
the analytic predictor (:mod:`repro.core.predict`) and the emulated DSM-Sort
runtime (:mod:`repro.dsmsort.runtime`) charge *exactly* the same cycles —
the property that makes prediction-driven configuration valid.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..emulator.params import SystemParams

__all__ = ["RecordCosts", "StepCosts"]


@dataclass(frozen=True)
class StepCosts:
    """Cycles per record for each primitive step on a given node kind."""

    disk_stage: float   # staging one record's bytes to/from disk buffers
    net_xfer: float     # copying one record's bytes through the NIC
    touch: float        # fixed per-record handling (cycles_per_record)
    compare: float      # one key comparison


class RecordCosts:
    """Derives per-record step costs from :class:`SystemParams`."""

    def __init__(self, params: SystemParams):
        self.params = params
        rs = params.schema.record_size
        self.steps = StepCosts(
            disk_stage=rs * params.cycles_per_io_byte,
            net_xfer=rs * params.cycles_per_net_byte,
            touch=params.cycles_per_record,
            compare=params.cycles_per_compare,
        )

    # -- functor work ---------------------------------------------------------
    def distribute_cycles(self, alpha: int) -> float:
        """Distribute: log2(α) compares + touch, per record."""
        cmp = math.log2(alpha) if alpha > 1 else 0.0
        return cmp * self.steps.compare + self.steps.touch

    def blocksort_cycles(self, beta: int) -> float:
        """Block sort: log2(β) compares + touch, per record."""
        cmp = math.log2(beta) if beta > 1 else 0.0
        return cmp * self.steps.compare + self.steps.touch

    def merge_cycles(self, gamma: int) -> float:
        """γ-way merge: log2(γ) compares + touch, per record."""
        cmp = math.log2(gamma) if gamma > 1 else 0.0
        return cmp * self.steps.compare + self.steps.touch

    # -- composite per-record node work for DSM-Sort pass 1 ------------------
    def asu_pass1_cycles(self, alpha: int, active: bool) -> float:
        """ASU CPU work per record in pass 1.

        Active: stage off disk, distribute, send; then receive the sorted run
        and stage it to disk.  Passive (baseline): the storage unit charges no
        CPU at all — it is a conventional disk behind a network port.
        """
        if not active:
            return 0.0
        s = self.steps
        return (
            s.disk_stage          # read staging
            + self.distribute_cycles(alpha)
            + s.net_xfer          # send fragments
            + s.net_xfer          # receive sorted runs
            + s.disk_stage        # write staging
        )

    def host_pass1_cycles(self, alpha: int, beta: int, active: bool) -> float:
        """Host CPU work per record in pass 1.

        Active: receive fragments, block-sort, send runs back.  Baseline also
        performs the distribute, since the passive storage cannot.
        """
        s = self.steps
        w = s.net_xfer + self.blocksort_cycles(beta) + s.net_xfer
        if not active:
            w += self.distribute_cycles(alpha)
        return w

    # -- device rates ------------------------------------------------------------
    def disk_records_per_sec(self, passes: int = 2) -> float:
        """Disk record rate when each record crosses the platter ``passes``
        times per phase (read in + write out = 2 for DSM pass 1)."""
        rs = self.params.schema.record_size
        return self.params.disk_rate / (rs * passes)

    def net_records_per_sec(self) -> float:
        rs = self.params.schema.record_size
        return self.params.net_bandwidth / rs
