"""Generic emulated executor for functor pipelines.

"Functors ... are composed to build complete programs that process data as it
moves from stored input to output" (§3.1).  :class:`PipelineJob` takes a
linear :class:`~repro.functors.graph.Dataflow` (single-output stages), a
:class:`~repro.core.placement.Placement`, and ASU-resident input data, and
executes the whole network on the emulated platform:

* every stage instance is a process on its placed node (host or ASU);
* producers route each packet to a downstream instance through the stage's
  router (free routing on ``set`` edges; ``stream`` edges are pinned to a
  single instance, preserving order);
* packets crossing nodes pay NIC copy cycles and wire time; co-located
  hand-offs are free;
* functors really transform the record batches — the sink's output is
  checked against direct evaluation in the tests.

Multi-input/multi-output functors (distribute, merge) have their own
purpose-built runtime in :mod:`repro.dsmsort`; this executor covers the
scan/map/filter/aggregate class plus the block-sort (1-in/1-out per packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..emulator.net import Message
from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform
from ..functors.base import FunctorError
from ..functors.graph import Dataflow
from ..util.records import concat_records
from ..util.rng import RngRegistry
from .placement import Placement, PlacementSolver
from .routing import make_router

__all__ = ["PipelineJob", "PipelineResult"]

_EOF = object()


@dataclass
class PipelineResult:
    makespan: float
    output: np.ndarray
    host_util: list[float]
    asu_cpu_util: list[float]
    net_bytes: int
    #: records processed per stage instance: {stage: [n per instance]}
    records_per_instance: dict[str, list[int]] = field(default_factory=dict)
    #: straggler-watch decisions (``StragglerSignal``), speculation mode only
    straggler_signals: list = field(default_factory=list)


class PipelineJob:
    """Run a linear functor pipeline over ASU-resident input records."""

    def __init__(
        self,
        params: SystemParams,
        graph: Dataflow,
        placement: Placement,
        asu_data: list[np.ndarray],
        routing: str = "sr",
        seed: int = 0,
        tracer=None,
        metrics=None,
        scrape_interval=None,
        speculation=None,
        job_id=None,
    ):
        if len(asu_data) != params.n_asus:
            raise ValueError(
                f"asu_data has {len(asu_data)} entries for {params.n_asus} ASUs"
            )
        graph.validate()
        PlacementSolver(params).validate(graph, placement)
        self._check_linear(graph)
        if speculation is not None and metrics is None:
            # The registry's rate instruments ARE the straggler signal.
            from ..metrics.registry import MetricsRegistry

            metrics = MetricsRegistry()
        self.params = params
        self.graph = graph
        self.placement = placement
        self.asu_data = asu_data
        self.routing = routing
        self.rngs = RngRegistry(seed)
        self.tracer = tracer
        self.metrics = metrics
        self.scrape_interval = scrape_interval
        #: repro.recovery.speculate.SpeculationPolicy enabling the straggler
        #: watch: lagging stage instances become a routing steer-around
        #: signal, the same mechanism the DSM-Sort speculator feeds through
        #: the load manager
        self.speculation = speculation
        #: scheduler namespace: ``job=<id>`` label on this job's registry
        #: instruments so concurrent jobs can share one MetricsRegistry;
        #: None adds no label (single-job exports unchanged)
        self.job_id = job_id
        self._job_labels = {"job": job_id} if job_id is not None else {}

    @staticmethod
    def _check_linear(graph: Dataflow) -> None:
        order = graph.topological_order()
        for name in order:
            st = graph.stages[name]
            if st.functor.n_outputs != 1:
                raise FunctorError(
                    f"PipelineJob handles single-output functors; stage "
                    f"{name!r} has {st.functor.n_outputs} outputs "
                    "(use repro.dsmsort for distribute/merge networks)"
                )
            if len(graph.out_edges(name)) > 1 or len(graph.in_edges(name)) > 1:
                raise FunctorError(
                    f"stage {name!r} is not on a linear chain"
                )

    # -- wiring ---------------------------------------------------------------
    def _instance_addr(self, stage: str, idx: int) -> str:
        return f"pipe.{stage}.{idx}"

    def run(self) -> PipelineResult:
        params = self.params
        plat = ActivePlatform(
            params, tracer=self.tracer,
            metrics=self.metrics, scrape_interval=self.scrape_interval,
        )
        graph = self.graph
        order = graph.topological_order()
        rs = params.schema.record_size
        blk = params.block_records

        # Register one mailbox per stage instance.
        inst_nodes: dict[str, list] = {}
        for name in order:
            sp = self.placement.of(name)
            nodes = [
                (plat.asus if sp.node_class == "asu" else plat.hosts)[i]
                for i in sp.instances
            ]
            inst_nodes[name] = nodes
            for k in range(len(nodes)):
                plat.network.register(self._instance_addr(name, k))

        # Router per stage (chooses which downstream instance gets a packet).
        routers = {}
        for name in order:
            n_inst = len(inst_nodes[name])
            in_edges = graph.in_edges(name)
            pinned = any(e.kind == "stream" for e in in_edges)
            policy = "static" if (pinned or n_inst == 1) else self.routing
            routers[name] = make_router(
                policy, n_inst, n_buckets=1, rng=self.rngs.get(f"route.{name}")
            )

        collected: list[np.ndarray] = []
        records_per_instance = {
            name: [0] * len(inst_nodes[name]) for name in order
        }

        # Straggler watch (speculation mode): per-stage sets of instances
        # currently flagged slow.  pick_instance() steers around them — the
        # signal changes *routing*, never correctness, exactly like the load
        # manager's speculative_slow set in the DSM-Sort runtime.
        spec = self.speculation
        slow: dict[str, set[int]] = {name: set() for name in order}
        straggler_signals: list = []
        # Stages where steering is meaningful: free routing, >1 instance.
        _pinned = {
            name for name in order
            if any(e.kind == "stream" for e in graph.in_edges(name))
        }
        watchable = [
            name for name in order
            if name not in _pinned and len(inst_nodes[name]) > 1
        ]

        # The sink is a collector on host 0 (results return to the
        # application); its traffic is charged like any other hand-off.
        sink_addr = "pipe.__sink__"
        plat.network.register(sink_addr)
        sink_node = plat.hosts[0]

        def deliver_addr(src_node, payload, nbytes, addr, dst_node):
            """Hand a payload to a mailbox, charging NIC/wire unless local."""
            if dst_node is src_node:
                plat.network.mailbox(addr).put(
                    Message(src_node.node_id, addr, payload, 0)
                )
                return
            overhead = nbytes * params.cycles_per_net_byte
            if overhead:
                yield from src_node.cpu.execute(cycles=overhead)
            plat.network.post(src_node.node_id, addr, payload, nbytes)

        def deliver(src_node, payload, nbytes, dst_stage, dst_idx):
            yield from deliver_addr(
                src_node, payload, nbytes,
                self._instance_addr(dst_stage, dst_idx),
                inst_nodes[dst_stage][dst_idx],
            )

        def pick_instance(src_node, dst_stage, n_records):
            """Locality-affine choice: stay on this node when possible.

            Instances flagged by the straggler watch are steered around —
            including forfeiting locality — whenever an alternative exists.
            """
            avoid = slow[dst_stage]
            n_inst = len(inst_nodes[dst_stage])
            for k, node in enumerate(inst_nodes[dst_stage]):
                if node is src_node and (k not in avoid or n_inst == 1):
                    routers[dst_stage].on_sent(k, n_records)
                    return k
            if avoid and len(avoid) < n_inst:
                k = routers[dst_stage].pick(0, n_records, avoid=tuple(sorted(avoid)))
            else:
                k = routers[dst_stage].choose(0, n_records)
            routers[dst_stage].on_sent(k, n_records)
            return k

        def route_out(src_node, stage_name, batch):
            """Send a batch to the next stage (or ship it to the sink)."""
            outs = graph.out_edges(stage_name)
            if not outs or outs[0].dst == Dataflow.SINK:
                yield from deliver_addr(
                    src_node, batch, batch.shape[0] * rs, sink_addr, sink_node
                )
                return
            dst = outs[0].dst
            k = pick_instance(src_node, dst, batch.shape[0])
            yield from deliver(src_node, batch, batch.shape[0] * rs, dst, k)

        def send_eofs(src_node, stage_name):
            outs = graph.out_edges(stage_name)
            if not outs or outs[0].dst == Dataflow.SINK:
                yield from deliver_addr(src_node, _EOF, 16, sink_addr, sink_node)
                return
            dst = outs[0].dst
            for k in range(len(inst_nodes[dst])):
                yield from deliver(src_node, _EOF, 16, dst, k)

        # -- source: each ASU streams its share into the first stage --------
        # pick_instance gives locality affinity: when the first stage has an
        # instance on this very ASU, data is processed where it lives —
        # functors are "stacked on stored data collections to process data as
        # a side effect of I/O operations" (§3.1).
        first = order[0]

        def source(d):
            from ..emulator.readahead import ReadAhead

            asu = plat.asus[d]
            data = self.asu_data[d]
            blocks = [data[s : s + blk] for s in range(0, data.shape[0], blk)]
            ra = ReadAhead(plat, asu, [b.shape[0] * rs for b in blocks])
            for i, block in enumerate(blocks):
                yield ra.wait_next()
                staging = block.shape[0] * rs * params.cycles_per_io_byte
                if staging:
                    yield from asu.cpu.execute(cycles=staging)
                k = pick_instance(asu, first, block.shape[0])
                yield from deliver(asu, block, block.shape[0] * rs, first, k)
            yield from (send_to_first_eof(asu))

        def send_to_first_eof(asu):
            for k in range(len(inst_nodes[first])):
                yield from deliver(asu, _EOF, 16, first, k)

        # -- stage instances --------------------------------------------------
        def instance(stage_name, k):
            node = inst_nodes[stage_name][k]
            functor = graph.stages[stage_name].functor
            box = plat.network.mailbox(self._instance_addr(stage_name, k))
            in_edges = graph.in_edges(stage_name)
            upstream = in_edges[0].src if in_edges else Dataflow.SOURCE
            n_producers = (
                params.n_asus if upstream == Dataflow.SOURCE
                else len(inst_nodes[upstream])
            )
            n_eof = 0
            while n_eof < n_producers:
                msg = yield box.get()
                tracer = plat.sim.tracer
                if tracer is not None and msg.deliver_at is not None:
                    # Causal edge: batch left the instance mailbox for this
                    # stage's CPU — mailbox residence is the stage's queue wait.
                    tracer.flow(
                        msg.deliver_at,
                        f"mbox:{self._instance_addr(stage_name, k)}",
                        plat.sim.now, f"{node.node_id}.cpu",
                        stage_name, cat="queue",
                    )
                if msg.nbytes:
                    overhead = msg.nbytes * params.cycles_per_net_byte
                    yield from node.cpu.execute(cycles=overhead)
                if msg.payload is _EOF:
                    n_eof += 1
                    continue
                batch = msg.payload
                t0 = plat.sim.now
                out = yield from node.compute(
                    cycles=functor.cost_cycles(batch.shape[0], params),
                    fn=lambda b: functor.apply(b)[0],
                    args=(batch,),
                    label=stage_name,
                )
                records_per_instance[stage_name][k] += int(batch.shape[0])
                tracer = plat.sim.tracer
                if tracer is not None:
                    tracer.counter(
                        plat.sim.now,
                        self._instance_addr(stage_name, k),
                        "records",
                        float(records_per_instance[stage_name][k]),
                    )
                m = plat.sim.metrics
                if m is not None and batch.shape[0]:
                    n = int(batch.shape[0])
                    m.rate(
                        "repro_stage_records", stage=stage_name,
                        **self._job_labels,
                    ).mark(plat.sim.now, float(n))
                    if spec is not None:
                        # Per-instance series only in speculation mode, so
                        # pre-speculation registry exports are unchanged.
                        m.rate(
                            "repro_stage_records",
                            stage=stage_name, instance=str(k),
                            **self._job_labels,
                        ).mark(plat.sim.now, float(n))
                    m.histogram(
                        "repro_stage_record_latency_seconds", stage=stage_name,
                        **self._job_labels,
                    ).observe((plat.sim.now - t0) / n, n=n)
                if out.shape[0]:
                    yield from route_out(node, stage_name, out)
            yield from send_eofs(node, stage_name)

        def sink():
            """Collect results at host 0 (charging the receive copy)."""
            last = order[-1]
            n_eof = 0
            box = plat.network.mailbox(sink_addr)
            while n_eof < len(inst_nodes[last]):
                msg = yield box.get()
                tracer = plat.sim.tracer
                if tracer is not None and msg.deliver_at is not None:
                    tracer.flow(
                        msg.deliver_at, f"mbox:{sink_addr}",
                        plat.sim.now, f"{sink_node.node_id}.cpu",
                        "sink", cat="queue",
                    )
                if msg.nbytes:
                    yield from sink_node.cpu.execute(
                        cycles=msg.nbytes * params.cycles_per_net_byte,
                        label="sink",
                    )
                if msg.payload is _EOF:
                    n_eof += 1
                else:
                    collected.append(msg.payload)

        def straggler_watch():
            """Flag/clear lagging stage instances from the registry's rates."""
            from ..recovery.speculate import StragglerSignal, laggard_threshold
            from ..util.rng import derive_seed

            m = self.metrics
            rng = np.random.default_rng(derive_seed(spec.seed, "exec-speculate"))

            def avg(name, k, now):
                inst = m.get(
                    "repro_stage_records", stage=name, instance=str(k),
                    **self._job_labels,
                )
                return (float(inst.total) if inst is not None else 0.0) / now

            while True:
                yield plat.sim.timeout(spec.interval)
                now = plat.sim.now
                if now < spec.warmup:
                    continue
                for name in watchable:
                    rates = [
                        avg(name, k, now)
                        for k in range(len(inst_nodes[name]))
                    ]
                    thr = laggard_threshold(rates, spec, rng)
                    for k, rate in enumerate(rates):
                        if rate < thr and k not in slow[name]:
                            slow[name].add(k)
                            straggler_signals.append(StragglerSignal(
                                t=now, kind="instance", index=k, rate=rate,
                                threshold=thr, action="steer",
                            ))
                        elif rate >= thr and k in slow[name]:
                            slow[name].discard(k)
                            straggler_signals.append(StragglerSignal(
                                t=now, kind="instance", index=k, rate=rate,
                                threshold=thr, action="clear",
                            ))

        procs = [plat.spawn(source(d), name=f"src{d}") for d in range(params.n_asus)]
        for name in order:
            for k in range(len(inst_nodes[name])):
                procs.append(plat.spawn(instance(name, k), name=f"{name}#{k}"))
        procs.append(plat.spawn(sink(), name="sink"))
        if spec is not None and watchable:
            # The watch ticks forever; stop the clock at the job's own
            # completion instant so the tail tick cannot inflate makespan.
            plat.spawn(straggler_watch(), name="straggler-watch")
            done = plat.sim.all_of(procs)

            def _on_done(ev):
                if not ev.ok:
                    raise ev.value
                plat.sim.stop()

            done.callbacks.append(_on_done)
            plat.sim.run()
            stuck = [p for p in procs if not p.triggered]
            if stuck:
                raise RuntimeError(f"pipeline deadlocked; {len(stuck)} processes stuck")
        else:
            plat.run(wait_for=procs)

        return PipelineResult(
            makespan=plat.sim.now,
            output=concat_records(collected, params.schema),
            host_util=[h.cpu.utilization(plat.sim.now) for h in plat.hosts],
            asu_cpu_util=[a.cpu.utilization(plat.sim.now) for a in plat.asus],
            net_bytes=plat.network.bytes_total,
            records_per_instance=records_per_instance,
            straggler_signals=straggler_signals,
        )
