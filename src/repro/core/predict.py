"""Analytic pipeline-throughput predictor for DSM-Sort configurations.

"Our approach ... allows the system to predict the effects of offloading
computation to ASUs so that it may configure the application to match
hardware capabilities and load conditions" (§1).  The predictor models pass 1
(run formation) as a two-stage pipeline — ASU side (disk + distribute + NIC)
feeding the host side (NIC + block sort + NIC) — whose steady-state rate is
the bottleneck stage's rate.  The adaptive configuration in Figure 9 is the
α maximising this prediction.

The emulator charges the same per-record costs
(:class:`~repro.core.costs.RecordCosts`), so prediction and emulation agree
to within pipeline fill/drain effects; a test asserts that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emulator.params import SystemParams
from .costs import RecordCosts

__all__ = ["PipelinePrediction", "predict_pass1", "predict_pass2", "predict_speedup"]


@dataclass(frozen=True)
class PipelinePrediction:
    """Predicted steady-state rates (records/second) for one configuration."""

    asu_cpu_rate: float      # aggregate across D ASUs (inf for passive)
    asu_disk_rate: float     # aggregate disk streaming rate
    host_cpu_rate: float     # aggregate across H hosts
    net_rate: float          # aggregate link rate

    @property
    def bottleneck_rate(self) -> float:
        return min(
            self.asu_cpu_rate, self.asu_disk_rate, self.host_cpu_rate, self.net_rate
        )

    @property
    def bottleneck(self) -> str:
        rates = {
            "asu_cpu": self.asu_cpu_rate,
            "asu_disk": self.asu_disk_rate,
            "host_cpu": self.host_cpu_rate,
            "net": self.net_rate,
        }
        return min(rates, key=rates.get)

    def time_for(self, n_records: int) -> float:
        return n_records / self.bottleneck_rate


def predict_pass1(
    params: SystemParams, alpha: int, beta: int, active: bool = True
) -> PipelinePrediction:
    """Steady-state pass-1 rates for a DSM-Sort configuration.

    ``active=False`` models the Figure-9 baseline: conventional storage with
    all functor computation at the host.
    """
    costs = RecordCosts(params)
    D, H = params.n_asus, params.n_hosts

    w_asu = costs.asu_pass1_cycles(alpha, active)
    asu_cpu_rate = (
        D * params.asu_clock_hz / w_asu if w_asu > 0 else float("inf")
    )

    w_host = costs.host_pass1_cycles(alpha, beta, active)
    host_cpu_rate = params.total_host_clock_hz / w_host

    # Each record crosses its ASU's disk twice (read in, run written back).
    asu_disk_rate = D * costs.disk_records_per_sec(passes=2)

    # Each record crosses the interconnect twice (to host, run back); every
    # ASU has its own link pair.
    net_rate = D * costs.net_records_per_sec() / 2.0

    return PipelinePrediction(
        asu_cpu_rate=asu_cpu_rate,
        asu_disk_rate=asu_disk_rate,
        host_cpu_rate=host_cpu_rate,
        net_rate=net_rate,
    )


def predict_pass2(
    params: SystemParams, gamma1: int, gamma2: int
) -> PipelinePrediction:
    """Steady-state rates for the final merge pass (γ1 on ASUs, γ2 on hosts).

    ASU side per record: disk staging in, γ1-way pre-merge, NIC copy out.
    Host side per record: NIC copy in, γ2-way merge completion.
    """
    costs = RecordCosts(params)
    s = costs.steps
    D = params.n_asus

    w_asu = s.disk_stage + s.net_xfer
    if gamma1 > 1:
        w_asu += costs.merge_cycles(gamma1)
    asu_cpu_rate = D * params.asu_clock_hz / w_asu

    w_host = s.net_xfer + costs.merge_cycles(max(gamma2, 1))
    host_cpu_rate = params.total_host_clock_hz / w_host

    # Pass 2 reads each record off the ASU disks once.
    asu_disk_rate = D * costs.disk_records_per_sec(passes=1)
    net_rate = D * costs.net_records_per_sec()

    return PipelinePrediction(
        asu_cpu_rate=asu_cpu_rate,
        asu_disk_rate=asu_disk_rate,
        host_cpu_rate=host_cpu_rate,
        net_rate=net_rate,
    )


def predict_speedup(
    params: SystemParams,
    alpha: int,
    beta: int,
    baseline_alpha: int,
    baseline_beta: int,
) -> float:
    """Predicted Figure-9 speedup: active(α, β) vs passive baseline."""
    act = predict_pass1(params, alpha, beta, active=True)
    base = predict_pass1(params, baseline_alpha, baseline_beta, active=False)
    return act.bottleneck_rate / base.bottleneck_rate
