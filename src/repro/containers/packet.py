"""Packets: groups of records processed as a whole (§3.2, Figure 4).

A packet imposes a partial order on the records of a set: its records stay
together as they move through later phases, so a property established inside
it (e.g. "locally sorted" after a pre-sort functor) survives routing.  The
``meta`` mapping carries such properties; ``seq`` gives packets a stable
identity for deterministic tie-breaking.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

import numpy as np

from ..util.validation import is_sorted

__all__ = ["Packet"]

_seq_counter = itertools.count()


class Packet:
    """An indivisible group of records."""

    __slots__ = ("batch", "seq", "meta")

    def __init__(self, batch: np.ndarray, meta: Optional[dict[str, Any]] = None, seq: Optional[int] = None):
        self.batch = batch
        self.seq = next(_seq_counter) if seq is None else seq
        self.meta: dict[str, Any] = dict(meta) if meta else {}

    @property
    def n_records(self) -> int:
        return int(self.batch.shape[0])

    @property
    def nbytes(self) -> int:
        return int(self.batch.nbytes)

    @property
    def sorted(self) -> bool:
        """Whether this packet is marked (and verified at mark time) sorted."""
        return bool(self.meta.get("sorted", False))

    def mark_sorted(self, verify: bool = False) -> "Packet":
        """Record the locally-sorted property (Figure 4's pre-sort output)."""
        if verify and not is_sorted(self.batch):
            raise AssertionError("packet marked sorted but records are not")
        self.meta["sorted"] = True
        return self

    def split(self, max_records: int) -> list["Packet"]:
        """Split into packets of at most ``max_records`` (metadata copied).

        Used when a downstream functor's memory bound is smaller than the
        packet; the sorted property is preserved because splits keep order.
        """
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        if self.n_records <= max_records:
            return [self]
        return [
            Packet(self.batch[i : i + max_records], meta=self.meta)
            for i in range(0, self.n_records, max_records)
        ]

    def __repr__(self) -> str:
        tags = ",".join(f"{k}={v}" for k, v in sorted(self.meta.items()))
        return f"<Packet #{self.seq} n={self.n_records} {tags}>"
