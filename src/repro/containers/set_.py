"""Record sets: the unordered container (§3.2).

"Sets are data containers that do not define the order of records returned in
satisfying read operations.  This allows the system to provide records in any
order that is convenient, and spread them arbitrarily across replicated
functors."

A :class:`RecordSet` holds :class:`~repro.containers.packet.Packet` groups.
Records are marked *pending* or *completed* per scan; a destructive scan
releases packets as they complete.  Multiple consumers may take packets
concurrently — this is exactly the hook the load manager uses to balance
replicated functor instances (§3.3).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

import numpy as np

from ..util.records import DEFAULT_SCHEMA, RecordSchema, concat_records
from .packet import Packet

__all__ = ["RecordSet"]


class RecordSet:
    """Unordered collection of packets with pending/completed tracking."""

    kind = "set"
    ordered = False

    def __init__(self, name: str, schema: RecordSchema = DEFAULT_SCHEMA):
        self.name = name
        self.schema = schema
        self._pending: deque[Packet] = deque()
        self._completed: list[Packet] = []
        self.n_records_total = 0

    # -- writing ---------------------------------------------------------------
    def add_packet(self, packet: Packet) -> None:
        if packet.batch.dtype != self.schema.dtype:
            raise ValueError(
                f"packet dtype {packet.batch.dtype} does not match set schema"
            )
        self._pending.append(packet)
        self.n_records_total += packet.n_records

    def add_records(self, batch: np.ndarray, packet_records: Optional[int] = None) -> None:
        """Add records, grouping them into packets of ``packet_records``."""
        if packet_records is None:
            self.add_packet(Packet(batch))
            return
        for p in Packet(batch).split(packet_records):
            self.add_packet(p)

    # -- state ------------------------------------------------------------------
    @property
    def n_pending(self) -> int:
        return sum(p.n_records for p in self._pending)

    @property
    def n_completed(self) -> int:
        return sum(p.n_records for p in self._completed)

    @property
    def n_pending_packets(self) -> int:
        return len(self._pending)

    def __len__(self) -> int:
        return self.n_records_total

    # -- reading -------------------------------------------------------------
    def take(self, destructive: bool = False) -> Optional[Packet]:
        """Take any pending packet (None when the scan is complete).

        The order in which packets are handed out is an implementation detail
        the application must not rely on; the system exploits this freedom to
        route packets to whichever functor instance is least loaded.
        """
        if not self._pending:
            return None
        pkt = self._pending.popleft()
        if not destructive:
            self._completed.append(pkt)
        else:
            self.n_records_total -= pkt.n_records
        return pkt

    def scan(self, destructive: bool = False) -> Iterator[Packet]:
        """Consume every pending packet."""
        while True:
            pkt = self.take(destructive=destructive)
            if pkt is None:
                return
            yield pkt

    def reset_scan(self) -> None:
        """Mark all records pending again (start a new scan of the set)."""
        self._pending.extend(self._completed)
        self._completed.clear()

    def read_all(self) -> np.ndarray:
        """Materialise all records (pending first, then completed).

        Order is unspecified by contract; this concatenation is for
        validation and tests.
        """
        batches = [p.batch for p in self._pending] + [p.batch for p in self._completed]
        return concat_records(batches, self.schema)

    def __repr__(self) -> str:
        return (
            f"<RecordSet {self.name!r} pending={self.n_pending} "
            f"completed={self.n_completed}>"
        )
