"""Record arrays: the random-access container (§3.2).

"Arrays allow arbitrary accesses to structured collections of records.  This
model is useful for supporting external indexes over collections of records,
such as the spatial indexes outlined in Section 4.1."

Backed by a BTE stream; reads and writes address records by index.  The
distributed R-tree keeps its leaf pages in record arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..bte.base import BTE, StreamHandle
from ..bte.memory import MemoryBTE
from ..util.records import DEFAULT_SCHEMA, RecordSchema

__all__ = ["RecordArray"]


class RecordArray:
    """Fixed-length random-access record collection."""

    kind = "array"
    ordered = False

    def __init__(
        self,
        name: str,
        length: int,
        bte: Optional[BTE] = None,
        schema: RecordSchema = DEFAULT_SCHEMA,
    ):
        if length < 0:
            raise ValueError("length must be nonnegative")
        self.bte = bte if bte is not None else MemoryBTE(schema)
        self.name = name
        self.schema = schema
        self.length = int(length)
        if self.bte.exists(name):
            self.handle: StreamHandle = self.bte.open(name)
            if self.bte.length(self.handle) != length:
                raise ValueError(
                    f"existing stream {name!r} has {self.bte.length(self.handle)} "
                    f"records, expected {length}"
                )
        else:
            self.handle = self.bte.create(name, schema)
            zeros = np.zeros(length, dtype=schema.dtype)
            if length:
                self.bte.append(self.handle, zeros)
        self.n_random_reads = 0

    def __len__(self) -> int:
        return self.length

    def _check_range(self, start: int, count: int) -> None:
        if start < 0 or count < 0 or start + count > self.length:
            raise IndexError(
                f"range [{start}, {start + count}) outside array of {self.length}"
            )

    def read(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` records beginning at index ``start``."""
        self._check_range(start, count)
        self.n_random_reads += 1
        return self.bte.read_at(self.handle, start, count)

    def __getitem__(self, idx: int) -> np.void:
        batch = self.read(int(idx), 1)
        return batch[0]

    def read_all(self) -> np.ndarray:
        return self.bte.read_all(self.handle)

    def write(self, start: int, batch: np.ndarray) -> None:
        """Overwrite records [start, start+len(batch)).

        BTE streams are append-only, so this is implemented read-modify-write
        at whole-array granularity only when needed; for the common bulk-load
        pattern prefer constructing the array from a full batch.
        """
        self._check_range(start, batch.shape[0])
        full = self.bte.read_all(self.handle)
        full[start : start + batch.shape[0]] = batch
        self.bte.delete(self.handle.name)
        self.handle = self.bte.create(self.name, self.schema)
        self.bte.append(self.handle, full)

    @classmethod
    def from_batch(
        cls,
        name: str,
        batch: np.ndarray,
        bte: Optional[BTE] = None,
        schema: RecordSchema = DEFAULT_SCHEMA,
    ) -> "RecordArray":
        """Bulk-load an array from an existing batch (no zero-fill pass)."""
        arr = cls.__new__(cls)
        arr.bte = bte if bte is not None else MemoryBTE(schema)
        arr.name = name
        arr.schema = schema
        arr.length = int(batch.shape[0])
        arr.handle = arr.bte.create(name, schema)
        if arr.length:
            arr.bte.append(arr.handle, batch)
        arr.n_random_reads = 0
        return arr

    def __repr__(self) -> str:
        return f"<RecordArray {self.name!r} n={self.length}>"
