"""Data containers of the programming model: streams, sets, arrays, packets (§3.2)."""

from .array import RecordArray
from .packet import Packet
from .set_ import RecordSet
from .stream import RecordStream

__all__ = ["RecordArray", "Packet", "RecordSet", "RecordStream"]
