"""Record streams: the ordered container (§3.2).

"A read on stream always delivers the next unconsumed record in a defined
sequence, even if this is less efficient."  Streams are scanned in their
entirety; a *destructive* scan releases storage for completed records as they
are consumed, so only pending records remain.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..bte.base import BTE, StreamHandle
from ..bte.memory import MemoryBTE
from ..util.records import DEFAULT_SCHEMA, RecordSchema

__all__ = ["RecordStream"]


class RecordStream:
    """Ordered record collection over a BTE stream."""

    #: container kind tag used by the dataflow graph validator
    kind = "stream"
    ordered = True

    def __init__(
        self,
        name: str,
        bte: Optional[BTE] = None,
        schema: RecordSchema = DEFAULT_SCHEMA,
    ):
        self.bte = bte if bte is not None else MemoryBTE(schema)
        self.name = name
        if self.bte.exists(name):
            self.handle: StreamHandle = self.bte.open(name)
        else:
            self.handle = self.bte.create(name, schema)
        self.schema = self.handle.schema
        #: records consumed by the current scan
        self.consumed = 0
        #: records released by destructive scans (rewind floor)
        self._freed = 0

    # -- writing -----------------------------------------------------------
    def append(self, batch: np.ndarray) -> None:
        self.bte.append(self.handle, batch)

    def extend(self, batches) -> None:
        for b in batches:
            self.append(b)

    # -- reading ------------------------------------------------------------
    def __len__(self) -> int:
        return self.bte.length(self.handle)

    @property
    def pending(self) -> int:
        """Records not yet consumed by the current scan."""
        return len(self) - self.consumed

    def read(self, count: int, destructive: bool = False) -> np.ndarray:
        """Deliver the next ``count`` unconsumed records, in order."""
        batch = self.bte.read_at(self.handle, self.consumed, count)
        self.consumed += batch.shape[0]
        if destructive and batch.shape[0]:
            self.bte.truncate_front(self.handle, self.consumed)
            self._freed = self.consumed
        return batch

    def scan(self, block_records: int, destructive: bool = False) -> Iterator[np.ndarray]:
        """Iterate the whole stream from the current position, in order."""
        if block_records < 1:
            raise ValueError("block_records must be >= 1")
        while self.pending > 0:
            yield self.read(block_records, destructive=destructive)

    def rewind(self) -> None:
        """Restart scanning from the first non-freed record."""
        self.consumed = self._freed

    def read_all(self) -> np.ndarray:
        """The whole stream content (ignores scan position)."""
        return self.bte.read_all(self.handle)

    def delete(self) -> None:
        self.bte.delete(self.handle.name)
        self.handle.closed = True

    def __repr__(self) -> str:
        return f"<RecordStream {self.name!r} n={len(self)} consumed={self.consumed}>"
