"""Opt-in, zero-overhead-when-disabled tracing for the emulated platform.

Attach a :class:`Tracer` to a run (``DsmSortJob(..., tracer=t)``,
``ActivePlatform(params, tracer=t)``, or directly ``sim.tracer = t``) and
every instrumented hook point — device busy segments, CPU execution
segments, disk transfers, link transmissions, queue depths, routing
decisions, fault events — records against the simulated clock.  Export with
:func:`write_chrome_trace` (open in Perfetto) or summarise with
:class:`ProfileReport`.  See docs/OBSERVABILITY.md.
"""

from .chrome import chrome_dumps, to_chrome, write_chrome_trace
from .profile import ProfileReport, StageProfile
from .tracer import Tracer

__all__ = [
    "Tracer",
    "ProfileReport",
    "StageProfile",
    "to_chrome",
    "chrome_dumps",
    "write_chrome_trace",
]
