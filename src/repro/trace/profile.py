"""Per-stage profile report derived from a trace.

Folds a :class:`~repro.trace.tracer.Tracer`'s spans and counters into one row
per track: busy time, span count, records processed, processing rate, and
stall time (makespan minus busy).  This is the textual companion to the
Chrome trace — what a load manager would consume to find the bottleneck
stage (per-stage rate/occupancy, §3.3's load feedback).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .tracer import Tracer

__all__ = ["StageProfile", "ProfileReport"]

#: counter name whose last value feeds the profile's records column
RECORDS_COUNTER = "records"


@dataclass
class StageProfile:
    """Aggregates for one track."""

    track: str
    cat: str = ""
    busy: float = 0.0
    n_spans: int = 0
    records: float = 0.0
    #: records per simulated second over the whole run (0 if no records)
    rate: float = 0.0
    #: makespan - busy: time the track was not executing
    stall: float = 0.0

    def as_dict(self) -> dict:
        return {
            "track": self.track,
            "cat": self.cat,
            "busy": self.busy,
            "n_spans": self.n_spans,
            "records": self.records,
            "rate": self.rate,
            "stall": self.stall,
        }


class ProfileReport:
    """All stage rows plus the run makespan."""

    def __init__(self, makespan: float, stages: list[StageProfile]):
        self.makespan = makespan
        self.stages = stages

    @classmethod
    def from_tracer(cls, tracer: Tracer, makespan: float | None = None) -> "ProfileReport":
        t_end = tracer.t_max() if makespan is None else float(makespan)
        rows: dict[str, StageProfile] = {}
        for t0, t1, track, _name, cat in tracer.spans:
            row = rows.get(track)
            if row is None:
                row = rows[track] = StageProfile(track=track, cat=cat)
            row.busy += t1 - t0
            row.n_spans += 1
        # Counters are recorded in time order; the last sample wins.
        for _t, track, name, value in tracer.counters:
            if name != RECORDS_COUNTER:
                continue
            row = rows.get(track)
            if row is None:
                row = rows[track] = StageProfile(track=track, cat="counter")
            row.records = value
        for row in rows.values():
            row.stall = max(0.0, t_end - row.busy)
            if t_end > 0 and row.records:
                row.rate = row.records / t_end
        return cls(t_end, [rows[k] for k in sorted(rows)])

    def row(self, track: str) -> StageProfile:
        for s in self.stages:
            if s.track == track:
                return s
        raise KeyError(f"no profile row for track {track!r}")

    def as_dict(self) -> dict:
        return {
            "makespan": self.makespan,
            "stages": [s.as_dict() for s in self.stages],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        """Aligned text table (lazy import keeps trace free of bench deps).

        Rows are ordered by busy time descending (ties by track name) so the
        hottest stage — the critical-path suspect — reads first; ``stall%``
        is the fraction of the makespan the track sat idle.
        """
        from ..bench.report import render_table

        rows = [
            (
                s.track,
                s.cat,
                s.busy,
                s.n_spans,
                int(s.records),
                s.rate,
                s.stall,
                f"{(100.0 * s.stall / self.makespan) if self.makespan > 0 else 0.0:.1f}",
            )
            for s in sorted(self.stages, key=lambda s: (-s.busy, s.track))
        ]
        table = render_table(
            ["track", "cat", "busy(s)", "spans", "records", "rec/s", "stall(s)",
             "stall%"],
            rows,
            title=f"profile — makespan {self.makespan:.4f}s",
        )
        return table
