"""The :class:`Tracer`: simulated-time spans, instants, and counters.

The paper's emulator "is instrumented to report application progress, overall
runtime, and resource utilization for each host and ASU" (§5).  The tracer is
the machine-readable form of that instrumentation: every device busy segment,
functor execution, disk transfer, link transmission, routing decision, and
fault event can be recorded against the *virtual* clock and exported as a
Chrome trace-event file (:mod:`repro.trace.chrome`) or folded into a
per-stage profile (:mod:`repro.trace.profile`).

Design rules:

* **Zero overhead when disabled.**  Instrumented code guards every hook with
  a single ``sim.tracer is None`` check; no tracer ⇒ no allocation, no call,
  and — crucially — no perturbation of simulated time.  The tracer itself
  never interacts with the event queue: recording is a pure observation.
* **Deterministic.**  All recorded values derive from the simulated clock and
  the (seeded) workload, so two runs with the same seed produce bit-identical
  traces.  No wall-clock time, ids, or hashes enter the record.
* **Flat storage.**  Events are appended to plain lists of tuples; export
  formats are derived on demand.

Tracks are free-form strings naming the entity an event belongs to
(``"asu0.cpu"``, ``"host1.sort"``, ``"link:host0->asu3"``); categories group
events of one kind (``"cpu"``, ``"disk"``, ``"link"``, ``"fault"``).

Causal structure (repro.obs) is layered on top of the flat storage without
changing it: a span may optionally carry a **span id** and a **parent id**
(kept in a sparse side table so the 5-tuple shape — and the byte-identity of
traces that never use ids — is preserved), and cross-track **flow edges**
link a departure instant on one track to an arrival instant on another
(message dispatch → delivery, mailbox residence → consumption, pass 1 →
pass 2).  Flows export as Chrome ``s``/``f`` events and feed the
:class:`~repro.obs.graph.CausalGraph` program-activity graph.
"""

from __future__ import annotations

__all__ = ["Tracer"]


class Tracer:
    """Collects simulated-time trace events.  Attach via ``sim.tracer``."""

    __slots__ = ("spans", "instants", "counters", "flows", "span_meta",
                 "offset", "_cum")

    def __init__(self) -> None:
        #: (t0, t1, track, name, cat) — completed busy/work segments
        self.spans: list[tuple[float, float, str, str, str]] = []
        #: (t, track, name, cat) — point events (faults, detections, ...)
        self.instants: list[tuple[float, str, str, str]] = []
        #: (t, track, name, value) — sampled counter values
        self.counters: list[tuple[float, str, str, float]] = []
        #: (t0, src_track, t1, dst_track, name, cat) — causal edges: something
        #: that left ``src_track`` at ``t0`` arrived on ``dst_track`` at ``t1``
        self.flows: list[tuple[float, str, float, str, str, str]] = []
        #: sparse side table: span index -> (sid, parent) for spans recorded
        #: with explicit ids; spans without ids never allocate an entry
        self.span_meta: dict[int, tuple[str, str | None]] = {}
        #: added to every recorded time — lets multi-phase jobs (pass 1 then
        #: pass 2, each on a fresh platform whose clock restarts at 0) share
        #: one contiguous timeline
        self.offset: float = 0.0
        self._cum: dict[tuple[str, str], float] = {}

    # -- recording ---------------------------------------------------------
    def span(
        self,
        t0: float,
        t1: float,
        track: str,
        name: str,
        cat: str = "span",
        sid: str | None = None,
        parent: str | None = None,
    ) -> None:
        """Record a completed segment [t0, t1) on ``track``.

        ``sid`` gives the span an explicit id and ``parent`` links it to
        another span's id — both optional and stored out-of-band, so spans
        without ids keep the flat 5-tuple layout.
        """
        self.spans.append((t0 + self.offset, t1 + self.offset, track, name, cat))
        if sid is not None:
            self.span_meta[len(self.spans) - 1] = (sid, parent)

    def flow(
        self,
        t0: float,
        src_track: str,
        t1: float,
        dst_track: str,
        name: str,
        cat: str = "flow",
    ) -> None:
        """Record a causal edge: left ``src_track`` at ``t0``, arrived on
        ``dst_track`` at ``t1``.  Both instants get the phase offset, so
        flow edges stitch across multi-pass timelines exactly like spans."""
        self.flows.append(
            (t0 + self.offset, src_track, t1 + self.offset, dst_track, name, cat)
        )

    def instant(self, t: float, track: str, name: str, cat: str = "instant") -> None:
        """Record a point event at ``t`` on ``track``."""
        self.instants.append((t + self.offset, track, name, cat))

    def counter(self, t: float, track: str, name: str, value: float) -> None:
        """Record an absolute counter sample."""
        self.counters.append((t + self.offset, track, name, float(value)))

    def count(self, t: float, track: str, name: str, delta: float) -> float:
        """Accumulate ``delta`` into a tracer-owned running counter and
        record the new cumulative value; returns it."""
        key = (track, name)
        total = self._cum.get(key, 0.0) + delta
        self._cum[key] = total
        self.counter(t, track, name, total)
        return total

    # -- inspection ----------------------------------------------------------
    def tracks(self) -> list[str]:
        """Sorted names of every track with at least one event."""
        seen = {s[2] for s in self.spans}
        seen.update(i[1] for i in self.instants)
        seen.update(c[1] for c in self.counters)
        for f in self.flows:
            seen.add(f[1])
            seen.add(f[3])
        return sorted(seen)

    def t_max(self) -> float:
        """Latest instant touched by any recorded event (0.0 if empty)."""
        t = 0.0
        if self.spans:
            t = max(t, max(s[1] for s in self.spans))
        if self.instants:
            t = max(t, max(i[0] for i in self.instants))
        if self.counters:
            t = max(t, max(c[0] for c in self.counters))
        if self.flows:
            t = max(t, max(f[2] for f in self.flows))
        return t

    def n_events(self) -> int:
        return (len(self.spans) + len(self.instants) + len(self.counters)
                + len(self.flows))

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()
        self.flows.clear()
        self.span_meta.clear()
        self._cum.clear()
        self.offset = 0.0

    def __repr__(self) -> str:
        return (
            f"<Tracer {len(self.spans)} span(s), {len(self.counters)} "
            f"counter sample(s), {len(self.instants)} instant(s), "
            f"{len(self.flows)} flow(s)>"
        )
