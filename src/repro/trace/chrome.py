"""Chrome trace-event export (Perfetto / chrome://tracing loadable).

Produces the JSON object format documented in the Trace Event Format spec:
``{"traceEvents": [...], "displayTimeUnit": "ms"}``.  Each simulated second
maps to one second of trace time (timestamps are in microseconds).

The export is **byte-deterministic**: given the same tracer contents it
always produces the same string.  Track-to-tid assignment is by sorted track
name, dictionary keys are sorted, and floats round-trip through ``repr`` — no
wall-clock values, ids, or hashes are emitted.
"""

from __future__ import annotations

import json
from typing import Any

from .tracer import Tracer

__all__ = ["to_chrome", "chrome_dumps", "write_chrome_trace"]

#: single emulated "process" all tracks live under
_PID = 1


def _us(t: float) -> float:
    """Simulated seconds -> trace microseconds (µs), rounded to 1 ns."""
    return round(t * 1e6, 3)


def to_chrome(tracer: Tracer) -> dict[str, Any]:
    """The trace as a Chrome trace-event JSON object (python dict)."""
    tracks = tracer.tracks()
    tids = {track: i + 1 for i, track in enumerate(tracks)}
    events: list[dict[str, Any]] = []
    for track in tracks:
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
    span_meta = tracer.span_meta
    for i, (t0, t1, track, name, cat) in enumerate(tracer.spans):
        ev: dict[str, Any] = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": _us(t0),
            "dur": _us(t1 - t0),
            "pid": _PID,
            "tid": tids[track],
        }
        meta = span_meta.get(i)
        if meta is not None:
            sid, parent = meta
            args: dict[str, Any] = {"sid": sid}
            if parent is not None:
                args["parent"] = parent
            ev["args"] = args
        events.append(ev)
    for t, track, name, cat in tracer.instants:
        events.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "ts": _us(t),
                "s": "t",
                "pid": _PID,
                "tid": tids[track],
            }
        )
    for t, track, name, value in tracer.counters:
        events.append(
            {
                "ph": "C",
                "name": f"{track}.{name}",
                "ts": _us(t),
                "pid": _PID,
                "tid": tids[track],
                "args": {name: value},
            }
        )
    # Flow edges: one s/f pair per recorded flow.  Ids are assigned by
    # enumeration order (recording order is deterministic), never hashed,
    # so the export stays byte-stable.
    for i, (t0, src_track, t1, dst_track, name, cat) in enumerate(tracer.flows):
        events.append(
            {
                "ph": "s",
                "id": i + 1,
                "name": name,
                "cat": cat,
                "ts": _us(t0),
                "pid": _PID,
                "tid": tids[src_track],
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "id": i + 1,
                "name": name,
                "cat": cat,
                "ts": _us(t1),
                "pid": _PID,
                "tid": tids[dst_track],
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_dumps(tracer: Tracer) -> str:
    """Serialise to a canonical JSON string (stable across runs)."""
    return json.dumps(to_chrome(tracer), sort_keys=True, separators=(",", ":"))


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the trace JSON to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_dumps(tracer))
        fh.write("\n")
    return path
