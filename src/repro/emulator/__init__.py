"""Timing-accurate emulator for active-storage systems (paper §5)."""

from .cpu import Cpu
from .disk import Disk, DiskStats
from .net import Link, Message, Network
from .node import Asu, Host, Node
from .params import SystemParams, TimingMode
from .platform import ActivePlatform, RunReport
from .readahead import DEFAULT_DEPTH, ReadAhead

__all__ = [
    "Cpu",
    "Disk",
    "DiskStats",
    "Link",
    "Message",
    "Network",
    "Asu",
    "Host",
    "Node",
    "SystemParams",
    "TimingMode",
    "ActivePlatform",
    "RunReport",
    "DEFAULT_DEPTH",
    "ReadAhead",
]
