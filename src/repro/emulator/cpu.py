"""CPU model: executes real code, charges scaled virtual time.

The paper's emulator "executes the instructions of application functors
directly on the CPU of the emulation platform ... directly measures CPU time
for each execution segment using the fine-grained processor cycle counter,
then scales the elapsed time according to the relative speed of the emulated
processor" (§5).

:class:`Cpu` supports both that *measured* mode and the default *modeled*
mode, where segments declare an analytic cycle cost (comparisons x cycles per
comparison).  Either way the segment's Python function really runs, so data
transformations are genuine.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - charge_batch degrades to lists
    np = None

from ..sim import BusyTracker, Resource, Simulator
from ..sim.core import Timeout
from .params import SystemParams, TimingMode

__all__ = ["Cpu"]


class Cpu:
    """A single-core processor with a clock rate and FIFO scheduling."""

    def __init__(
        self,
        sim: Simulator,
        clock_hz: float,
        params: SystemParams,
        name: str = "cpu",
    ):
        if clock_hz <= 0:
            raise ValueError("clock_hz must be positive")
        self.sim = sim
        self.clock_hz = clock_hz
        self.params = params
        self.name = name
        self._core = Resource(sim, capacity=1, name=name)
        self.busy = BusyTracker(sim, name=name, cat="cpu")
        #: total cycles charged (for load accounting)
        self.cycles_charged = 0.0
        self.n_segments = 0
        #: dynamic speed multiplier (< 1.0 = degraded clock, fault injection)
        self.speed_factor = 1.0
        self._m_cycles = None
        m = sim.metrics
        if m is not None:
            from ..metrics.registry import derive_owner

            owner = derive_owner(name)
            self._m_cycles = m.counter(
                "repro_cpu_cycles_total", owner=owner, node=name
            )
            m.gauge(
                "repro_cpu_utilization",
                fn=self.busy.utilization_at,
                owner=owner,
                node=name,
            )

    def seconds_for(self, cycles: float) -> float:
        """Virtual seconds to execute ``cycles`` on this CPU."""
        return float(cycles) / (self.clock_hz * self.speed_factor)

    def charge_batch(self, cycles):
        """Vectorized :meth:`seconds_for` over a stripe of cycle charges.

        One NumPy divide instead of N scalar conversions; each element is
        bit-identical to the scalar path (same IEEE-754 division by the same
        denominator).  Falls back to a plain list when NumPy is unavailable.
        Uses the *current* speed factor — precompute charges only for work
        that starts before the next speed change, as :meth:`execute` does
        per segment.
        """
        denom = self.clock_hz * self.speed_factor
        if np is None:  # pragma: no cover - exercised via the fallback tests
            return [float(c) / denom for c in cycles]
        return np.asarray(cycles, dtype=np.float64) / denom

    def set_speed(self, factor: float) -> None:
        """Scale the effective clock by ``factor`` (degraded-clock fault).

        Affects segments that *start* after the change; a segment already in
        flight completes at the rate it began with.  Degradations do not
        nest: restoring always sets the factor back to an absolute value.
        """
        if factor <= 0:
            raise ValueError("speed factor must be positive")
        self.speed_factor = float(factor)

    def halt(self) -> None:
        """Fail-stop accounting: close any open busy interval."""
        self.busy.end_if_busy()

    def execute(
        self,
        cycles: Optional[float] = None,
        fn: Optional[Callable[..., Any]] = None,
        args: tuple = (),
        label: Optional[str] = None,
    ):
        """Process generator: run an execution segment on this CPU.

        ``fn(*args)`` (if given) executes for real; the CPU is then held for
        the segment's cost.  In modeled mode the cost is ``cycles``; in
        measured mode it is the measured wall time converted to cycles at
        ``measured_reference_hz`` (the paper's scaled-cycle-counter method).
        Returns ``fn``'s result.  ``label`` (optional) names the emitted
        trace span after the work being run — a stage or functor name —
        which is what the critical-path profiler folds flamegraph frames
        from; accounting is unchanged.

        Use as ``result = yield from cpu.execute(cycles=..., fn=..., args=...)``.
        """
        if cycles is None and fn is None:
            raise ValueError("execute() needs cycles and/or fn")

        core = self._core
        req = core.request_now()
        if req.callbacks is not None:
            yield req
        try:
            result = None
            charge = float(cycles) if cycles is not None else 0.0
            if fn is not None:
                if self.params.timing_mode == TimingMode.MEASURED:
                    t0 = time.perf_counter_ns()
                    result = fn(*args)
                    wall = (time.perf_counter_ns() - t0) * 1e-9
                    charge = wall * self.params.measured_reference_hz
                else:
                    result = fn(*args)
            dt = float(charge) / (self.clock_hz * self.speed_factor)
            self.cycles_charged += charge
            self.n_segments += 1
            if self._m_cycles is not None:
                self._m_cycles.inc(charge)
            if dt > 0:
                busy = self.busy
                busy.begin(label)
                yield Timeout(self.sim, dt)
                busy.end()
            return result
        finally:
            core.release(req)

    def utilization(self, t_end: Optional[float] = None) -> float:
        return self.busy.utilization(t_end)

    def __repr__(self) -> str:
        return f"<Cpu {self.name} {self.clock_hz / 1e6:.0f}MHz>"
