"""Network model: host <-> ASU links with latency and bandwidth.

Per §5, "the network model for the emulation uses only host-ASU communication,
and assumes that the processor saturates before the individual network links".
Each (node, node) pair communicates over a dedicated full-duplex link; a
message of ``s`` bytes is delivered ``latency + s/bandwidth`` after the link
accepts it, and each direction of a link serialises its messages.

Messages land in the destination node's mailbox (a :class:`~repro.sim.Store`),
so receiving is ordinary channel consumption.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - transfer_time_batch degrades to lists
    np = None

from ..sim import Simulator, Store

__all__ = ["Link", "Network", "Message"]


class Message:
    """A network message: payload plus size accounting.

    ``corrupted`` marks a payload mangled in flight by a ``corrupt_msg`` fault
    window (detectable, like a checksum mismatch).  ``deliver_at`` is filled
    in when the message is dispatched — the instant it will reach the
    destination mailbox — so senders can size retransmission timeouts.
    """

    __slots__ = ("src", "dst", "payload", "nbytes", "tag", "corrupted", "deliver_at",
                 "inbox")

    def __init__(self, src: Hashable, dst: Hashable, payload: Any, nbytes: int, tag: str = ""):
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError(f"message nbytes must be nonnegative, got {nbytes}")
        for role, node in (("src", src), ("dst", dst)):
            try:
                hash(node)
            except TypeError:
                raise TypeError(
                    f"message {role} must be hashable (a node id), "
                    f"got {type(node).__name__}"
                ) from None
        self.src = src
        self.dst = dst
        self.payload = payload
        self.nbytes = nbytes
        self.tag = tag
        self.corrupted = False
        self.deliver_at: Optional[float] = None
        #: override delivery target (a Store) — used by out-of-band receivers
        #: like the network-borne failure detector; None = the dst mailbox
        self.inbox = None

    def __repr__(self) -> str:
        return f"<Message {self.src}->{self.dst} {self.nbytes}B {self.tag!r}>"


class Link:
    """One direction of a point-to-point link (timeline server)."""

    __slots__ = ("sim", "bandwidth", "latency", "name", "_free_at", "bytes_sent", "n_messages")

    def __init__(self, sim: Simulator, bandwidth: float, latency: float, name: str = ""):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if latency < 0:
            raise ValueError("latency must be nonnegative")
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.name = name
        self._free_at = 0.0
        self.bytes_sent = 0
        self.n_messages = 0

    def reserve(self, nbytes: int) -> tuple[float, float]:
        """Reserve transmission; returns (tx_done, delivery_time)."""
        start = max(self.sim.now, self._free_at)
        tx_done = start + nbytes / self.bandwidth
        self._free_at = tx_done
        self.bytes_sent += int(nbytes)
        self.n_messages += 1
        tracer = self.sim.tracer
        if tracer is not None and self.name and tx_done > start:
            tracer.span(start, tx_done, self.name, "tx", cat="link")
        return tx_done, tx_done + self.latency

    def transfer_time(self, nbytes: int) -> float:
        """Unloaded wire time for one message: transmission plus latency."""
        return nbytes / self.bandwidth + self.latency

    def transfer_time_batch(self, nbytes):
        """Vectorized :meth:`transfer_time` over a stripe of message sizes.

        Bit-identical per element to the scalar path (same divide, same
        add); plain-list fallback when NumPy is unavailable.  Unloaded times
        only — queueing behind earlier messages is the timeline's job
        (:meth:`reserve`).
        """
        if np is None:  # pragma: no cover - exercised via the fallback tests
            return [n / self.bandwidth + self.latency for n in nbytes]
        return np.asarray(nbytes, dtype=np.float64) / self.bandwidth + self.latency


class Network:
    """All links plus per-node mailboxes.

    ``send`` blocks the sender for the transmission time (the wire is a shared
    resource); delivery into the destination mailbox happens one latency
    later.  Mailboxes are unbounded by default — bounded mailboxes (receiver
    backpressure) can be requested per node.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        latency: float,
        backplane_bandwidth: Optional[float] = None,
    ):
        self.sim = sim
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self._links: dict[tuple[Hashable, Hashable], Link] = {}
        self._mailboxes: dict[Hashable, Store] = {}
        #: optional aggregate capacity every message also passes through (a
        #: SAN backplane); point-to-point links stop being independent once
        #: their sum exceeds it.
        self._backplane: Optional[Link] = (
            Link(sim, backplane_bandwidth, 0.0, name="link:backplane")
            if backplane_bandwidth is not None
            else None
        )
        self.bytes_total = 0
        self.n_messages = 0
        #: fail-stopped nodes: deliveries to them are captured, not completed
        self.failed: set[Hashable] = set()
        #: messages dropped because their destination was dead at delivery
        #: time — retained so a recovery layer can replay them
        self.dead_letters: list[Message] = []
        self.n_dropped = 0
        #: called with each new dead letter (recovery replay hook)
        self.dead_letter_hook: Optional[Callable[[Message], None]] = None
        #: scheduled link downtime per unordered node pair: list of (t0, t1)
        self._downtimes: dict[frozenset, list[tuple[float, float]]] = {}
        #: message-fault windows per unordered node pair: (t0, t1, kind, extra)
        self._msg_faults: dict[frozenset, list[tuple[float, float, str, float]]] = {}
        #: partition windows: mutable [t0, t1, minority_group, mode] entries
        #: (mutable so :meth:`heal_partitions` can truncate active cuts)
        self._partitions: list[list] = []
        #: messages lost to an active partition cut (not dead-lettered: the
        #: destination is alive, the route is gone)
        self.n_partition_dropped = 0
        #: messages perturbed by fault windows, by kind
        self.msg_fault_counts: dict[str, int] = {
            "drop_msg": 0, "dup_msg": 0, "delay_msg": 0, "corrupt_msg": 0,
        }
        self._m_bytes = None
        self._m_msgs = None
        self._m_dead = None
        m = sim.metrics
        if m is not None:
            self._m_bytes = m.counter("repro_net_bytes_total")
            self._m_msgs = m.counter("repro_net_messages_total")
            self._m_dead = m.counter("repro_net_dead_letters_total")

    # -- topology -----------------------------------------------------------
    def register(self, node_id: Hashable, mailbox_capacity: Optional[int] = None) -> Store:
        """Create (or return) the mailbox for a node."""
        box = self._mailboxes.get(node_id)
        if box is None:
            box = Store(self.sim, capacity=mailbox_capacity, name=f"mbox:{node_id}")
            self._mailboxes[node_id] = box
        return box

    def mailbox(self, node_id: Hashable) -> Store:
        try:
            return self._mailboxes[node_id]
        except KeyError:
            raise KeyError(f"node {node_id!r} not registered with the network") from None

    def link(self, src: Hashable, dst: Hashable) -> Link:
        """The directed link src -> dst (created on first use)."""
        key = (src, dst)
        ln = self._links.get(key)
        if ln is None:
            ln = Link(self.sim, self.bandwidth, self.latency, name=f"link:{src}->{dst}")
            self._links[key] = ln
        return ln


    def _reserve_path(self, src: Hashable, dst: Hashable, nbytes: int) -> tuple[float, float]:
        """Reserve link (and backplane) capacity; returns (tx_done, deliver_at)."""
        ln = self.link(src, dst)
        tracer = self.sim.tracer
        if tracer is not None:
            # Causal issue edge: the sender's CPU activity gates this
            # message's place in the link timeline (without it the link lane
            # is a root of the causal graph and upstream work is invisible
            # to the critical-path walk).
            tracer.flow(self.sim.now, f"{src}.cpu", self.sim.now, ln.name,
                        "tx", cat="queue")
        tx_done, deliver_at = ln.reserve(nbytes)
        if self._backplane is not None:
            bp_done, _ = self._backplane.reserve(nbytes)
            tx_done = max(tx_done, bp_done)
            deliver_at = max(deliver_at, bp_done + self.latency)
        return tx_done, self._defer_for_downtime(src, dst, deliver_at)

    # -- fault support --------------------------------------------------------
    def fail_node(self, node_id: Hashable) -> None:
        """Mark a node fail-stopped: future deliveries to it are dead-lettered."""
        self.failed.add(node_id)

    def set_link_down(self, a: Hashable, b: Hashable, t0: float, t1: float) -> None:
        """Schedule a flap of the a<->b link over [t0, t1).

        The model assumes reliable transport (retransmission): a message whose
        delivery would land inside a downtime window is deferred until the
        link restores at ``t1`` instead of being lost.
        """
        if t1 <= t0:
            raise ValueError(f"empty downtime window [{t0}, {t1})")
        self._downtimes.setdefault(frozenset((a, b)), []).append((float(t0), float(t1)))

    def set_msg_fault(
        self,
        a: Hashable,
        b: Hashable,
        kind: str,
        t0: float,
        t1: float,
        extra: float = 0.0,
    ) -> None:
        """Schedule a message-fault window on the a<->b pair over [t0, t1).

        Every message *sent* between the pair while the window is active is
        perturbed: ``drop_msg`` loses it (the link reservation is still
        consumed — the bytes crossed the wire), ``dup_msg`` delivers a second
        copy, ``delay_msg`` adds ``extra`` seconds of delivery latency, and
        ``corrupt_msg`` flags the payload as corrupted.  Unlike link flaps
        these faults are *unreliable-transport* faults: surviving them needs
        the retransmission layer in :mod:`repro.resilience.channel`.
        """
        if kind not in self.msg_fault_counts:
            raise ValueError(
                f"unknown message fault kind {kind!r}; expected one of "
                f"{sorted(self.msg_fault_counts)}"
            )
        if t1 <= t0:
            raise ValueError(f"empty message-fault window [{t0}, {t1})")
        if kind == "delay_msg" and extra <= 0:
            raise ValueError("delay_msg window needs a positive extra delay")
        self._msg_faults.setdefault(frozenset((a, b)), []).append(
            (float(t0), float(t1), kind, float(extra))
        )

    def set_partition(self, group, t0: float, t1: float, mode: str = "both") -> None:
        """Cut the network between ``group`` and everyone else over [t0, t1).

        ``group`` is the minority side (node ids).  Any message whose
        (src, dst) straddles the cut in a severed direction while the window
        is active is silently lost at dispatch time — the reservation is
        spent, nothing arrives, and nothing is dead-lettered (the destination
        is alive; only the route is gone).  ``mode`` selects the severed
        direction(s) relative to the minority: ``"both"``, ``"out"``
        (minority→majority only), or ``"in"`` (majority→minority only).
        Surviving a cut therefore requires retransmission
        (:mod:`repro.resilience.channel`) outliving the window, plus the
        membership fencing described in docs/PARTITIONS.md.
        """
        if t1 <= t0:
            raise ValueError(f"empty partition window [{t0}, {t1})")
        if mode not in ("both", "out", "in"):
            raise ValueError(f"unknown partition mode {mode!r}")
        g = frozenset(group)
        if not g:
            raise ValueError("partition needs a nonempty minority group")
        self._partitions.append([float(t0), float(t1), g, mode])

    def heal_partitions(self, t: float) -> int:
        """Truncate every partition window active at ``t``; returns the count.

        Windows that already closed are untouched; windows scheduled to open
        *after* ``t`` still will (a heal repairs today's cut, it does not
        cancel tomorrow's).
        """
        healed = 0
        for w in self._partitions:
            if w[0] <= t < w[1]:
                w[1] = float(t)
                healed += 1
        return healed

    def _partition_blocks(self, src: Hashable, dst: Hashable) -> bool:
        """True if an active cut severs the src→dst direction right now."""
        now = self.sim.now
        for t0, t1, group, mode in self._partitions:
            if not (t0 <= now < t1):
                continue
            src_in = src in group
            if src_in == (dst in group):
                continue  # same side of this cut
            if mode == "both" or (mode == "out") == src_in:
                return True
        return False

    def _note_partition_drop(self, msg: Message) -> None:
        self.n_partition_dropped += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "net",
                f"partition-drop {msg.tag}:{msg.src}->{msg.dst}", cat="fault",
            )
        m = self.sim.metrics
        if m is not None:
            m.counter("repro_net_partition_dropped_total").inc()

    def _note_msg_fault(self, msg: Message, kind: str) -> None:
        self.msg_fault_counts[kind] += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "net",
                f"{kind} {msg.tag}:{msg.src}->{msg.dst}", cat="fault",
            )
        m = self.sim.metrics
        if m is not None:
            m.counter("repro_net_msg_faults_total", kind=kind).inc()

    def _dispatch(self, msg: Message, deliver_at: float) -> None:
        """Apply any active message-fault windows, then schedule delivery."""
        if self._partitions and self._partition_blocks(msg.src, msg.dst):
            self._note_partition_drop(msg)
            return  # lost to the cut: the reservation is spent, nothing arrives
        spans = self._msg_faults.get(frozenset((msg.src, msg.dst)))
        if spans:
            now = self.sim.now
            duplicate = False
            for t0, t1, kind, extra in spans:
                if not (t0 <= now < t1):
                    continue
                self._note_msg_fault(msg, kind)
                if kind == "drop_msg":
                    return  # lost: the reservation is spent, nothing arrives
                if kind == "corrupt_msg":
                    msg.corrupted = True
                elif kind == "delay_msg":
                    deliver_at += extra
                elif kind == "dup_msg":
                    duplicate = True
            if duplicate:
                copy = Message(msg.src, msg.dst, msg.payload, msg.nbytes, msg.tag)
                copy.corrupted = msg.corrupted
                copy.deliver_at = deliver_at
                copy.inbox = msg.inbox
                self.sim.schedule_callback(
                    lambda m=copy: self._deliver(m), delay=deliver_at - self.sim.now
                )
        msg.deliver_at = deliver_at
        tracer = self.sim.tracer
        if tracer is not None:
            # Causal edge: the message leaves its link's tx span (whose end is
            # exactly the reserved tx_done ≤ deliver_at - latency) and lands in
            # the destination mailbox at the delivery instant.  The graph
            # builder matches the edge source to the link span ending at or
            # before the departure instant.
            tracer.flow(
                max(self.sim.now, deliver_at - self.latency),
                f"link:{msg.src}->{msg.dst}",
                deliver_at,
                f"mbox:{msg.dst}",
                msg.tag or "msg",
                cat="net",
            )
        self.sim.schedule_callback(
            lambda m=msg: self._deliver(m), delay=deliver_at - self.sim.now
        )

    def _defer_for_downtime(self, src: Hashable, dst: Hashable, deliver_at: float) -> float:
        spans = self._downtimes.get(frozenset((src, dst)))
        if spans:
            changed = True
            while changed:
                changed = False
                for t0, t1 in spans:
                    if t0 <= deliver_at < t1:
                        deliver_at = t1
                        changed = True
        return deliver_at

    def _traffic(self, msg: Message) -> None:
        """Aggregate traffic accounting (plus the trace counters, if on)."""
        self.bytes_total += msg.nbytes
        self.n_messages += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(self.sim.now, "net", "bytes", float(self.bytes_total))
        if self._m_bytes is not None:
            self._m_bytes.inc(float(msg.nbytes))
            self._m_msgs.inc()

    def _deliver(self, msg: Message) -> None:
        """Complete a delivery, or capture it if the destination is dead."""
        if msg.dst in self.failed:
            self.dead_letters.append(msg)
            self.n_dropped += 1
            if self._m_dead is not None:
                self._m_dead.inc()
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.instant(
                    self.sim.now, "net",
                    f"dead-letter {msg.tag}:{msg.src}->{msg.dst}", cat="fault",
                )
            if self.dead_letter_hook is not None:
                self.dead_letter_hook(msg)
            return
        if msg.inbox is not None:
            msg.inbox.put(msg)
            return
        self._mailboxes[msg.dst].put(msg)

    # -- operations -----------------------------------------------------------
    def send(self, src: Hashable, dst: Hashable, payload: Any, nbytes: int, tag: str = ""):
        """Process generator: transmit a message; returns after tx completes.

        Delivery into ``dst``'s mailbox occurs at tx_done + latency via a
        scheduled callback, so the sender does not wait for the propagation
        delay (standard cut-through accounting).
        """
        if dst not in self._mailboxes:
            raise KeyError(f"destination {dst!r} not registered")
        msg = Message(src, dst, payload, nbytes, tag)
        tx_done, deliver_at = self._reserve_path(src, dst, nbytes)
        self._traffic(msg)
        self._dispatch(msg, deliver_at)
        if tx_done > self.sim.now:
            yield self.sim.timeout(tx_done - self.sim.now)
        return msg

    def post(self, src: Hashable, dst: Hashable, payload: Any, nbytes: int,
             tag: str = "", inbox=None) -> Message:
        """Non-blocking send: reserve the link now, deliver later.

        The sender does not wait for transmission — the paper's model assumes
        "the processor saturates before the individual network links" (§5),
        so senders are charged only their CPU copy cost (see
        :meth:`~repro.emulator.node.Node.send_async`).  Link serialisation is
        still modelled: messages posted to the same link queue behind each
        other and arrive in order.

        ``inbox`` redirects delivery into a caller-owned :class:`Store`
        instead of the destination mailbox — out-of-band traffic (heartbeats,
        probes) that must still ride the real network (and so still suffers
        partitions, flaps, and message faults) without mixing into the
        application's receive loop.
        """
        if dst not in self._mailboxes:
            raise KeyError(f"destination {dst!r} not registered")
        msg = Message(src, dst, payload, nbytes, tag)
        msg.inbox = inbox
        _tx_done, deliver_at = self._reserve_path(src, dst, nbytes)
        self._traffic(msg)
        self._dispatch(msg, deliver_at)
        return msg

    def recv(self, node_id: Hashable):
        """Process generator: receive the next message for ``node_id``."""
        msg = yield self.mailbox(node_id).get()
        return msg
