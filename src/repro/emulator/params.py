"""System parameters of the emulated active-storage platform.

Mirrors §2.2 and §5 of the paper: ``D`` ASUs and ``H`` hosts, the host:ASU
CPU-power ratio ``c``, disk I/O properties, and network latency/bandwidth.
Defaults approximate the paper's testbed (750 MHz P-III emulation host,
sequential-I/O disks, gigabit-class host↔ASU links).

CPU work is expressed in **cycles**: a functor that performs ``k`` comparisons
per record costs ``k * cycles_per_compare`` cycles per record, so Figure 9's
"number of compares per key is log(parameter)" is literal in the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..util.records import DEFAULT_SCHEMA, RecordSchema
from ..util.units import GHZ, MB, MHZ

__all__ = ["SystemParams", "TimingMode"]


class TimingMode:
    """How execution-segment time is charged (DESIGN §4.2).

    * ``MODELED`` — analytic: declared cycles / clock.  Deterministic.
    * ``MEASURED`` — the paper's method: wall-clock the real segment with the
      fine-grained counter, scale by the emulated processor's relative speed.
    """

    MODELED = "modeled"
    MEASURED = "measured"

    ALL = (MODELED, MEASURED)


@dataclass(frozen=True)
class SystemParams:
    """Complete description of an emulated configuration."""

    #: number of hosts (H in the model)
    n_hosts: int = 1
    #: number of active storage units (D in the model)
    n_asus: int = 8
    #: host CPU clock (the paper's emulation host: 750 MHz P-III)
    host_clock_hz: float = 750 * MHZ
    #: per-host clock multipliers for heterogeneous hosts (§3.3: "nodes have
    #: heterogeneous performance characteristics"); None = all hosts equal
    host_clock_multipliers: tuple = None  # type: ignore[assignment]
    #: host:ASU processing-power ratio c (paper simulates c = 4 and 8)
    asu_ratio: float = 8.0
    #: aggregate sequential disk transfer rate per ASU
    disk_rate: float = 25 * MB
    #: per-link network bandwidth (host <-> ASU)
    net_bandwidth: float = 125 * MB
    #: per-message network latency
    net_latency: float = 100e-6
    #: optional aggregate interconnect capacity shared by ALL links (a SAN
    #: backplane).  None = only per-link limits apply.  Models §2's
    #: "bandwidth limitations" that ASU-side filtering/aggregation relieves.
    backplane_bandwidth: float = None  # type: ignore[assignment]
    #: ASU buffer memory (bounds alpha and gamma in DSM-Sort)
    asu_mem: int = 8 * MB
    #: host memory (bounds beta, the block-sort run length)
    host_mem: int = 256 * MB
    #: record layout
    schema: RecordSchema = field(default_factory=lambda: DEFAULT_SCHEMA)
    #: emulation granularity: records per block event
    block_records: int = 4096
    #: CPU cost of one key comparison, in cycles
    cycles_per_compare: float = 40.0
    #: fixed per-record handling cost (copy/iterate), in cycles
    cycles_per_record: float = 60.0
    #: per-byte CPU cost of moving data through a NIC (host-memory drain, §1)
    cycles_per_net_byte: float = 0.4
    #: per-byte CPU cost of staging data to/from disk buffers
    cycles_per_io_byte: float = 0.05
    #: timing mode: TimingMode.MODELED or TimingMode.MEASURED
    timing_mode: str = TimingMode.MODELED
    #: cycles/second the *emulation platform* (this Python process) is deemed
    #: to deliver, used to convert measured wall time into emulated cycles
    measured_reference_hz: float = 2.0 * GHZ

    def __post_init__(self) -> None:
        if self.n_hosts < 1:
            raise ValueError("need at least one host")
        if self.n_asus < 1:
            raise ValueError("need at least one ASU")
        if self.asu_ratio <= 0:
            raise ValueError("asu_ratio (c) must be positive")
        if self.timing_mode not in TimingMode.ALL:
            raise ValueError(f"unknown timing mode {self.timing_mode!r}")
        for name in ("disk_rate", "net_bandwidth", "host_clock_hz"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.backplane_bandwidth is not None and self.backplane_bandwidth <= 0:
            raise ValueError("backplane_bandwidth must be positive")
        if self.block_records < 1:
            raise ValueError("block_records must be >= 1")
        if self.host_clock_multipliers is not None:
            m = tuple(self.host_clock_multipliers)
            if len(m) != self.n_hosts:
                raise ValueError(
                    f"host_clock_multipliers has {len(m)} entries for "
                    f"{self.n_hosts} hosts"
                )
            if any(x <= 0 for x in m):
                raise ValueError("host clock multipliers must be positive")
            object.__setattr__(self, "host_clock_multipliers", m)

    # -- derived quantities -------------------------------------------------
    @property
    def asu_clock_hz(self) -> float:
        """ASU clock: host clock divided by the power ratio c."""
        return self.host_clock_hz / self.asu_ratio

    def host_clock_of(self, index: int) -> float:
        """Clock of host ``index`` (heterogeneity-aware)."""
        if self.host_clock_multipliers is None:
            return self.host_clock_hz
        return self.host_clock_hz * self.host_clock_multipliers[index]

    @property
    def total_host_clock_hz(self) -> float:
        """Aggregate host cycles/second across possibly unequal hosts."""
        if self.host_clock_multipliers is None:
            return self.n_hosts * self.host_clock_hz
        return self.host_clock_hz * sum(self.host_clock_multipliers)

    @property
    def block_bytes(self) -> int:
        return self.schema.nbytes(self.block_records)

    @property
    def total_compute_hz(self) -> float:
        """Aggregate cycles/second in the whole system."""
        return self.total_host_clock_hz + self.n_asus * self.asu_clock_hz

    @property
    def host_compute_fraction(self) -> float:
        """Fraction of total processing power residing at hosts (§2.2)."""
        return self.total_host_clock_hz / self.total_compute_hz

    def with_(self, **changes) -> "SystemParams":
        """Return a copy with fields replaced (convenience for sweeps)."""
        return replace(self, **changes)

    def as_dict(self) -> dict:
        """JSON-serialisable parameter set — embedded in :class:`RunReport`
        and BENCH payloads so every baseline is self-describing (notably the
        host:ASU ratio ``c`` and the per-record/byte cost constants)."""
        return {
            "n_hosts": self.n_hosts,
            "n_asus": self.n_asus,
            "host_clock_hz": self.host_clock_hz,
            "host_clock_multipliers": (
                list(self.host_clock_multipliers)
                if self.host_clock_multipliers is not None else None
            ),
            "c": self.asu_ratio,
            "disk_rate": self.disk_rate,
            "net_bandwidth": self.net_bandwidth,
            "net_latency": self.net_latency,
            "backplane_bandwidth": self.backplane_bandwidth,
            "asu_mem": self.asu_mem,
            "host_mem": self.host_mem,
            "record_size": self.schema.record_size,
            "key_size": self.schema.key_size,
            "block_records": self.block_records,
            "cycles_per_compare": self.cycles_per_compare,
            "cycles_per_record": self.cycles_per_record,
            "cycles_per_net_byte": self.cycles_per_net_byte,
            "cycles_per_io_byte": self.cycles_per_io_byte,
            "timing_mode": self.timing_mode,
        }

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"H={self.n_hosts} D={self.n_asus} c={self.asu_ratio:g} "
            f"host={self.host_clock_hz / MHZ:.0f}MHz "
            f"disk={self.disk_rate / MB:.0f}MiB/s "
            f"net={self.net_bandwidth / MB:.0f}MiB/s "
            f"rec={self.schema.record_size}B blk={self.block_records}"
        )
