"""The emulated platform: wiring of hosts, ASUs, network, and reporting.

:class:`ActivePlatform` is what applications program against (Figure 8): it
owns the simulator, builds the node population from a
:class:`~repro.emulator.params.SystemParams`, runs process coroutines, and
produces the utilization/runtime report the paper's instrumentation layer
emits.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from ..sim import Process, Simulator
from .net import Network
from .node import Asu, Host, Node
from .params import SystemParams

__all__ = ["ActivePlatform", "RunReport"]


class RunReport:
    """Summary of one emulated run: makespan plus per-device utilization."""

    def __init__(
        self,
        params: SystemParams,
        makespan: float,
        host_util: list[float],
        asu_cpu_util: list[float],
        asu_disk_util: list[float],
        net_bytes: int,
        n_events: int,
        result: Any = None,
    ):
        self.params = params
        self.makespan = makespan
        self.host_util = host_util
        self.asu_cpu_util = asu_cpu_util
        self.asu_disk_util = asu_disk_util
        self.net_bytes = net_bytes
        self.n_events = n_events
        self.result = result

    #: bumped on breaking changes to the report layout (validated by
    #: ``repro.bench.regress`` when comparing against committed baselines)
    SCHEMA_VERSION = 1

    def as_dict(self) -> dict:
        return {
            "schema_version": self.SCHEMA_VERSION,
            "params": self.params.as_dict(),
            "makespan": self.makespan,
            "host_util": self.host_util,
            "asu_cpu_util": self.asu_cpu_util,
            "asu_disk_util": self.asu_disk_util,
            "net_bytes": self.net_bytes,
            "n_events": self.n_events,
        }

    def to_json(self) -> str:
        """Canonical JSON form (stable key order and separators, so the
        string is byte-identical for identical runs) — the payload the bench
        harness writes as ``BENCH_*.json``."""
        import json

        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def __repr__(self) -> str:
        hu = ",".join(f"{u:.2f}" for u in self.host_util)
        return f"<RunReport makespan={self.makespan:.3f}s host_util=[{hu}]>"

    def render(self) -> str:
        """Human-readable utilization report (the §5 instrumentation output)."""
        from ..util.units import fmt_bytes, fmt_time

        lines = [
            f"makespan {fmt_time(self.makespan)}   "
            f"net {fmt_bytes(self.net_bytes)}   "
            f"events {self.n_events}",
            f"{'node':>8s} {'cpu util':>9s} {'disk util':>10s}",
        ]
        for i, u in enumerate(self.host_util):
            lines.append(f"{'host' + str(i):>8s} {u:9.2f} {'-':>10s}")
        for i, (uc, ud) in enumerate(zip(self.asu_cpu_util, self.asu_disk_util)):
            lines.append(f"{'asu' + str(i):>8s} {uc:9.2f} {ud:10.2f}")
        return "\n".join(lines)


class ActivePlatform:
    """An emulated system of H hosts and D ASUs.

    Pass a :class:`repro.trace.Tracer` to record the run's observability
    stream (device spans, queue depths, link transmissions); ``None`` keeps
    every hook disabled at the cost of a single attribute check.  Pass a
    :class:`repro.metrics.MetricsRegistry` to meter the run — devices
    register their instruments at construction, and ``scrape_interval``
    (virtual seconds) attaches a zero-perturbation collector.
    """

    def __init__(self, params: SystemParams, tracer=None, metrics=None,
                 scrape_interval: Optional[float] = None):
        self.params = params
        self.sim = Simulator()
        self.sim.tracer = tracer
        # The registry must be live before nodes are built: devices grab
        # their instrument handles in their constructors.
        if metrics is not None:
            self.sim.metrics = metrics
            if scrape_interval is not None or metrics.collector is not None:
                metrics.bind_collector(self.sim, scrape_interval)
        self.metrics = metrics
        self.network = Network(
            self.sim,
            bandwidth=params.net_bandwidth,
            latency=params.net_latency,
            backplane_bandwidth=params.backplane_bandwidth,
        )
        self.hosts: list[Host] = [
            Host(self.sim, self.network, params, i) for i in range(params.n_hosts)
        ]
        self.asus: list[Asu] = [
            Asu(self.sim, self.network, params, i) for i in range(params.n_asus)
        ]
        self._procs: list[Process] = []
        #: processes registered to a node, interrupted when that node fails
        self._node_procs: dict[str, list[Process]] = {}
        #: node_ids fail-stopped via :meth:`fail_node`
        self.failed_nodes: set[str] = set()

    # -- node lookup --------------------------------------------------------
    @property
    def nodes(self) -> list[Node]:
        return [*self.hosts, *self.asus]

    def node(self, node_id: str) -> Node:
        for n in self.nodes:
            if n.node_id == node_id:
                return n
        raise KeyError(f"no node {node_id!r}")

    # -- process management ---------------------------------------------------
    def spawn(self, generator, name: str = "", node: Optional[Node] = None) -> Process:
        """Start a process coroutine on the platform.

        If ``node`` is given, the process is registered to it: a fail-stop of
        that node (:meth:`fail_node`) interrupts the process.  Spawning onto a
        node that already failed interrupts the process immediately.
        """
        p = self.sim.process(generator, name=name)
        self._procs.append(p)
        if node is not None:
            self._node_procs.setdefault(node.node_id, []).append(p)
            if not node.alive:
                p.interrupt(cause=f"{node.node_id} failed")
        return p

    def fail_node(self, node: "Node | str") -> None:
        """Fail-stop a node: kill its processes and black-hole its traffic."""
        n = self.node(node) if isinstance(node, str) else node
        if not n.alive:
            return
        n.fail()
        self.failed_nodes.add(n.node_id)
        self.network.fail_node(n.node_id)
        for p in self._node_procs.get(n.node_id, ()):
            if not p.triggered:
                p.interrupt(cause=f"{n.node_id} failed")

    def alive_hosts(self) -> list[Host]:
        return [h for h in self.hosts if h.alive]

    def alive_asus(self) -> list[Asu]:
        return [a for a in self.asus if a.alive]

    def run(
        self,
        until: Optional[float] = None,
        wait_for: Optional[Iterable[Process]] = None,
    ) -> RunReport:
        """Run the simulation and return the instrumentation report.

        If ``wait_for`` is given, the makespan is the completion time of the
        last of those processes; otherwise it is the time the event queue
        drained.
        """
        self.sim.run(until=until)
        makespan = self.sim.now
        if wait_for is not None:
            pending = [p for p in wait_for if not p.triggered]
            if pending:
                raise RuntimeError(
                    f"{len(pending)} awaited process(es) never finished "
                    f"(deadlock or missing input): {pending[:3]}"
                )
        return self.report(makespan)

    def report(self, makespan: Optional[float] = None, result: Any = None) -> RunReport:
        t = self.sim.now if makespan is None else makespan
        if self.metrics is not None and self.metrics.collector is not None:
            self.metrics.collector.finalize(t)
        return RunReport(
            params=self.params,
            makespan=t,
            host_util=[h.cpu.utilization(t) for h in self.hosts],
            asu_cpu_util=[a.cpu.utilization(t) for a in self.asus],
            asu_disk_util=[a.disk.utilization(t) for a in self.asus],
            net_bytes=self.network.bytes_total,
            n_events=self.sim.n_events_processed,
            result=result,
        )

    # -- convenience -----------------------------------------------------------
    def run_to_completion(self, main: Callable[["ActivePlatform"], Any]) -> RunReport:
        """Spawn ``main(self)`` (a generator function) and run until it finishes."""
        p = self.spawn(main(self), name="main")
        self.sim.run()
        if not p.triggered:
            raise RuntimeError("main process never finished (deadlock?)")
        rep = self.report(result=p.value)
        return rep
