"""Nodes of the emulated system: hosts and Active Storage Units.

Per the model in §2.2 / Figure 2: hosts have large memories and powerful
processors; ASUs combine a (slower) processor with disk storage.  Both kinds
exchange messages through the network and run functor code on their CPU.
"""

from __future__ import annotations

from typing import Optional

from ..sim import Simulator, Store
from .cpu import Cpu
from .disk import Disk
from .net import Network
from .params import SystemParams

__all__ = ["Node", "Host", "Asu"]


class Node:
    """Base node: identity, CPU, mailbox."""

    kind = "node"

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        params: SystemParams,
        index: int,
        clock_hz: float,
        mem_bytes: int,
    ):
        self.sim = sim
        self.network = network
        self.params = params
        self.index = index
        self.node_id = f"{self.kind}{index}"
        self.cpu = Cpu(sim, clock_hz, params, name=f"{self.node_id}.cpu")
        self.mem_bytes = int(mem_bytes)
        self.mailbox: Store = network.register(self.node_id)
        #: fail-stop flag — cleared by :meth:`fail`, never restored (§repro.faults)
        self.alive = True
        self._m_net_out = None
        self._m_net_in = None
        m = sim.metrics
        if m is not None:
            self._m_net_out = m.counter(
                "repro_node_net_bytes_total",
                owner=self.node_id, node=self.node_id, dir="out",
            )
            self._m_net_in = m.counter(
                "repro_node_net_bytes_total",
                owner=self.node_id, node=self.node_id, dir="in",
            )

    def fail(self) -> None:
        """Fail-stop this node: mark it dead and close CPU accounting."""
        self.alive = False
        self.cpu.halt()

    def _trace_net(self, name: str, nbytes: int) -> None:
        """Accumulate per-node traffic counters onto the ``<id>.net`` track."""
        tracer = self.sim.tracer
        if tracer is not None and nbytes:
            tracer.count(self.sim.now, f"{self.node_id}.net", name, float(nbytes))
        if self._m_net_out is not None and nbytes:
            (self._m_net_out if name == "bytes_out" else self._m_net_in).inc(
                float(nbytes)
            )

    # -- communication helpers (charge NIC CPU overhead, §1) ---------------
    def send(self, dst: "Node | str", payload, nbytes: int, tag: str = ""):
        """Process generator: CPU-charge the copy, then transmit."""
        dst_id = dst.node_id if isinstance(dst, Node) else dst
        overhead = nbytes * self.params.cycles_per_net_byte
        if overhead:
            yield from self.cpu.execute(cycles=overhead)
        msg = yield from self.network.send(self.node_id, dst_id, payload, nbytes, tag)
        self._trace_net("bytes_out", nbytes)
        return msg

    def send_async(self, dst: "Node | str", payload, nbytes: int, tag: str = ""):
        """Process generator: charge the CPU copy, post without waiting for tx.

        Matches the paper's assumption that processors saturate before links:
        the sender pays the per-byte memory/NIC copy cost but does not stall
        for wire time.
        """
        dst_id = dst.node_id if isinstance(dst, Node) else dst
        overhead = nbytes * self.params.cycles_per_net_byte
        if overhead:
            yield from self.cpu.execute(cycles=overhead)
        self._trace_net("bytes_out", nbytes)
        return self.network.post(self.node_id, dst_id, payload, nbytes, tag)

    def recv(self):
        """Process generator: receive the next message, charging copy cost."""
        msg = yield self.mailbox.get()
        tracer = self.sim.tracer
        if tracer is not None:
            deliver_at = getattr(msg, "deliver_at", None)
            if deliver_at is not None:
                # Causal edge: mailbox residence (delivery -> consumption).
                # The gap between the two instants is queue wait the
                # critical-path profiler attributes to the mailbox.
                tracer.flow(
                    deliver_at, f"mbox:{self.node_id}",
                    self.sim.now, f"{self.node_id}.cpu",
                    getattr(msg, "tag", "") or "recv", cat="queue",
                )
        overhead = msg.nbytes * self.params.cycles_per_net_byte
        if overhead:
            yield from self.cpu.execute(cycles=overhead)
        self._trace_net("bytes_in", msg.nbytes)
        return msg

    def compute(self, cycles: Optional[float] = None, fn=None, args=(),
                label: Optional[str] = None):
        """Process generator: run an execution segment on this node's CPU."""
        result = yield from self.cpu.execute(
            cycles=cycles, fn=fn, args=args, label=label
        )
        return result

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.node_id}>"


class Host(Node):
    """A dedicated application host: fast CPU, large memory, no local disk."""

    kind = "host"

    def __init__(self, sim: Simulator, network: Network, params: SystemParams, index: int):
        super().__init__(
            sim, network, params, index,
            clock_hz=params.host_clock_of(index),
            mem_bytes=params.host_mem,
        )


class Asu(Node):
    """An Active Storage Unit: disk plus a processor ``c`` times slower."""

    kind = "asu"

    def __init__(self, sim: Simulator, network: Network, params: SystemParams, index: int):
        super().__init__(
            sim, network, params, index,
            clock_hz=params.asu_clock_hz,
            mem_bytes=params.asu_mem,
        )
        self.disk = Disk(sim, params.disk_rate, name=f"{self.node_id}.disk")

    def disk_read(self, nbytes: int):
        """Process generator: stream ``nbytes`` off the local disk.

        Charges the (small) per-byte buffer-staging CPU cost in addition to
        the disk transfer time.
        """
        overhead = nbytes * self.params.cycles_per_io_byte
        if overhead:
            yield from self.cpu.execute(cycles=overhead)
        n = yield from self.disk.read(nbytes)
        return n

    def disk_write(self, nbytes: int):
        """Process generator: write ``nbytes`` (write-behind semantics)."""
        overhead = nbytes * self.params.cycles_per_io_byte
        if overhead:
            yield from self.cpu.execute(cycles=overhead)
        n = yield from self.disk.write(nbytes)
        return n
