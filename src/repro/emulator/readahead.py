"""Read-ahead: keep an ASU disk streaming while the CPU works (§5).

"The disk simulation ... assum[es] read-ahead and write caching for
sequential I/O: the disk initiates the next I/O automatically."  The service
timeline in :class:`~repro.emulator.disk.Disk` provides the back-to-back
*service*; this helper provides the *issuance*: it keeps ``depth`` block
reads outstanding so the platter never waits on the consuming process.

Usage inside a process coroutine::

    ra = ReadAhead(plat, asu, [b.shape[0] * rs for b in blocks])
    for block in blocks:
        yield ra.wait_next()     # block's transfer has completed
        ... process block ...
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from .node import Asu
from .platform import ActivePlatform

__all__ = ["ReadAhead", "DEFAULT_DEPTH"]

DEFAULT_DEPTH = 4


class ReadAhead:
    """A sliding window of outstanding sequential reads on one ASU disk."""

    def __init__(
        self,
        plat: ActivePlatform,
        asu: Asu,
        sizes: Sequence[int],
        depth: int = DEFAULT_DEPTH,
    ):
        if depth < 1:
            raise ValueError("read-ahead depth must be >= 1")
        self.plat = plat
        self.asu = asu
        self.sizes = list(sizes)
        self.depth = int(depth)
        self._next_issue = 0
        self._outstanding: deque = deque()
        for _ in range(min(self.depth, len(self.sizes))):
            self._issue()

    def _issue(self) -> None:
        nbytes = self.sizes[self._next_issue]
        self._next_issue += 1
        self._outstanding.append(
            self.plat.spawn(
                self.asu.disk.read(nbytes), name=f"ra.{self.asu.node_id}",
                node=self.asu,
            )
        )

    @property
    def exhausted(self) -> bool:
        return not self._outstanding

    def wait_next(self):
        """Event for the oldest outstanding read; issues the next one.

        Yield the returned process from the calling coroutine.
        """
        if not self._outstanding:
            raise RuntimeError("read-ahead exhausted: more waits than blocks")
        ev = self._outstanding.popleft()
        if self._next_issue < len(self.sizes):
            self._issue()
        return ev
