"""Disk model: aggregate sequential transfer rate with read-ahead and
write-behind.

Per §5: "The disk simulation does not model detailed seek and rotational times
because our current experiments perform all I/O sequentially.  The disk
simulation uses a base aggregate transfer rate to calculate elapsed time under
an I/O load, assuming read-ahead and write caching for sequential I/O: the
disk initiates the next I/O automatically, and writes wait only for the
previous write to complete."

We realise this as a service timeline: the disk serves requests back-to-back
at the transfer rate.  A *read* completes (data available) when its transfer
finishes; thanks to the shared timeline, consecutive reads stream at full
rate with no idle gaps (read-ahead).  A *write* returns to the caller as soon
as the previous write has drained (write-behind), while the transfer itself
still occupies the timeline.
"""

from __future__ import annotations

from typing import Optional

try:
    import numpy as np
except ImportError:  # pragma: no cover - transfer_time_batch degrades to lists
    np = None

from ..sim import BusyTracker, Simulator

__all__ = ["Disk", "DiskFault", "DiskStats"]


class DiskFault(IOError):
    """Transient read failure raised inside an injected disk-fault window.

    Retryable: the device recovers once the window closes (see
    :func:`repro.resilience.io.read_resilient`).
    """


class DiskStats:
    """I/O accounting: operation and byte counts per direction."""

    __slots__ = ("n_reads", "n_writes", "bytes_read", "bytes_written", "n_read_errors")

    def __init__(self) -> None:
        self.n_reads = 0
        self.n_writes = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.n_read_errors = 0

    @property
    def n_ops(self) -> int:
        return self.n_reads + self.n_writes

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written


class Disk:
    """Sequential-I/O disk with a single service timeline."""

    def __init__(self, sim: Simulator, rate: float, name: str = "disk"):
        if rate <= 0:
            raise ValueError("disk rate must be positive")
        self.sim = sim
        self.rate = float(rate)
        self.name = name
        #: when the device finishes its currently queued transfers
        self._free_at = 0.0
        #: when the last *write* transfer completes (write-behind horizon)
        self._last_write_done = 0.0
        self.stats = DiskStats()
        self.busy = BusyTracker(sim, name=name, cat="disk")
        #: CPU track of the owning node, for causal I/O flow edges
        #: ("asu0.disk" -> "asu0.cpu")
        self._cpu_track = (
            name[: -len(".disk")] + ".cpu" if name.endswith(".disk") else name
        )
        #: injected transient-read-error windows: list of (t0, t1)
        self._fault_windows: list[tuple[float, float]] = []
        self._m_read = None
        self._m_write = None
        m = sim.metrics
        if m is not None:
            from ..metrics.registry import derive_owner

            owner = derive_owner(name)
            self._m_read = m.counter(
                "repro_disk_bytes_total", owner=owner, node=name, dir="read"
            )
            self._m_write = m.counter(
                "repro_disk_bytes_total", owner=owner, node=name, dir="write"
            )
            m.gauge(
                "repro_disk_utilization",
                fn=lambda t: min(1.0, self.busy.busy_until(t) / t) if t > 0 else 0.0,
                owner=owner,
                node=name,
            )
            # Backlog of reserved-but-unfinished transfer time: how far the
            # service timeline runs ahead of the clock (queueing pressure).
            m.gauge(
                "repro_disk_queue_seconds",
                fn=lambda t: max(0.0, self._free_at - t),
                owner=owner,
                node=name,
            )

    def transfer_time(self, nbytes: int) -> float:
        return float(nbytes) / self.rate

    def transfer_time_batch(self, nbytes):
        """Vectorized :meth:`transfer_time` over a stripe of transfer sizes.

        Bit-identical per element to the scalar path (one IEEE-754 divide by
        the same rate); plain-list fallback when NumPy is unavailable.
        """
        if np is None:  # pragma: no cover - exercised via the fallback tests
            return [float(n) / self.rate for n in nbytes]
        return np.asarray(nbytes, dtype=np.float64) / self.rate

    def _enqueue(self, nbytes: int, op: str) -> tuple[float, float]:
        """Reserve timeline for a transfer; returns (start, finish)."""
        start = max(self.sim.now, self._free_at)
        finish = start + self.transfer_time(nbytes)
        self._free_at = finish
        # Record the busy span at enqueue time: timeline starts are monotone
        # (and add_interval tolerates overlap regardless).  The span is
        # labelled with the operation so traces distinguish the read stream
        # from write-behind drains.
        if finish > start:
            self.busy.add_interval(start, finish, label=op)
        return start, finish

    def _trace_bytes(self) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.counter(
                self.sim.now, self.name, "bytes", float(self.stats.total_bytes)
            )

    def set_fault_window(self, t0: float, t1: float) -> None:
        """Make reads started in ``[t0, t1)`` raise :class:`DiskFault`."""
        if t1 <= t0:
            raise ValueError(f"empty disk-fault window [{t0}, {t1})")
        self._fault_windows.append((float(t0), float(t1)))

    def _check_fault(self) -> None:
        if not self._fault_windows:
            return
        now = self.sim.now
        for t0, t1 in self._fault_windows:
            if t0 <= now < t1:
                self.stats.n_read_errors += 1
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.instant(now, self.name, "read-error", cat="fault")
                m = self.sim.metrics
                if m is not None:
                    m.counter("repro_disk_read_errors_total", node=self.name).inc()
                raise DiskFault(
                    f"{self.name}: transient read error at t={now:.6f}"
                )

    def read(self, nbytes: int):
        """Process generator: wait until ``nbytes`` have streamed off the disk.

        Raises :class:`DiskFault` (without consuming timeline) when started
        inside an injected fault window.
        """
        if nbytes < 0:
            raise ValueError("negative read size")
        self._check_fault()
        self.stats.n_reads += 1
        self.stats.bytes_read += int(nbytes)
        self._trace_bytes()
        if self._m_read is not None:
            self._m_read.inc(float(nbytes))
        tracer = self.sim.tracer
        if tracer is not None:
            # Causal issue edge: the caller's CPU activity gates this
            # transfer's place in the disk timeline.
            tracer.flow(self.sim.now, self._cpu_track, self.sim.now,
                        self.name, "read", cat="queue")
        _start, finish = self._enqueue(nbytes, "read")
        if finish > self.sim.now:
            yield self.sim.timeout(finish - self.sim.now)
        if tracer is not None:
            # Completion edge: whoever consumes these bytes was gated by
            # the transfer — lets the critical path cross into disk time.
            tracer.flow(self.sim.now, self.name, self.sim.now,
                        self._cpu_track, "read-done", cat="queue")
        return int(nbytes)

    def write(self, nbytes: int):
        """Process generator: returns once the *previous* write has drained.

        The transfer itself still occupies the disk timeline (so sustained
        write throughput is bounded by the rate), but the caller only blocks
        for the write-behind horizon, matching the paper's model.
        """
        if nbytes < 0:
            raise ValueError("negative write size")
        self.stats.n_writes += 1
        self.stats.bytes_written += int(nbytes)
        self._trace_bytes()
        if self._m_write is not None:
            self._m_write.inc(float(nbytes))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.flow(self.sim.now, self._cpu_track, self.sim.now,
                        self.name, "write", cat="queue")
        wait_until = max(self.sim.now, self._last_write_done)
        _start, finish = self._enqueue(nbytes, "write")
        self._last_write_done = finish
        if wait_until > self.sim.now:
            yield self.sim.timeout(wait_until - self.sim.now)
        if tracer is not None:
            # Write-behind: the caller only stalls for the previous write's
            # drain — the completion edge binds to that earlier transfer.
            tracer.flow(self.sim.now, self.name, self.sim.now,
                        self._cpu_track, "write-done", cat="queue")
        return int(nbytes)

    def drain(self):
        """Process generator: wait for all queued transfers to finish.

        Call at the end of a phase so write-behind data is actually on disk
        before the phase is declared complete.
        """
        if self._free_at > self.sim.now:
            yield self.sim.timeout(self._free_at - self.sim.now)

    def utilization(self, t_end: Optional[float] = None) -> float:
        t_end = self.sim.now if t_end is None else t_end
        if t_end <= 0:
            return 0.0
        return min(1.0, self.busy.intervals.busy_in(0.0, t_end) / t_end)

    def __repr__(self) -> str:
        return f"<Disk {self.name} {self.rate / (1 << 20):.0f}MiB/s>"
