"""Epoch-issuing membership views — the fencing authority for takeover.

A :class:`ViewService` owns the *view*: the set of nodes currently allowed
to mutate promoted state.  Every membership change (expulsion on confirmed
failure, re-admission on heal) bumps a monotonically increasing **epoch**.
The rules that make split-brain impossible are small and worth stating
exactly:

* Nodes in the view learn each new epoch the moment it is issued (the view
  announcement is modelled as instantaneous — the authority and the
  fenced resources live on the surviving / majority side together, so no
  extra message round is simulated for it).
* An **expelled** node keeps the stale token it last learned.  It cannot
  observe later epochs until re-admitted, exactly like a partitioned
  process that stopped receiving view changes.
* :meth:`validate` accepts an operation iff the acting node is a current
  member *and* its token is at least the epoch of its own latest
  admission.  In-flight operations from healthy members therefore survive
  unrelated view changes (their token may trail the global epoch), while
  any operation stamped by a zombie — expelled, possibly still running —
  raises :class:`~repro.faults.errors.StaleEpochError`.
* Re-admission issues a *fresh* epoch and resets the node's fence to it,
  so writes the zombie queued before expulsion can never slip in later:
  their token predates the new admission epoch by construction.

The service is deliberately free of I/O: detectors decide *when* to expel
or re-admit; replica managers, manifests, and lease managers decide *what*
to fence.  This class only issues epochs and answers validate().
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..faults.errors import StaleEpochError

__all__ = ["ViewService"]


class ViewService:
    """Monotone-epoch membership view with fencing-token validation."""

    def __init__(self, members: Iterable[str], metrics=None):
        self.epoch = 1
        self._members: set[str] = set(members)
        #: epoch of each node's latest admission — the fence it must clear
        self._fence: dict[str, int] = {m: 1 for m in self._members}
        #: last epoch each node learned (members track the view; expelled
        #: nodes freeze at whatever they knew when the partition cut them off)
        self._token: dict[str, int] = {m: 1 for m in self._members}
        #: (virtual time, epoch, change, node) — genesis plus every change
        self.history: list[tuple[float, int, str, str]] = [
            (0.0, 1, "genesis", ",".join(sorted(self._members)))
        ]
        self.n_rejections = 0
        self._m = metrics
        if metrics is not None:
            self._g_epoch = metrics.gauge("repro_view_epoch")
            self._g_members = metrics.gauge("repro_view_members")
            self._c_changes = metrics.counter("repro_view_changes_total")
            self._c_rejected = metrics.counter("repro_epoch_rejections_total")
            self._g_epoch.set(1.0)
            self._g_members.set(float(len(self._members)))
        else:
            self._g_epoch = self._g_members = None
            self._c_changes = self._c_rejected = None

    # -- queries ---------------------------------------------------------------
    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def is_member(self, nid: str) -> bool:
        return nid in self._members

    def token(self, nid: str) -> int:
        """The epoch ``nid`` currently believes — what it stamps on writes."""
        return self._token.get(nid, 0)

    def fence(self, nid: str) -> Optional[int]:
        """Epoch of ``nid``'s latest admission (None if never admitted)."""
        return self._fence.get(nid)

    # -- membership changes ----------------------------------------------------
    def _bump(self, now: float, change: str, nid: str) -> int:
        self.epoch += 1
        for m in self._members:
            self._token[m] = self.epoch
        self.history.append((now, self.epoch, change, nid))
        if self._g_epoch is not None:
            self._g_epoch.set(float(self.epoch))
            self._g_members.set(float(len(self._members)))
            self._c_changes.inc()
        return self.epoch

    def expel(self, nid: str, now: float = 0.0) -> int:
        """Remove ``nid`` from the view; returns the new epoch.

        The expelled node's token is deliberately *not* updated — it holds
        whatever it last learned, which is what makes its in-flight writes
        fail :meth:`validate` from this instant on.
        """
        if nid not in self._members:
            return self.epoch
        self._members.discard(nid)
        return self._bump(now, "expel", nid)

    def admit(self, nid: str, now: float = 0.0) -> int:
        """(Re-)admit ``nid`` under a fresh epoch; returns that epoch.

        The fence moves up to the admission epoch, so anything the node
        stamped while expelled stays permanently invalid.
        """
        if nid in self._members:
            return self.epoch
        self._members.add(nid)
        epoch = self._bump(now, "admit", nid)
        self._fence[nid] = epoch
        self._token[nid] = epoch  # the admission reply carries the new view
        return epoch

    # -- fencing ---------------------------------------------------------------
    def validate(self, nid: str, token: Optional[int] = None,
                 op: str = "write") -> int:
        """Check an operation acting for ``nid``; raise on a stale epoch.

        ``token`` defaults to the node's current belief (the common case:
        the operation was stamped just before arriving).  Returns the token
        actually validated, so callers can log it.
        """
        tok = self._token.get(nid, 0) if token is None else token
        fence = self._fence.get(nid, self.epoch + 1)
        if nid not in self._members or tok < fence:
            self.n_rejections += 1
            if self._c_rejected is not None:
                self._c_rejected.inc()
            raise StaleEpochError(nid, tok, fence if nid in self._fence else None, op=op)
        return tok

    def __repr__(self) -> str:
        return (f"<ViewService epoch={self.epoch} members={sorted(self._members)} "
                f"rejections={self.n_rejections}>")
