"""repro.membership — epoch-fenced membership views for partition tolerance.

The paper's platform assumes fail-stop ASUs; a network partition breaks
that assumption because a node can be *unreachable* without being *dead*.
This package provides the authority that keeps takeover safe anyway: a
:class:`ViewService` that issues monotonically increasing epochs on every
membership change.  Epochs are fencing tokens — replica writes, manifest
journal appends, and scheduler lease completions present the epoch their
node last learned, and operations from an expelled (zombie) node are
rejected with :class:`~repro.faults.errors.StaleEpochError` instead of
corrupting promoted state.

See docs/PARTITIONS.md for the end-to-end design (fault kinds, detection
modes, fencing rules, heal-time reconciliation).
"""

from __future__ import annotations

from .view import ViewService

__all__ = ["ViewService"]
