"""Process coroutines driven by the event queue.

The paper's emulator stores per-node execution context in threads switched by
the event queue (§5).  We use generator coroutines instead — same semantics,
deterministic and far cheaper.  A process yields events; the kernel resumes it
with the event's value (or throws the event's exception into it).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import _PENDING, Event, Simulator
from .errors import Interrupt, SimError

__all__ = ["Process"]


class Process(Event):
    """Wraps a generator; fires (as an Event) when the generator returns.

    The event's value is the generator's return value, so processes can wait
    on each other simply by yielding the other process.
    """

    __slots__ = ("_gen", "_waiting_on", "_send", "_throw")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimError(f"process body must be a generator, got {generator!r}")
        super().__init__(sim, name or getattr(generator, "__name__", ""))
        self._gen = generator
        # Bound methods cached once: _step runs once per resume, which is the
        # hottest non-kernel path in the simulator.
        self._send = generator.send
        self._throw = generator.throw
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time (after already-queued events).
        boot = Event(sim)
        boot.callbacks.append(self._resume)
        boot._ok = True
        boot._value = None
        sim._post(boot)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The target stops waiting on whatever event it yielded (that event is
        *not* cancelled; its value is simply no longer delivered here).
        """
        if self.triggered:
            raise SimError(f"cannot interrupt dead process {self!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        exc = Interrupt(cause)
        kick = Event(self.sim)
        kick.callbacks.append(lambda _ev: self._step(exc, throw=True))
        kick._ok = True
        kick._value = None
        self.sim._post(kick)

    # -- internal ----------------------------------------------------------
    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:  # interrupted after the event fired
            return
        self._waiting_on = None
        self._step(event._value, throw=not event._ok)

    def _step(self, value: Any, throw: bool) -> None:
        while True:
            try:
                if throw:
                    target = self._throw(value)
                else:
                    target = self._send(value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except Interrupt:
                # Process chose not to handle its interrupt: treat as clean
                # exit.
                self.succeed(None)
                return
            except BaseException as exc:
                # Propagate failures to anyone waiting on this process; if
                # nobody is waiting, re-raise so bugs do not vanish silently.
                self._ok = False
                self._value = exc
                if self.callbacks:
                    self.sim._post(self)
                else:
                    self.callbacks = None
                    raise
                return

            if not isinstance(target, Event):
                raise SimError(
                    f"process {self.name!r} yielded {target!r}; processes "
                    "must yield Event instances"
                )
            if target.callbacks is None:
                # Already processed: this process must take its turn BEHIND
                # events already scheduled at this instant — load-manager
                # decisions and store FIFO order depend on that fairness.
                # When it is already last at this instant (at_tail) the turn
                # is immediate and the kick is elided, order-identically.
                if self.sim.at_tail():
                    value = target._value
                    throw = not target._ok
                    continue
                self._waiting_on = None
                kick = Event(self.sim)
                kick.callbacks.append(
                    lambda _ev, t=target: self._resume_processed(t)
                )
                kick._ok = True
                kick._value = None
                self.sim._post(kick)
            else:
                self._waiting_on = target
                target.callbacks.append(self._resume)
            return

    def _resume_processed(self, target: Event) -> None:
        if self._value is not _PENDING:
            return
        self._step(target._value, throw=not target._ok)
