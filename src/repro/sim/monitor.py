"""Progress and utilization monitoring hooks for the simulation.

The paper's emulator "is instrumented to report application progress, overall
runtime, and resource utilization for each host and ASU" (§5).  A
:class:`BusyTracker` records busy intervals on a device; a
:class:`ProgressCounter` counts records through a stage.
"""

from __future__ import annotations

from ..util.stats import IntervalAccumulator, TimeSeries
from .core import Simulator

__all__ = ["BusyTracker", "ProgressCounter"]


class BusyTracker:
    """Records busy intervals of a device for utilization reporting.

    When a tracer is attached to the simulator, every recorded interval is
    also emitted as a trace span on the track named after this tracker —
    utilization accounting and observability share one code path.
    """

    def __init__(self, sim: Simulator, name: str = "", cat: str = "busy"):
        self.sim = sim
        self.name = name
        #: trace category (and default span label) for segments of this device
        self.cat = cat
        self.intervals = IntervalAccumulator()
        self._busy_since: float | None = None
        self._busy_label: str | None = None

    def _trace(self, start: float, end: float, label: str | None = None) -> None:
        tracer = self.sim.tracer
        if tracer is not None and end > start:
            tracer.span(
                start, end, self.name or "busy", label or self.cat, cat=self.cat
            )

    def begin(self, label: str | None = None) -> None:
        """Open a busy interval; ``label`` (optional) names the emitted trace
        span — e.g. the functor/stage running on a CPU — instead of the
        generic category.  Accounting is identical either way."""
        if self._busy_since is not None:
            raise RuntimeError(f"{self.name}: begin() while already busy")
        self._busy_since = self.sim.now
        self._busy_label = label

    def end(self) -> None:
        if self._busy_since is None:
            raise RuntimeError(f"{self.name}: end() while not busy")
        start = self._busy_since
        self.intervals.add(start, self.sim.now)
        self._busy_since = None
        self._trace(start, self.sim.now, self._busy_label)
        self._busy_label = None

    def add_span(self, duration: float, label: str | None = None) -> None:
        """Record a busy span ending now (for modelled, non-reentrant work).

        The start is clamped to t=0 (a span longer than the elapsed clock is
        back-dated to the epoch, not to negative time), and spans may overlap
        earlier intervals — two modelled transfers of different lengths can
        legitimately end at the same instant.
        """
        end = self.sim.now
        start = max(0.0, end - duration)
        self.intervals.insert(start, end)
        self._trace(start, end, label)

    def add_interval(self, start: float, end: float, label: str | None = None) -> None:
        """Record an explicit [start, end) busy interval (timeline devices
        reserve service time ahead of the clock, e.g. disk write-behind)."""
        self.intervals.insert(start, end)
        self._trace(start, end, label)

    def end_if_busy(self) -> None:
        """Close an open busy interval if one exists.

        Used when a device halts abruptly (fail-stop, §repro.faults): the
        segment in flight is accounted busy up to the failure instant.
        """
        if self._busy_since is not None:
            self.end()

    @property
    def total_busy(self) -> float:
        extra = (self.sim.now - self._busy_since) if self._busy_since is not None else 0.0
        return self.intervals.total_busy + extra

    def busy_until(self, t: float) -> float:
        """Busy time accumulated in [0, t) — valid for any t, including
        scrape boundaries ahead of ``sim.now`` (an open busy interval and
        ahead-of-clock reservations are clipped at ``t``)."""
        extra = 0.0
        if self._busy_since is not None and t > self._busy_since:
            extra = t - self._busy_since
        return self.intervals.busy_in(0.0, t) + extra

    def utilization(self, t_end: float | None = None) -> float:
        t_end = self.sim.now if t_end is None else t_end
        if t_end <= 0:
            return 0.0
        return self.total_busy / t_end

    def utilization_at(self, t: float) -> float:
        """Cumulative utilization over [0, t) — the scrape-time gauge value."""
        if t <= 0:
            return 0.0
        return self.busy_until(t) / t

    def utilization_series(self, t_end: float | None = None, dt: float = 0.1):
        """Windowed utilization samples — the Figure-10 trace data.

        A busy interval still open at sampling time contributes its overlap
        with every window (clipped at each window edge), consistent with
        :meth:`busy_until` / :meth:`utilization_at` — sampling mid-segment
        no longer under-reports the segment in flight.
        """
        t_end = self.sim.now if t_end is None else t_end
        return self.intervals.utilization_series(
            t_end, dt, open_start=self._busy_since
        )


class ProgressCounter:
    """Counts records (or bytes) flowing through a point, with a time series."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self.total = 0
        self.series = TimeSeries()
        self._m_records = None
        m = sim.metrics
        if m is not None and name:
            from ..metrics.registry import derive_owner

            self._m_records = m.counter(
                "repro_progress_records_total",
                owner=derive_owner(name),
                point=name,
            )

    def add(self, n: int) -> None:
        self.total += int(n)
        self.series.append(self.sim.now, self.total)
        tracer = self.sim.tracer
        if tracer is not None and self.name:
            tracer.counter(self.sim.now, self.name, "records", float(self.total))
        if self._m_records is not None:
            self._m_records.inc(float(n))

    def rate(self) -> float:
        """Average rate since t=0."""
        return self.total / self.sim.now if self.sim.now > 0 else 0.0
