"""Counted resources with FIFO queuing.

Models exclusive or limited-concurrency devices (a CPU core, a disk arm).
Requests are granted strictly in request order, preserving determinism.
"""

from __future__ import annotations

from collections import deque

from .core import Event, Simulator
from .errors import SimError

__all__ = ["Resource"]


class ResourceRequest(Event):
    """Event granted when the resource has a free slot.

    Usable as a context manager inside a process::

        req = resource.request()
        yield req
        try:
            ... hold the resource ...
        finally:
            resource.release(req)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` concurrent holders; extra requests queue FIFO."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: list[ResourceRequest] = []
        self.queue: deque[ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of current holders."""
        return len(self.users)

    def request(self) -> ResourceRequest:
        req = ResourceRequest(self)
        if len(self.users) < self.capacity:
            self.users.append(req)
            req.succeed()
        else:
            self.queue.append(req)
        return req

    def request_now(self) -> ResourceRequest:
        """Like :meth:`request`, but an immediate grant skips the event queue
        when that is provably order-preserving.

        The grant event exists only to give the requester its FIFO turn among
        the events already scheduled at this instant.  When the requester is
        running as the *last* event of the current batch (``sim.at_tail()``)
        the grant would be processed immediately next with nothing in
        between, so it is returned already *processed* (``callbacks is
        None``) and the caller proceeds synchronously — schedules are
        byte-identical by construction, one queue round-trip cheaper.  In any
        other situation this is exactly :meth:`request`.
        """
        if len(self.users) < self.capacity:
            req = ResourceRequest(self)
            self.users.append(req)
            if self.sim.at_tail():
                req._ok = True
                req._value = None
                req.callbacks = None
            else:
                req.succeed()
            return req
        req = ResourceRequest(self)
        self.queue.append(req)
        return req

    def release(self, req: ResourceRequest) -> None:
        try:
            self.users.remove(req)
        except ValueError:
            # Releasing a queued (never-granted) request cancels it.
            try:
                self.queue.remove(req)
                return
            except ValueError:
                raise SimError("release of a request that was never granted") from None
        if self.queue and len(self.users) < self.capacity:
            nxt = self.queue.popleft()
            self.users.append(nxt)
            nxt.succeed()
