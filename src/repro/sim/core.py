"""Deterministic discrete-event simulation core.

This is the event queue at the heart of the paper's emulator (§5): it keeps a
global virtual clock, orders all events in temporal (causal) order, and drives
process coroutines.  Determinism is guaranteed by breaking time ties with a
monotonically increasing sequence number, so two runs with the same seed
produce identical schedules.

The design follows the familiar generator-coroutine style (as in SimPy):
processes are Python generators that ``yield`` events; the kernel resumes a
process when the event it waits on fires.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from .errors import SimError, StopSimulation

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "Simulator"]

# Sentinel for "event has no value yet".
_PENDING = object()


class Event:
    """A one-shot occurrence in virtual time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called
    (scheduling its callbacks), and *processed* after the kernel has run the
    callbacks.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        #: Callables invoked with this event when it is processed.  ``None``
        #: once processed (guards against double-trigger).
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.name = name

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self._value is not _PENDING:
            raise SimError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._post(self)
        return self

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else
            "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise SimError(f"negative timeout delay {delay}")
        super().__init__(sim, name)
        self._ok = True
        self._value = value
        sim._post(self, delay=delay)


class _CompositeEvent(Event):
    """Base for AnyOf / AllOf condition events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                # Already-processed events count immediately via a callback
                # posted through the queue to preserve ordering.  (A merely
                # *triggered* event — e.g. a fresh Timeout — is still queued
                # and will invoke our callback when its time comes.)
                self.sim.schedule_callback(lambda e=ev: self._on_fire(e))
            else:
                ev.callbacks.append(self._on_fire)

    def _done_value(self) -> dict:
        # Only *processed* events have actually occurred in virtual time;
        # a pending Timeout carries its value from construction but has not
        # fired yet.
        return {
            ev: ev.value
            for ev in self.events
            if ev.callbacks is None and ev.ok
        }

    def _on_fire(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_CompositeEvent):
    """Fires when any constituent event fires (value: dict of fired events)."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed(self._done_value())


class AllOf(_CompositeEvent):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._done_value())


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0  # tie-break: FIFO among same-time events
        self._running = False
        self.n_events_processed = 0
        #: optional :class:`repro.trace.Tracer`.  ``None`` (the default)
        #: disables all instrumentation: hook points guard on this attribute
        #: and record nothing, so tracing costs nothing when off and never
        #: perturbs the schedule when on (recording is pure observation).
        self.tracer = None
        #: optional :class:`repro.metrics.MetricsRegistry`, same contract as
        #: ``tracer``: ``None`` means every metrics hook is a single attribute
        #: check.  Its collector (if any) is invoked from :meth:`step` as a
        #: pure observer — it never enqueues events.
        self.metrics = None

    # -- event construction helpers ---------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        return Timeout(self, delay, value, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator, name: str = ""):
        """Spawn a process coroutine (imported lazily to avoid a cycle)."""
        from .process import Process

        return Process(self, generator, name=name)

    def schedule_callback(self, fn: Callable[[], None], delay: float = 0.0) -> Event:
        """Run ``fn`` at ``now + delay`` as a bare scheduled call."""
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn())
        ev._ok = True
        ev._value = None
        self._post(ev, delay=delay)
        return ev

    # -- queue internals ---------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if event.callbacks is None:
            raise SimError(f"event {event!r} already processed")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    # -- execution ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process one event: advance the clock and run its callbacks."""
        t, _seq, event = heapq.heappop(self._heap)
        if t < self.now:
            raise SimError("time went backwards (corrupt event queue)")
        m = self.metrics
        if m is not None and m.collector is not None:
            # Scrape boundaries in (now, t] before the clock advances: state
            # is constant between events, so this is the exact left-limit
            # sample at each boundary, with zero events added to the heap.
            m.collector.observe(t)
        self.now = t
        callbacks = event.callbacks
        event.callbacks = None
        self.n_events_processed += 1
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the queue drains or the clock passes ``until``.

        Returns the value of a :class:`StopSimulation` if one was raised
        (e.g. by :meth:`stop`), else ``None``.
        """
        if self._running:
            raise SimError("simulator is not reentrant")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self.now = until
                    break
                try:
                    self.step()
                except StopSimulation as stop:
                    return stop.value
        finally:
            self._running = False
        return None

    def stop(self, value: Any = None) -> None:
        """Halt :meth:`run` after the current event (callable from callbacks)."""
        raise StopSimulation(value)
