"""Deterministic discrete-event simulation core.

This is the event queue at the heart of the paper's emulator (§5): it keeps a
global virtual clock, orders all events in temporal (causal) order, and drives
process coroutines.  Determinism is guaranteed by breaking time ties with FIFO
order among same-time events, so two runs with the same seed produce identical
schedules.

The design follows the familiar generator-coroutine style (as in SimPy):
processes are Python generators that ``yield`` events; the kernel resumes a
process when the event it waits on fires.

Batched event kernel
--------------------

Internally the queue is *bucketed by timestamp*: a heap orders only the
distinct event times, and each time maps to a FIFO list of the events posted
for it.  ``run`` drains one whole same-timestamp bucket ("batch") at a time in
a tight loop, so the per-event cost is one list append on post plus one index
step on drain — the heap is touched once per distinct instant instead of once
per event.  Emulated workloads post most events at already-scheduled instants
(zero-delay grants, store settles, message deliveries), which is what makes
this the simulator's main wall-clock lever.

The batching is *exactly* order-preserving: buckets are appended in post
order, which is ``_seq`` order, so the drain order equals the old per-event
``(time, seq)`` heap order event for event — schedules (and therefore every
simulated-time result) are byte-identical to the unbatched kernel.  Events
posted *during* a drain at the current instant join the open batch at its
tail, exactly where the old kernel's heap would have placed them.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional

from .errors import SimError, StopSimulation

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "Simulator"]

# Sentinel for "event has no value yet".
_PENDING = object()

_INF = float("inf")


class Event:
    """A one-shot occurrence in virtual time.

    An event is *triggered* once :meth:`succeed` or :meth:`fail` is called
    (scheduling its callbacks), and *processed* after the kernel has run the
    callbacks.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        #: Callables invoked with this event when it is processed.  ``None``
        #: once processed (guards against double-trigger).
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.name = name

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimError(f"event {self!r} not yet triggered")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimError(f"event {self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._post(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() needs an exception instance")
        if self._value is not _PENDING:
            raise SimError(f"event {self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._post(self)
        return self

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else
            "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None, name: str = ""):
        if delay < 0:
            raise SimError(f"negative timeout delay {delay}")
        super().__init__(sim, name)
        self._ok = True
        self._value = value
        sim._post(self, delay=delay)


class _CompositeEvent(Event):
    """Base for AnyOf / AllOf condition events."""

    __slots__ = ("events", "_n_fired")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._n_fired = 0
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.callbacks is None:
                # Already-processed events count immediately via a callback
                # posted through the queue to preserve ordering.  (A merely
                # *triggered* event — e.g. a fresh Timeout — is still queued
                # and will invoke our callback when its time comes.)
                self.sim.schedule_callback(lambda e=ev: self._on_fire(e))
            else:
                ev.callbacks.append(self._on_fire)

    def _done_value(self) -> dict:
        # Only *processed* events have actually occurred in virtual time;
        # a pending Timeout carries its value from construction but has not
        # fired yet.
        return {
            ev: ev.value
            for ev in self.events
            if ev.callbacks is None and ev.ok
        }

    def _on_fire(self, ev: Event) -> None:
        raise NotImplementedError


class AnyOf(_CompositeEvent):
    """Fires when any constituent event fires (value: dict of fired events)."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed(self._done_value())


class AllOf(_CompositeEvent):
    """Fires when all constituent events have fired."""

    __slots__ = ()

    def _on_fire(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._n_fired += 1
        if self._n_fired == len(self.events):
            self.succeed(self._done_value())


class Simulator:
    """The event loop: a clock plus a time-bucketed queue of triggered events."""

    def __init__(self) -> None:
        self.now: float = 0.0
        #: distinct event times, a heap — one entry per *bucket*, not per event
        self._times: list[float] = []
        #: time -> events posted for that time, in FIFO (``_seq``) order
        self._buckets: dict[float, list[Event]] = {}
        #: the batch currently being drained (events at ``_batch_t == now``);
        #: ``_batch_i`` is the next index.  A partially drained batch survives
        #: :meth:`stop` so a later ``run`` resumes exactly where it halted.
        self._batch: Optional[list[Event]] = None
        self._batch_t = 0.0
        self._batch_i = 0
        self._seq = 0  # monotone post counter (FIFO tie-break bookkeeping)
        self._running = False
        self.n_events_processed = 0
        #: optional :class:`repro.trace.Tracer`.  ``None`` (the default)
        #: disables all instrumentation: hook points guard on this attribute
        #: and record nothing, so tracing costs nothing when off and never
        #: perturbs the schedule when on (recording is pure observation).
        self.tracer = None
        #: optional :class:`repro.metrics.MetricsRegistry`, same contract as
        #: ``tracer``: ``None`` means every metrics hook is a single attribute
        #: check.  Its collector (if any) is invoked once per batch as a pure
        #: observer — it never enqueues events.
        self.metrics = None

    # -- event construction helpers ---------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        return Timeout(self, delay, value, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(self, generator, name: str = ""):
        """Spawn a process coroutine (imported lazily to avoid a cycle)."""
        from .process import Process

        return Process(self, generator, name=name)

    def schedule_callback(self, fn: Callable[[], None], delay: float = 0.0) -> Event:
        """Run ``fn`` at ``now + delay`` as a bare scheduled call."""
        ev = Event(self)
        ev.callbacks.append(lambda _ev: fn())
        ev._ok = True
        ev._value = None
        self._post(ev, delay=delay)
        return ev

    # -- queue internals ---------------------------------------------------
    def _post(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue a triggered event for processing at ``now + delay``."""
        if event.callbacks is None:
            raise SimError(f"event {event!r} already processed")
        self._seq += 1
        t = self.now + delay
        # A zero-delay post while (or right after) draining the batch at the
        # current instant joins that batch at its tail — identical placement
        # to the old per-event heap's (t, seq) order.
        batch = self._batch
        if batch is not None and t == self._batch_t:
            batch.append(event)
            return
        bucket = self._buckets.get(t)
        if bucket is None:
            self._buckets[t] = [event]
            heappush(self._times, t)
        else:
            bucket.append(event)

    def _open_batch(self) -> list[Event]:
        """Pop the earliest bucket, advance the clock, make it current.

        Raises IndexError when the queue is empty (same contract heappop had).
        """
        t = heappop(self._times)
        if t < self.now:
            raise SimError("time went backwards (corrupt event queue)")
        m = self.metrics
        if m is not None and m.collector is not None:
            # Scrape boundaries in (now, t] before the clock advances: state
            # is constant between events, so this is the exact left-limit
            # sample at each boundary, with zero events added to the queue.
            # One call per batch equals one call per event — for the second
            # and later events of a batch, time has not moved and the
            # collector's due-clock makes the call a no-op.
            m.collector.observe(t)
        self.now = t
        batch = self._buckets.pop(t)
        self._batch = batch
        self._batch_t = t
        self._batch_i = 0
        return batch

    def at_tail(self) -> bool:
        """True when the event being processed is the last at this instant.

        Nothing else is scheduled for the current time, so code that would
        enqueue a zero-delay event and wait for it (a resource grant, a kick
        for an already-processed target) may instead proceed synchronously
        without changing the schedule: the queued event would have been
        processed immediately next, with no event in between.
        """
        batch = self._batch
        return batch is None or self._batch_i >= len(batch)

    # -- execution ----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next event, or +inf if the queue is empty."""
        if self._batch is not None and self._batch_i < len(self._batch):
            return self._batch_t
        return self._times[0] if self._times else _INF

    def step(self) -> None:
        """Process one event: advance the clock and run its callbacks."""
        batch = self._batch
        i = self._batch_i
        if batch is None or i >= len(batch):
            batch = self._open_batch()
            i = 0
        self._batch_i = i + 1
        event = batch[i]
        callbacks = event.callbacks
        event.callbacks = None
        self.n_events_processed += 1
        for cb in callbacks:
            cb(event)

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the queue drains or the clock passes ``until``.

        In either exit the clock ends at ``min(until, time of next pending
        event)`` — i.e. when the queue drains before ``until``, ``now``
        still advances to ``until`` (nothing can happen in between), matching
        the early-break branch.

        Returns the value of a :class:`StopSimulation` if one was raised
        (e.g. by :meth:`stop`), else ``None``.
        """
        if self._running:
            raise SimError("simulator is not reentrant")
        self._running = True
        try:
            times = self._times
            batch = self._batch
            i = self._batch_i
            while True:
                if batch is None or i >= len(batch):
                    if not times:
                        break
                    if until is not None and times[0] > until:
                        self.now = until
                        return None
                    batch = self._open_batch()
                    i = 0
                # Drain the whole same-timestamp batch.  Callbacks may append
                # zero-delay events to ``batch`` mid-drain, so the bound is
                # re-read every iteration.
                n_done = 0
                try:
                    while i < len(batch):
                        event = batch[i]
                        i += 1
                        self._batch_i = i
                        callbacks = event.callbacks
                        event.callbacks = None
                        n_done += 1
                        for cb in callbacks:
                            cb(event)
                except StopSimulation as stop:
                    return stop.value
                finally:
                    self.n_events_processed += n_done
                    self._batch_i = i
            if until is not None and until > self.now:
                # Queue drained before the horizon: advance the clock to it
                # (consistent with the early-break branch above).
                self.now = until
        finally:
            self._running = False
        return None

    def stop(self, value: Any = None) -> None:
        """Halt :meth:`run` after the current event (callable from callbacks)."""
        raise StopSimulation(value)
