"""Exceptions raised by the simulation kernel."""

from __future__ import annotations

__all__ = ["SimError", "Interrupt", "StopSimulation"]


class SimError(RuntimeError):
    """Base class for simulation-kernel errors (misuse, double-trigger, ...)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` early."""

    def __init__(self, value=None):
        super().__init__(value)
        self.value = value
