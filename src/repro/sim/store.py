"""FIFO stores (bounded channels) for inter-process communication.

Functor stages on different nodes exchange record blocks through stores; a
bounded capacity models finite buffer memory, giving natural backpressure:
a fast producer blocks when the consumer falls behind, exactly the pipeline
coupling that makes the bottleneck stage set the throughput in Figure 9.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .core import Event, Simulator
from .errors import SimError

__all__ = ["Store", "PriorityStore"]


class StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.sim)
        self.item = item


class StoreGet(Event):
    __slots__ = ()


class Store:
    """A FIFO channel with optional capacity (None = unbounded).

    ``put(item)`` and ``get()`` return events; processes yield them.  Items
    are delivered in insertion order; waiting getters are served in request
    order (FIFO fairness), which keeps the simulation deterministic.
    """

    def __init__(self, sim: Simulator, capacity: Optional[float] = None, name: str = ""):
        if capacity is not None and capacity <= 0:
            raise SimError(f"store capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque[Any] = deque()
        self._putters: deque[StorePut] = deque()
        self._getters: deque[StoreGet] = deque()
        #: number of items ever put (for instrumentation)
        self.n_put = 0
        self.n_got = 0
        # Named stores on a metered simulator publish their depth as a
        # callback gauge (live value polled only at scrape time; put/get
        # just poke the high-water mark).
        self._m_depth = None
        m = sim.metrics
        if m is not None and name:
            from ..metrics.registry import derive_owner

            self._m_depth = m.gauge(
                "repro_queue_depth",
                fn=lambda t: float(len(self)),
                owner=derive_owner(name),
                queue=name,
            )

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self.items) >= self.capacity

    def _trace_depth(self) -> None:
        """Sample the queue depth into the tracer (named stores only)."""
        tracer = self.sim.tracer
        if tracer is not None and self.name:
            tracer.counter(self.sim.now, self.name, "depth", float(len(self)))

    def put(self, item: Any) -> Event:
        """Event that fires when ``item`` has been accepted into the store.

        When the put is accepted immediately *and* the caller runs as the
        last event of the current instant (``sim.at_tail()``), the
        acceptance event is returned already processed instead of taking a
        queue round-trip.  Order-preserving by construction: unfused, the
        put event would be the very next event processed (it is posted at
        the tail), so eliding it — and letting any waiting getters' grant
        events post before the caller continues — reproduces the exact
        event order of the queued path.
        """
        if not self._putters and not self.is_full and self.sim.at_tail():
            ev = StorePut(self, item)
            ev._ok = True
            ev._value = None
            ev.callbacks = None
            self.items.append(item)
            self.n_put += 1
            if self._getters:
                self._settle()
        else:
            ev = StorePut(self, item)
            self._putters.append(ev)
            self._settle()
        self._trace_depth()
        if self._m_depth is not None:
            self._m_depth.poke(float(len(self)))
        return ev

    def get(self) -> Event:
        """Event that fires with the next item.

        Symmetric tail fast path to :meth:`put`: with an item available and
        no getters queued ahead, the grant event would be processed
        immediately next, so it is returned pre-processed and any blocked
        putter is admitted into the freed slot first (its grant posts before
        the caller continues, exactly as in the queued path).
        """
        if self.items and not self._getters and self.sim.at_tail():
            ev = StoreGet(self.sim)
            ev._ok = True
            ev._value = self.items.popleft()
            ev.callbacks = None
            self.n_got += 1
            if self._putters:
                self._settle()
        else:
            ev = StoreGet(self.sim)
            self._getters.append(ev)
            self._settle()
        self._trace_depth()
        return ev

    def try_get(self) -> Any:
        """Non-blocking get: pop an item if available, else None.

        Only sound when no getters are queued (checked).
        """
        if self._getters:
            raise SimError("try_get with blocked getters would reorder delivery")
        if self.items:
            self.n_got += 1
            return self.items.popleft()
        return None

    def _settle(self) -> None:
        """Move items from putters to the buffer to getters, FIFO."""
        progress = True
        while progress:
            progress = False
            # Accept puts while there is capacity.
            while self._putters and not self.is_full:
                put_ev = self._putters.popleft()
                self.items.append(put_ev.item)
                self.n_put += 1
                put_ev.succeed()
                progress = True
            # Serve getters while items exist.
            while self._getters and self.items:
                get_ev = self._getters.popleft()
                self.n_got += 1
                get_ev.succeed(self.items.popleft())
                progress = True


class PriorityStore(Store):
    """A store that delivers the smallest item first.

    Items must be comparable; ties are broken by insertion order.
    """

    def __init__(self, sim: Simulator, capacity: Optional[float] = None, name: str = ""):
        super().__init__(sim, capacity, name)
        self._insert_seq = 0
        self._heap: list[tuple[Any, int, Any]] = []

    # The tail fast paths in Store.put/get operate on ``items`` directly,
    # which would bypass the heap; priority stores always take the queued
    # path (they are far off the hot loops).
    def put(self, item: Any) -> Event:
        ev = StorePut(self, item)
        self._putters.append(ev)
        self._settle()
        self._trace_depth()
        if self._m_depth is not None:
            self._m_depth.poke(float(len(self)))
        return ev

    def get(self) -> Event:
        ev = StoreGet(self.sim)
        self._getters.append(ev)
        self._settle()
        self._trace_depth()
        return ev

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._heap) >= self.capacity

    def _settle(self) -> None:
        import heapq

        progress = True
        while progress:
            progress = False
            while self._putters and not self.is_full:
                put_ev = self._putters.popleft()
                self._insert_seq += 1
                heapq.heappush(self._heap, (put_ev.item, self._insert_seq, put_ev.item))
                self.n_put += 1
                put_ev.succeed()
                progress = True
            while self._getters and self._heap:
                get_ev = self._getters.popleft()
                _key, _seq, item = heapq.heappop(self._heap)
                self.n_got += 1
                get_ev.succeed(item)
                progress = True
