"""Deterministic discrete-event simulation kernel (the emulator's event queue)."""

from .core import AllOf, AnyOf, Event, Simulator, Timeout
from .errors import Interrupt, SimError, StopSimulation
from .monitor import BusyTracker, ProgressCounter
from .process import Process
from .resource import Resource
from .store import PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Simulator",
    "Timeout",
    "Interrupt",
    "SimError",
    "StopSimulation",
    "BusyTracker",
    "ProgressCounter",
    "Process",
    "Resource",
    "PriorityStore",
    "Store",
]
