"""repro — reproduction of *Distributed Computing with Load-Managed Active
Storage* (Wickremesinghe, Chase, Vitter; HPDC 2002).

The package is organised like the paper's system stack:

* :mod:`repro.sim` — deterministic discrete-event kernel (the emulator's
  event queue, §5);
* :mod:`repro.emulator` — timing-accurate emulation of hosts, ASUs, disks,
  and the interconnect (§5, Figure 8);
* :mod:`repro.bte` / :mod:`repro.containers` — TPIE's Block Transfer Engines
  and the stream/set/array/packet containers (§3.1–3.2);
* :mod:`repro.functors` — bounded-cost streaming primitives and dataflow
  composition (§3.1);
* :mod:`repro.tpie` — I/O-efficient external sort, k-way merge, priority
  queue (§2.1);
* :mod:`repro.core` — **the contribution**: cost bounds, pipeline
  prediction, configuration solving, routing, placement, load management
  (§3.3);
* :mod:`repro.dsmsort` — the configurable distribute/sort/merge sort (§4.3);
* :mod:`repro.apps` — TerraFlow terrain analysis and distributed R-trees
  (§4.1–4.2);
* :mod:`repro.bench` — regenerates Figures 9 and 10 plus ablations (§6).

Quickstart::

    from repro import SystemParams, DSMConfig, DsmSortJob

    params = SystemParams(n_hosts=1, n_asus=16)            # the platform
    config = DSMConfig.for_n(1 << 18, alpha=64, gamma=64)  # the plan
    job = DsmSortJob(params, config, policy="sr")
    result = job.run_pass1()                               # emulate pass 1
    job.run_pass2()
    job.verify()                                           # really sorted
"""

from .containers import Packet, RecordArray, RecordSet, RecordStream
from .core import (
    ConfigSolver,
    DSMConfig,
    LoadManager,
    Placement,
    PlacementSolver,
    predict_pass1,
    predict_speedup,
)
from .dsmsort import DsmSortJob, adaptive_config, dsm_sort_local, run_adaptive
from .emulator import ActivePlatform, SystemParams, TimingMode
from .util import DEFAULT_SCHEMA, RecordSchema, RngRegistry, make_workload

__version__ = "1.0.0"

__all__ = [
    "Packet",
    "RecordArray",
    "RecordSet",
    "RecordStream",
    "ConfigSolver",
    "DSMConfig",
    "LoadManager",
    "Placement",
    "PlacementSolver",
    "predict_pass1",
    "predict_speedup",
    "DsmSortJob",
    "adaptive_config",
    "dsm_sort_local",
    "run_adaptive",
    "ActivePlatform",
    "SystemParams",
    "TimingMode",
    "DEFAULT_SCHEMA",
    "RecordSchema",
    "RngRegistry",
    "make_workload",
    "__version__",
]
