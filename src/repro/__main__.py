"""Command-line entry point: regenerate the paper's figures and ablations.

Usage::

    python -m repro fig9   [--n LOG2] [--c RATIO]
    python -m repro fig10  [--n LOG2]
    python -m repro sweep-c | sweep-routing | sweep-gamma
    python -m repro trace  [--n LOG2] [--seed S] [--out trace.json]
    python -m repro all    [--n LOG2]
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Distributed Computing with "
        "Load-Managed Active Storage' (HPDC 2002).",
    )
    parser.add_argument(
        "target",
        choices=[
            "fig9", "fig10", "sweep-c", "sweep-routing", "sweep-gamma",
            "trace", "all",
        ],
        help="which experiment to run",
    )
    parser.add_argument(
        "--n", type=int, default=17, metavar="LOG2",
        help="log2 of the record count (default 17)",
    )
    parser.add_argument(
        "--c", type=float, default=8.0,
        help="host:ASU CPU power ratio for fig9 (default 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload/routing seed for the traced run (default 0)",
    )
    parser.add_argument(
        "--out", default="trace.json", metavar="PATH",
        help="trace: output path for the Chrome trace JSON (default trace.json)",
    )
    args = parser.parse_args(argv)
    n = 1 << args.n

    if args.target == "trace":
        return _run_trace(n, args.seed, args.out)

    from .bench import (
        run_figure9,
        run_figure10,
        sweep_c,
        sweep_gamma_split,
        sweep_routing,
    )

    def fig9():
        print(run_figure9(n_records=n, c=args.c).render())

    def fig10():
        print(run_figure10(n_records=n).render())

    runners = {
        "fig9": fig9,
        "fig10": fig10,
        "sweep-c": lambda: print(sweep_c(n_records=min(n, 1 << 17)).render()),
        "sweep-routing": lambda: print(sweep_routing(n_records=min(n, 1 << 17)).render()),
        "sweep-gamma": lambda: print(sweep_gamma_split(n_records=min(n, 1 << 16)).render()),
    }
    if args.target == "all":
        for name, fn in runners.items():
            print(f"=== {name} ===")
            fn()
    else:
        runners[args.target]()
    return 0


def _run_trace(n: int, seed: int, out: str) -> int:
    """Run a traced DSM-Sort (both passes) and export the observability data.

    A small 4-ASU / 2-host platform keeps the traced run fast; the trace is
    deterministic for a given (n, seed), so two identical invocations write
    byte-identical JSON.
    """
    from .bench import fig10_params
    from .core.config import ConfigSolver
    from .dsmsort import DsmSortJob
    from .trace import ProfileReport, Tracer, write_chrome_trace

    params = fig10_params(n_asus=4, n_hosts=2)
    config = ConfigSolver(params).config_for_alpha(n, 16)
    tracer = Tracer()
    job = DsmSortJob(params, config, policy="sr", seed=seed, tracer=tracer)
    r1 = job.run_pass1()
    r2 = job.run_pass2()
    job.verify()
    write_chrome_trace(tracer, out)
    makespan = r1.makespan + r2.makespan
    print(f"sorted {n} records in {makespan:.3f}s "
          f"(pass1 {r1.makespan:.3f}s, pass2 {r2.makespan:.3f}s)")
    print(f"wrote {tracer.n_events()} trace events to {out}")
    print()
    print(ProfileReport.from_tracer(tracer, makespan=makespan).render())
    return 0


if __name__ == "__main__":
    sys.exit(main())
