"""Command-line entry point: regenerate the paper's figures and ablations.

Usage::

    python -m repro fig9   [--n LOG2] [--c RATIO]
    python -m repro fig10  [--n LOG2]
    python -m repro sweep-c | sweep-routing | sweep-gamma
    python -m repro all    [--n LOG2]
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Distributed Computing with "
        "Load-Managed Active Storage' (HPDC 2002).",
    )
    parser.add_argument(
        "target",
        choices=["fig9", "fig10", "sweep-c", "sweep-routing", "sweep-gamma", "all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--n", type=int, default=17, metavar="LOG2",
        help="log2 of the record count (default 17)",
    )
    parser.add_argument(
        "--c", type=float, default=8.0,
        help="host:ASU CPU power ratio for fig9 (default 8)",
    )
    args = parser.parse_args(argv)
    n = 1 << args.n

    from .bench import (
        run_figure9,
        run_figure10,
        sweep_c,
        sweep_gamma_split,
        sweep_routing,
    )

    def fig9():
        print(run_figure9(n_records=n, c=args.c).render())

    def fig10():
        print(run_figure10(n_records=n).render())

    runners = {
        "fig9": fig9,
        "fig10": fig10,
        "sweep-c": lambda: print(sweep_c(n_records=min(n, 1 << 17)).render()),
        "sweep-routing": lambda: print(sweep_routing(n_records=min(n, 1 << 17)).render()),
        "sweep-gamma": lambda: print(sweep_gamma_split(n_records=min(n, 1 << 16)).render()),
    }
    if args.target == "all":
        for name, fn in runners.items():
            print(f"=== {name} ===")
            fn()
    else:
        runners[args.target]()
    return 0


if __name__ == "__main__":
    sys.exit(main())
