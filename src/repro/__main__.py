"""Command-line entry point: regenerate the paper's figures and ablations.

Usage::

    python -m repro fig9    [--n LOG2] [--c RATIO]
    python -m repro fig10   [--n LOG2]
    python -m repro sweep-c | sweep-routing | sweep-gamma
    python -m repro trace   [--n LOG2] [--seed S] [--out trace.json]
    python -m repro metrics [--n LOG2] [--seed S] [--interval DT]
                            [--out metrics.json] [--prom metrics.prom]
    python -m repro chaos   [--n LOG2] [--seeds K] [--seed0 S] [--apps LIST]
                            [--amp-bound X] [--out chaos_report.json]
                            [--list-apps]
    python -m repro partition [--n LOG2] [--out partition_report.json]
    python -m repro recover [--n LOG2] [--seeds K] [--seed S]
                            [--out recover_report.json]
    python -m repro serve   [--jobs N] [--seed S] [--policies LIST]
                            [--loads LIST] [--out serve_report.json]
    python -m repro critpath [--n LOG2] [--seed S] [--out blame.json]
                            [--folded stacks.folded] [--what-if disk=2.0]
                            [--validate] [--serve]
    python -m repro all     [--n LOG2]
"""

from __future__ import annotations

import argparse
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Distributed Computing with "
        "Load-Managed Active Storage' (HPDC 2002).",
    )
    parser.add_argument(
        "target",
        choices=[
            "fig9", "fig10", "sweep-c", "sweep-routing", "sweep-gamma",
            "trace", "metrics", "chaos", "recover", "replicate", "partition",
            "serve", "critpath", "all",
        ],
        help="which experiment to run",
    )
    parser.add_argument(
        "--n", type=int, default=17, metavar="LOG2",
        help="log2 of the record count (default 17)",
    )
    parser.add_argument(
        "--c", type=float, default=8.0,
        help="host:ASU CPU power ratio for fig9 (default 8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload/routing seed for the traced run (default 0)",
    )
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output path: trace writes Chrome trace JSON (default "
        "trace.json), metrics writes the metrics export (default metrics.json)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.01, metavar="DT",
        help="metrics: scrape interval in virtual seconds (default 0.01)",
    )
    parser.add_argument(
        "--prom", default=None, metavar="PATH",
        help="metrics: also write a Prometheus text exposition file",
    )
    parser.add_argument(
        "--seeds", type=int, default=12, metavar="K",
        help="chaos: number of fault-schedule seeds to sweep (default 12)",
    )
    parser.add_argument(
        "--seed0", type=int, default=0,
        help="chaos: first fault-schedule seed (default 0)",
    )
    parser.add_argument(
        "--apps", default="dsmsort,filterscan", metavar="LIST",
        help="chaos: comma-separated app list (default dsmsort,filterscan)",
    )
    parser.add_argument(
        "--amp-bound", type=float, default=3.5, metavar="X",
        help="chaos: max allowed retry amplification (default 3.5)",
    )
    parser.add_argument(
        "--no-negative-control", action="store_true",
        help="chaos: skip the retries-disabled loss demonstration",
    )
    parser.add_argument(
        "--list-apps", action="store_true",
        help="chaos: list the registered chaos apps and exit",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="W",
        help="chaos/recover: worker processes for the seed sweep (default "
        "REPRO_BENCH_WORKERS or the CPU count; results are merged in seed "
        "order, so the report is identical for any worker count)",
    )
    parser.add_argument(
        "--jobs", type=int, default=80, metavar="N",
        help="serve: submissions per offered-load level (default 80)",
    )
    parser.add_argument(
        "--policies", default="fifo,fair,priority", metavar="LIST",
        help="serve: comma-separated queue policies (default fifo,fair,priority)",
    )
    parser.add_argument(
        "--loads", default="0.5,1.2,3.0", metavar="LIST",
        help="serve: offered load as multiples of fleet capacity "
        "(default 0.5,1.2,3.0)",
    )
    parser.add_argument(
        "--folded", default=None, metavar="PATH",
        help="critpath: also write the folded-stack flamegraph input file",
    )
    parser.add_argument(
        "--what-if", default=None, metavar="SPEC", dest="what_if",
        help="critpath: comma-separated bucket=factor speedups to replay "
        "through the graph (e.g. disk=2.0)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="critpath: re-run with scaled params and report the what-if "
        "prediction error (disk/cpu buckets only)",
    )
    parser.add_argument(
        "--serve", action="store_true",
        help="critpath: profile a multi-tenant scheduler cell (with SLO "
        "burn-rate alerts) instead of a single sort",
    )
    args = parser.parse_args(argv)
    n = 1 << args.n

    if args.target == "chaos":
        return _run_chaos(args, n)
    if args.target == "recover":
        return _run_recover(args, n)
    if args.target == "replicate":
        return _run_replicate(args, n)
    if args.target == "partition":
        return _run_partition(args, n)
    if args.target == "serve":
        return _run_serve(args)
    if args.target == "critpath":
        return _run_critpath(args, n)
    if args.target == "trace":
        return _run_trace(n, args.seed, args.out or "trace.json")
    if args.target == "metrics":
        return _run_metrics(
            n, args.seed, args.interval, args.out or "metrics.json", args.prom
        )

    from .bench import (
        run_figure9,
        run_figure10,
        sweep_c,
        sweep_gamma_split,
        sweep_routing,
    )

    def fig9():
        print(run_figure9(n_records=n, c=args.c).render())

    def fig10():
        print(run_figure10(n_records=n).render())

    runners = {
        "fig9": fig9,
        "fig10": fig10,
        "sweep-c": lambda: print(sweep_c(n_records=min(n, 1 << 17)).render()),
        "sweep-routing": lambda: print(sweep_routing(n_records=min(n, 1 << 17)).render()),
        "sweep-gamma": lambda: print(sweep_gamma_split(n_records=min(n, 1 << 16)).render()),
    }
    if args.target == "all":
        for name, fn in runners.items():
            print(f"=== {name} ===")
            fn()
    else:
        runners[args.target]()
    return 0


def _run_chaos(args, n: int) -> int:
    """Chaos soak: seeded random fault schedules vs. end-to-end invariants.

    Writes the canonical ChaosReport JSON artifact and exits nonzero if any
    invariant was violated, so CI can gate on it directly.
    """
    from .resilience.chaos import list_chaos_apps, run_chaos

    if args.list_apps:
        for name, summary in list_chaos_apps():
            print(f"{name:12s} {summary}")
        return 0
    apps = tuple(a.strip() for a in args.apps.split(",") if a.strip())
    report = run_chaos(
        seeds=args.seeds,
        apps=apps,
        n_records=n,
        amp_bound=args.amp_bound,
        negative_control=not args.no_negative_control,
        seed0=args.seed0,
        progress=print,
        workers=args.workers,
    )
    out = args.out or "chaos_report.json"
    report.write(out)
    print()
    print(report.render())
    print(f"wrote chaos report to {out}")
    return 0 if report.ok else 1


def _recover_case(task: tuple) -> dict:
    """One supervised kill/resume case — module-level so it pickles.

    Byte-identity against the reference output is checked by SHA-256
    digest, so the (potentially remote) worker never needs the reference
    array itself.
    """
    import hashlib

    from .recovery.checkpoint import RecoverableSort
    from .recovery.supervisor import RestartBudget

    params, cfg, seed, frac, t0, ref_digest = task
    sort = RecoverableSort(params, cfg, seed=seed, policy="sr")
    rep = sort.run_supervised(
        crashes=[frac * t0], budget=RestartBudget(max_restarts=3)
    )
    identical = bool(
        rep.completed
        and hashlib.sha256(sort.output().tobytes()).hexdigest() == ref_digest
    )
    return {
        "crash_frac": frac,
        "crash_at": frac * t0,
        "completed": bool(rep.completed),
        "n_attempts": rep.n_attempts,
        "n_crashes": rep.n_crashes,
        "total_virtual_time": rep.total_virtual_time,
        "manifest_bytes": int(sort.manifest.bytes_logged),
        "byte_identical": identical,
    }


def _run_recover(args, n: int) -> int:
    """Checkpoint/restart demonstration: kill the coordinator, resume, verify.

    Runs one uninterrupted reference sort, then ``--seeds`` supervised runs
    each killed at a different fraction of the reference makespan.  Every
    resumed run must produce output byte-identical to the reference; the
    canonical JSON report is written for CI to gate on.  Exits nonzero if
    any resume diverged.
    """
    import hashlib
    import json

    from .bench.parallel import parallel_map
    from .bench.report import SCHEMA_VERSION, render_table
    from .core.config import DSMConfig
    from .recovery.checkpoint import RecoverableSort
    from .resilience.chaos import chaos_params

    n = min(n, 1 << 14)  # K supervised two-pass sorts; keep the sweep fast
    params = chaos_params()
    cfg = DSMConfig.for_n(n, alpha=8, gamma=16)

    ref = RecoverableSort(params, cfg, seed=args.seed, policy="sr")
    rep0 = ref.run_supervised()
    ref.verify()
    t0 = rep0.total_virtual_time
    out_ref = ref.output()
    digest = hashlib.sha256(out_ref.tobytes()).hexdigest()
    print(f"reference: {n} records in {t0:.4f}s, sha256={digest[:16]}")

    k = max(1, args.seeds)
    tasks = [
        (params, cfg, args.seed, (i + 1) / (k + 1), t0, digest)
        for i in range(k)
    ]
    # Every case is an independent supervised run; fan out across worker
    # processes, merging in kill-fraction order (deterministic report).
    cases = parallel_map(_recover_case, tasks, workers=args.workers)
    rows = []
    for case in cases:
        resume = case["total_virtual_time"] - case["crash_at"]
        rows.append([
            f"{case['crash_frac']:.2f}", f"{case['crash_at']:.4f}",
            case["n_attempts"], f"{case['total_virtual_time']:.4f}",
            f"{resume:.4f}", "yes" if case["byte_identical"] else "NO",
        ])
    print()
    print(render_table(
        ["kill frac", "kill at (s)", "attempts", "total (s)", "resume (s)",
         "identical"],
        rows,
        title=f"coordinator kill sweep, N={n}, T0={t0:.4f}s",
    ))
    ok = all(c["byte_identical"] for c in cases)
    report = {
        "schema_version": SCHEMA_VERSION,
        "n_records": n,
        "seed": args.seed,
        "t0": t0,
        "reference_sha256": digest,
        "cases": cases,
        "ok": ok,
    }
    out = args.out or "recover_report.json"
    with open(out, "w") as fh:
        json.dump(report, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    print(f"{'PASS' if ok else 'FAIL'}: "
          f"{sum(c['byte_identical'] for c in cases)}/{len(cases)} resumes "
          f"byte-identical -> {out}")
    return 0 if ok else 1


_REPLICATE_HB = dict(heartbeat_interval=0.002, heartbeat_timeout=0.008)


def _replicate_case(task: tuple) -> dict:
    """One kill case of the replication sweep — module-level so it pickles.

    Runs a replicated (or r=1 baseline) sort with one ASU killed at a fixed
    instant and checks the end-to-end contract: the job completes, the
    output is byte-identical to the uninterrupted reference, and with r >= 2
    recovery is pure promotion — zero fragment replay AND zero run
    re-emission.
    """
    import hashlib

    from .core.config import DSMConfig  # noqa: F401  (unpickled params use it)
    from .dsmsort.runtime import DsmSortJob
    from .faults.injector import FaultPlan, crash_asu
    from .replica import ReplicationConfig

    params, cfg, seed, r, asu, frac, t_kill, ref_digest = task
    job = DsmSortJob(
        params, cfg, policy="sr", seed=seed,
        faults=FaultPlan([crash_asu(t_kill, asu)]),
        replication=ReplicationConfig(r=r) if r > 1 else ReplicationConfig(r=1),
        **_REPLICATE_HB,
    )
    r1 = job.run_pass1()
    job.run_pass2()
    job.verify()
    digest = hashlib.sha256(job.collected_output().tobytes()).hexdigest()
    zero_replay = r1.n_replayed_frags == 0 and r1.n_reemitted_runs == 0
    ok = bool(
        r1.completed
        and digest == ref_digest
        and (r < 2 or zero_replay)
    )
    return {
        "r": r,
        "asu": asu,
        "kill_frac": frac,
        "kill_at": t_kill,
        "completed": bool(r1.completed),
        "makespan": r1.makespan,
        "n_replayed_frags": int(r1.n_replayed_frags),
        "n_reemitted_runs": int(r1.n_reemitted_runs),
        "n_promoted_runs": int(r1.n_promoted_runs),
        "n_repaired_copies": int(r1.n_repaired_copies),
        "byte_identical": bool(digest == ref_digest),
        "ok": ok,
    }


def _run_replicate(args, n: int) -> int:
    """Replication kill sweep: every ASU, several instants, r in {1,2,3}.

    One uninterrupted reference fixes the expected output bytes (identical
    for every r — replication changes placement, never content).  Each case
    kills one ASU at one fraction of the fault-free makespan; r >= 2 cases
    must complete with zero fragment replay and zero run re-emission
    (promotion-based takeover), and every case must reproduce the reference
    bytes.  The canonical JSON report is written for CI to gate on.
    """
    import hashlib
    import json

    from .bench.parallel import parallel_map
    from .bench.report import SCHEMA_VERSION, render_table
    from .core.config import DSMConfig
    from .dsmsort.runtime import DsmSortJob
    from .faults.injector import FaultPlan
    from .replica import ReplicationConfig
    from .resilience.chaos import chaos_params

    n = min(n, 1 << 14)  # many two-pass sorts; keep the sweep fast
    params = chaos_params()
    cfg = DSMConfig.for_n(n, alpha=8, gamma=16)
    r_values = (1, 2, 3)

    # Fault-free references: one per r for the makespan overhead baseline;
    # the output digest is shared (content is placement-independent).
    t0 = {}
    digest = None
    for r in r_values:
        job = DsmSortJob(
            params, cfg, policy="sr", seed=args.seed,
            faults=FaultPlan([]), replication=ReplicationConfig(r=r),
            **_REPLICATE_HB,
        )
        res = job.run_pass1()
        job.run_pass2()
        job.verify()
        t0[r] = res.makespan
        d = hashlib.sha256(job.collected_output().tobytes()).hexdigest()
        if digest is None:
            digest = d
        elif d != digest:
            print(f"FAIL: fault-free r={r} output diverged from r=1")
            return 1
    print(f"reference: {n} records, sha256={digest[:16]}, "
          + ", ".join(f"t0[r={r}]={t0[r]:.4f}s" for r in r_values))

    k = max(1, args.seeds)
    fracs = [(i + 1) / (k + 1) for i in range(k)]
    tasks = [
        (params, cfg, args.seed, r, asu, frac, frac * t0[r], digest)
        for r in r_values
        for asu in range(params.n_asus)
        for frac in fracs
    ]
    cases = parallel_map(_replicate_case, tasks, workers=args.workers)

    rows = []
    for r in r_values:
        sub = [c for c in cases if c["r"] == r]
        overhead = [c["makespan"] - t0[r] for c in sub]
        rows.append([
            r, len(sub),
            sum(c["n_replayed_frags"] for c in sub),
            sum(c["n_reemitted_runs"] for c in sub),
            sum(c["n_promoted_runs"] for c in sub),
            f"{sum(overhead) / len(sub):.4f}",
            "yes" if all(c["byte_identical"] for c in sub) else "NO",
            "yes" if all(c["ok"] for c in sub) else "NO",
        ])
    print()
    print(render_table(
        ["r", "cases", "replayed", "reemitted", "promoted",
         "mean recovery (s)", "identical", "ok"],
        rows,
        title=f"ASU kill sweep, N={n}, {params.n_asus} ASUs x "
              f"{len(fracs)} instants",
    ))
    ok = all(c["ok"] for c in cases)
    report = {
        "schema_version": SCHEMA_VERSION,
        "n_records": n,
        "seed": args.seed,
        "t0": {str(r): t0[r] for r in r_values},
        "reference_sha256": digest,
        "cases": cases,
        "ok": ok,
    }
    out = args.out or "replicate_report.json"
    with open(out, "w") as fh:
        json.dump(report, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    print(f"{'PASS' if ok else 'FAIL'}: {sum(c['ok'] for c in cases)}/"
          f"{len(cases)} kill cases clean -> {out}")
    return 0 if ok else 1


def _partition_case(task: tuple) -> dict:
    """One grid point of the partition sweep — module-level so it pickles.

    Runs the replicated sort (r=2, network-borne detection) under one
    seeded cut and checks the split-brain-safety contract: the job
    completes, the two-pass output verifies as a sorted permutation, and
    its bytes are identical to the uninterrupted reference — no double
    writes crossed an epoch fence, no records died with the cut.
    """
    import hashlib

    from .core.config import DSMConfig  # noqa: F401  (unpickled params use it)
    from .dsmsort.runtime import DsmSortJob
    from .faults.injector import FaultPlan, crash_asu, crash_host, partition
    from .replica import ReplicationConfig
    from .resilience.chaos import _policy_for

    (params, cfg, cut_asus, cut_hosts, dur_frac, asymmetry, kill,
     t0, ref_digest) = task
    start = 0.25 * t0
    duration = dur_frac * t0
    faults = [partition(start, cut_asus, hosts=cut_hosts,
                        duration=duration, asymmetry=asymmetry)]
    if kill:
        t_kill = start + 0.4 * duration
        if cut_asus:
            faults.append(crash_asu(t_kill, cut_asus[0]))
        else:
            faults.append(crash_host(t_kill, cut_hosts[0]))
    job = DsmSortJob(
        params, cfg, policy="sr", seed=0, faults=FaultPlan(faults),
        transport="reliable", retry_policy=_policy_for(t0),
        replication=ReplicationConfig(r=2),
        heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10,
        detection_mode="network", probe_timeout=t0 / 10,
    )
    r1 = job.run_pass1(deadline=20.0 * t0)
    sorted_ok = False
    digest = None
    if r1.completed:
        job.run_pass2()
        try:
            job.verify()
            sorted_ok = True
        except Exception:
            sorted_ok = False
        digest = hashlib.sha256(job.collected_output().tobytes()).hexdigest()
    identical = bool(sorted_ok and digest == ref_digest)
    cut = [f"asu{d}" for d in cut_asus] + [f"host{h}" for h in cut_hosts]
    return {
        "cut": ",".join(cut),
        "asymmetry": asymmetry,
        "duration_frac": dur_frac,
        "killed_in_cut": bool(kill),
        "completed": bool(r1.completed),
        "makespan": r1.makespan,
        "n_epoch_rejections": int(r1.n_epoch_rejections),
        "n_readmitted": int(r1.n_readmitted),
        "n_reconciled_runs": int(r1.n_reconciled_runs),
        "n_divergent_copies": int(r1.n_divergent_copies),
        "n_dup_frags_dropped": int(r1.n_dup_frags_dropped),
        "n_takeover_blocks": int(r1.n_takeover_blocks),
        "view_epoch": int(r1.view_epoch),
        "byte_identical": identical,
        "ok": bool(r1.completed and sorted_ok and identical),
    }


def _run_partition(args, n: int) -> int:
    """Partition sweep: cut group x window length x asymmetry x mid-cut kill.

    Every grid point runs the replicated sort (r=2) with network-borne
    failure detection under one cut and must reproduce the fault-free
    reference bytes — the end-to-end proof that epoch fencing makes
    takeover split-brain safe (docs/PARTITIONS.md).  The sweep additionally
    requires that at least one asymmetric ("out") scenario rejected
    stale-epoch writes: the fences must be *observed* working, not just
    never tested.  Canonical JSON report for CI; exits nonzero on any
    violation.
    """
    import hashlib
    import json

    from .bench.parallel import parallel_map
    from .bench.report import SCHEMA_VERSION, render_table
    from .core.config import DSMConfig
    from .dsmsort.runtime import DsmSortJob
    from .faults.injector import FaultPlan
    from .replica import ReplicationConfig
    from .resilience.chaos import _dsmsort_t0, _policy_for, chaos_params

    n = min(n, 1 << 13)  # 36 replicated two-pass sorts; keep the sweep fast
    params = chaos_params()
    cfg = DSMConfig.for_n(n, alpha=8, gamma=16)
    t0 = _dsmsort_t0(n)

    ref = DsmSortJob(
        params, cfg, policy="sr", seed=args.seed, faults=FaultPlan([]),
        transport="reliable",
        retry_policy=_policy_for(t0), replication=ReplicationConfig(r=2),
        heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10,
        detection_mode="network", probe_timeout=t0 / 10,
    )
    ref.run_pass1()
    ref.run_pass2()
    ref.verify()
    digest = hashlib.sha256(ref.collected_output().tobytes()).hexdigest()
    print(f"reference: {n} records, T0={t0:.4f}s, sha256={digest[:16]}")

    cuts = [((1,), ()), ((1, 2), ()), ((), (1,))]
    dur_fracs = [0.08, 0.5]
    asymmetries = ["both", "out", "in"]
    tasks = [
        (params, cfg, cut_asus, cut_hosts, dur_frac, asym, kill, t0, digest)
        for cut_asus, cut_hosts in cuts
        for dur_frac in dur_fracs
        for asym in asymmetries
        for kill in (False, True)
    ]
    cases = parallel_map(_partition_case, tasks, workers=args.workers)

    rows = [
        [
            c["cut"], c["asymmetry"], f"{c['duration_frac']:.2f}",
            "yes" if c["killed_in_cut"] else "no",
            c["n_epoch_rejections"], c["n_readmitted"],
            c["n_reconciled_runs"], c["view_epoch"],
            "yes" if c["byte_identical"] else "NO",
            "ok" if c["ok"] else "FAIL",
        ]
        for c in cases
    ]
    print()
    print(render_table(
        ["cut", "mode", "dur/T0", "kill", "rejects", "readmits",
         "reconciled", "epoch", "identical", "result"],
        rows,
        title=f"partition sweep, N={n}, r=2, {len(cases)} cuts",
    ))
    # the fences must be observed rejecting stale writes somewhere in the
    # asymmetric half of the grid, or the no-split-brain claim is vacuous
    fencing_exercised = any(
        c["n_epoch_rejections"] > 0
        for c in cases
        if c["asymmetry"] in ("out", "both")
    )
    ok = all(c["ok"] for c in cases) and fencing_exercised
    report = {
        "schema_version": SCHEMA_VERSION,
        "n_records": n,
        "seed": args.seed,
        "t0": t0,
        "reference_sha256": digest,
        "fencing_exercised": fencing_exercised,
        "cases": cases,
        "ok": ok,
    }
    out = args.out or "partition_report.json"
    with open(out, "w") as fh:
        json.dump(report, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    print(f"{'PASS' if ok else 'FAIL'}: {sum(c['ok'] for c in cases)}/"
          f"{len(cases)} cuts clean, "
          f"fencing {'exercised' if fencing_exercised else 'NEVER FIRED'} "
          f"-> {out}")
    return 0 if ok else 1


def _run_serve(args) -> int:
    """Multi-tenant serving sweep: queue policies across rising offered load.

    Runs the default 3-tenant, mixed-app scenario under each policy at each
    offered-load factor and writes the canonical ServeReport JSON (same
    seed -> byte-identical file).  Exits nonzero if any admitted job
    vanished (every submission must end rejected, failed, or done).
    """
    from .sched import run_serve

    policies = tuple(p for p in args.policies.split(",") if p)
    try:
        loads = tuple(float(x) for x in args.loads.split(",") if x)
    except ValueError:
        print(f"error: --loads must be comma-separated numbers, got "
              f"{args.loads!r}", file=sys.stderr)
        return 2
    try:
        report = run_serve(
            policies=policies, load_factors=loads,
            n_jobs=args.jobs, seed=args.seed,
        )
    except ValueError as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    print(report.render())
    ok = all(
        c["n_jobs"] == c["n_rejected"] + c["n_failed"] + c["n_completed"]
        for c in report.cells
    )
    out = args.out or "serve_report.json"
    report.write(out)
    accounted = "all jobs accounted for" if ok else "JOBS LOST"
    print(f"{'PASS' if ok else 'FAIL'}: {len(report.cells)} cells, "
          f"{accounted} -> {out}")
    return 0 if ok else 1


def _run_critpath(args, n: int) -> int:
    """Causal critical-path profile: blame buckets, flamegraph, timeline.

    Sort mode traces a two-pass DSM-Sort on a small Figure-9 cell; serve
    mode profiles one multi-tenant scheduler cell with SLO burn-rate
    monitoring attached.  The blame JSON and folded-stack outputs are
    byte-deterministic for a given (n, seed).
    """
    from .obs import folded_stacks, render_timeline, run_critpath, run_critpath_serve

    what_if = None
    if args.what_if:
        what_if = {}
        try:
            for part in args.what_if.split(","):
                bucket, factor = part.split("=")
                what_if[bucket.strip()] = float(factor)
        except ValueError:
            print(f"error: --what-if expects bucket=factor[,...], got "
                  f"{args.what_if!r}", file=sys.stderr)
            return 2
    if args.validate and not what_if:
        what_if = {"disk": 2.0}

    if args.serve:
        report, graph, _serve = run_critpath_serve(
            n_jobs=args.jobs, seed=args.seed
        )
    else:
        n = min(n, 1 << 14)  # a traced cell, not a benchmark sweep
        report, graph = run_critpath(
            n, seed=args.seed, what_if=what_if, validate=args.validate
        )
    print(report.render())
    print(render_timeline(graph))
    out = args.out or "critpath_blame.json"
    report.write(out)
    print(f"wrote blame vector to {out}")
    if args.folded:
        with open(args.folded, "w") as fh:
            fh.write(folded_stacks(graph))
        print(f"wrote folded stacks to {args.folded}")
    return 0


def _run_trace(n: int, seed: int, out: str) -> int:
    """Run a traced DSM-Sort (both passes) and export the observability data.

    A small 4-ASU / 2-host platform keeps the traced run fast; the trace is
    deterministic for a given (n, seed), so two identical invocations write
    byte-identical JSON.
    """
    from .bench import fig10_params
    from .core.config import ConfigSolver
    from .dsmsort import DsmSortJob
    from .trace import ProfileReport, Tracer, write_chrome_trace

    params = fig10_params(n_asus=4, n_hosts=2)
    config = ConfigSolver(params).config_for_alpha(n, 16)
    tracer = Tracer()
    job = DsmSortJob(params, config, policy="sr", seed=seed, tracer=tracer)
    r1 = job.run_pass1()
    r2 = job.run_pass2()
    job.verify()
    write_chrome_trace(tracer, out)
    makespan = r1.makespan + r2.makespan
    print(f"sorted {n} records in {makespan:.3f}s "
          f"(pass1 {r1.makespan:.3f}s, pass2 {r2.makespan:.3f}s)")
    print(f"wrote {tracer.n_events()} trace events to {out}")
    print()
    print(ProfileReport.from_tracer(tracer, makespan=makespan).render())
    return 0


def _run_metrics(n: int, seed: int, interval: float, out: str, prom) -> int:
    """Run a metered DSM-Sort (both passes) and summarise the registry.

    Same platform/workload as ``trace`` — a 4-ASU / 2-host skewed sort —
    but with the metrics registry attached: every queue depth, device
    utilization, and stage latency lands in instruments, scraped each
    ``interval`` virtual seconds.  Deterministic: same (n, seed, interval)
    writes a byte-identical metrics JSON.
    """
    import math

    from .bench import fig10_params
    from .bench.report import render_table
    from .core.config import ConfigSolver
    from .dsmsort import DsmSortJob
    from .metrics import MetricsRegistry, metrics_json, prometheus_text

    params = fig10_params(n_asus=4, n_hosts=2)
    config = ConfigSolver(params).config_for_alpha(n, 16)
    registry = MetricsRegistry()
    job = DsmSortJob(
        params, config, policy="sr", seed=seed,
        metrics=registry, scrape_interval=interval,
        workload="half_uniform_half_exponential",
    )
    r1 = job.run_pass1()
    r2 = job.run_pass2()
    job.verify()
    makespan = r1.makespan + r2.makespan
    collector = registry.collector
    with open(out, "w") as fh:
        fh.write(metrics_json(registry, collector))
        fh.write("\n")
    print(f"sorted {n} records in {makespan:.3f}s "
          f"(pass1 {r1.makespan:.3f}s, pass2 {r2.makespan:.3f}s)")
    print(f"{len(registry)} instruments, {collector.n_samples()} samples "
          f"at dt={collector.interval}s -> {out}")
    if prom:
        with open(prom, "w") as fh:
            fh.write(prometheus_text(registry, t=r2.makespan))
        print(f"wrote Prometheus text exposition to {prom}")

    # -- top queues by peak depth -----------------------------------------
    queues = [
        (inst.hwm, inst.labels.get("queue", inst.key))
        for inst in registry.instruments()
        if inst.kind == "gauge" and inst.name == "repro_queue_depth"
    ]
    queues.sort(key=lambda x: (-x[0], x[1]))
    print()
    print(render_table(
        ["queue", "peak depth"],
        [[name, f"{hwm:.0f}"] for hwm, name in queues[:8]],
        title="top queues by peak depth",
    ))

    # -- per-device mean utilization (over the scraped series) ------------
    def series_mean(key: str) -> float:
        pts = collector.series.get(key, [])
        vals = [v for _t, v in pts if not math.isnan(v)]
        return sum(vals) / len(vals) if vals else 0.0

    rows = []
    for inst in registry.instruments():
        if inst.name == "repro_cpu_utilization":
            rows.append([inst.labels["node"], "cpu", f"{series_mean(inst.key):.3f}"])
        elif inst.name == "repro_disk_utilization":
            rows.append([inst.labels["node"], "disk", f"{series_mean(inst.key):.3f}"])
    rows.sort()
    print()
    print(render_table(
        ["device", "kind", "mean util"], rows,
        title="per-device utilization (mean of scraped samples)",
    ))

    # -- per-stage record latency quantiles --------------------------------
    rows = []
    for inst in registry.instruments():
        if inst.kind == "histogram" and inst.name == "repro_stage_record_latency_seconds":
            rows.append([
                inst.labels.get("stage", "?"),
                inst.count,
                f"{inst.quantile(0.50) * 1e6:.2f}",
                f"{inst.quantile(0.95) * 1e6:.2f}",
                f"{inst.quantile(0.99) * 1e6:.2f}",
            ])
    rows.sort()
    print()
    print(render_table(
        ["stage", "records", "p50 (us)", "p95 (us)", "p99 (us)"], rows,
        title="per-stage record latency",
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
