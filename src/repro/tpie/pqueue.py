"""External-memory priority queue for time-forward processing.

TerraFlow's watershed step "uses time-forward processing and relies on
ordering for correctness" (§4.1): a cell processed at time t sends messages
to neighbours processed at later times through a priority queue keyed by
processing time.  For massive grids the queue itself must be external; this
implementation keeps a bounded in-memory insertion heap and spills sorted
runs to a BTE, merging run frontiers on extraction — the standard
buffer-and-merge design of I/O-efficient priority queues.

Entries are (priority, data) pairs of 64-bit integers; ties pop in insertion
order (stability matters for deterministic label propagation).
"""

from __future__ import annotations

import heapq
from typing import Optional

import numpy as np

from ..bte.base import BTE
from ..bte.memory import MemoryBTE
from ..util.records import RecordSchema

__all__ = ["ExternalPriorityQueue"]

#: storage schema for spilled runs: priority + sequence + payload
_ENTRY_DTYPE = np.dtype([("key", "<u8"), ("seq", "<u8"), ("data", "<i8")])
_ENTRY_SCHEMA = RecordSchema(record_size=24, key_dtype="<u8")


class _RunCursor:
    """Buffered frontier over one spilled sorted run."""

    __slots__ = ("bte", "handle", "buf", "pos")

    def __init__(self, bte: BTE, handle, buffer_entries: int):
        self.bte = bte
        self.handle = handle
        self.buf: np.ndarray | None = None
        self.pos = 0
        self.refill(buffer_entries)

    def refill(self, buffer_entries: int) -> None:
        if self.buf is None or self.pos >= self.buf.shape[0]:
            raw = self.bte.read_next(self.handle, buffer_entries)
            if raw.shape[0] == 0:
                self.buf = None
            else:
                self.buf = raw.view(_ENTRY_DTYPE) if raw.dtype != _ENTRY_DTYPE else raw
                self.pos = 0

    @property
    def active(self) -> bool:
        return self.buf is not None

    def head(self) -> tuple[int, int, int]:
        e = self.buf[self.pos]
        return int(e["key"]), int(e["seq"]), int(e["data"])


class ExternalPriorityQueue:
    """Min-priority queue with bounded memory and BTE spill runs."""

    def __init__(
        self,
        bte: Optional[BTE] = None,
        memory_entries: int = 1 << 16,
        buffer_entries: int = 4096,
        name: str = "pq",
    ):
        if memory_entries < 2:
            raise ValueError("memory_entries must be >= 2")
        self.bte = bte if bte is not None else MemoryBTE(_ENTRY_SCHEMA)
        self.memory_entries = int(memory_entries)
        self.buffer_entries = int(min(buffer_entries, memory_entries))
        self.name = name
        #: in-memory insertion buffer: (priority, seq, data)
        self._heap: list[tuple[int, int, int]] = []
        #: run frontiers, heaped by head entry: (key, seq, data, cursor).
        #: ``seq`` is globally unique, so a comparison never reaches the
        #: (non-comparable) cursor element.
        self._run_heads: list[tuple[int, int, int, _RunCursor]] = []
        self._seq = 0
        self._n_spills = 0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def n_spilled_runs(self) -> int:
        return self._n_spills

    # -- insertion ------------------------------------------------------------
    def push(self, priority: int, data: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (int(priority), self._seq, int(data)))
        self._len += 1
        if len(self._heap) >= self.memory_entries:
            self._spill()

    def _spill(self) -> None:
        """Write the insertion heap out as one sorted run."""
        entries = np.empty(len(self._heap), dtype=_ENTRY_DTYPE)
        items = sorted(self._heap)
        for i, (p, s, d) in enumerate(items):
            entries[i] = (p, s, d)
        self._heap.clear()
        run_name = f"{self.name}.run{self._n_spills}"
        self._n_spills += 1
        handle = self.bte.create(run_name, schema=_ENTRY_SCHEMA)
        self.bte.append(handle, entries.view(_ENTRY_SCHEMA.dtype))
        cur = _RunCursor(self.bte, handle, self.buffer_entries)
        if cur.active:
            key, seq, data = cur.head()
            heapq.heappush(self._run_heads, (key, seq, data, cur))

    # -- extraction ----------------------------------------------------------
    def _min_source(self):
        """(entry, source) of the global minimum, or (None, None) if empty.

        Run frontiers are kept in a heap ordered by their head entry, so each
        peek/pop costs O(log runs) instead of a linear scan over every
        spilled run.
        """
        mem = self._heap[0] if self._heap else None
        if self._run_heads:
            rh = self._run_heads[0]
            if mem is None or rh[:3] < mem:
                return rh[:3], rh[3]
        if mem is None:
            return None, None
        return mem, "heap"

    def peek(self) -> Optional[tuple[int, int]]:
        """(priority, data) of the minimum without removing it."""
        best, _src = self._min_source()
        if best is None:
            return None
        return best[0], best[2]

    def pop(self) -> tuple[int, int]:
        """Remove and return the minimum (priority, data)."""
        best, src = self._min_source()
        if best is None:
            raise IndexError("pop from empty priority queue")
        if src == "heap":
            heapq.heappop(self._heap)
        else:
            heapq.heappop(self._run_heads)
            src.pos += 1
            src.refill(self.buffer_entries)
            if src.active:
                key, seq, data = src.head()
                heapq.heappush(self._run_heads, (key, seq, data, src))
        self._len -= 1
        return best[0], best[2]

    def pop_all_at(self, priority: int) -> list[int]:
        """Pop every entry with exactly this priority; returns their data.

        Time-forward processing consumes all messages addressed to the
        current time step at once.
        """
        out = []
        while True:
            head = self.peek()
            if head is None or head[0] != priority:
                return out
            out.append(self.pop()[1])
