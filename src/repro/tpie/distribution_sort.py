"""External distribution sort (the partition-and-merge dual, §2.1 / [35]).

Where the merge sort forms runs then merges, distribution sort recursively
*partitions* the input into key-disjoint buckets using sampled splitters
until a bucket fits in memory, then sorts each bucket in place.  This is the
algorithm family behind "Distribution sort with randomized cycling" [35] that
the paper's SR/RC routing policies come from; DSM-Sort's α-way distribute is
its first level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bte.base import BTE, StreamHandle
from ..functors.distribute import DistributeFunctor, sample_splitters

__all__ = ["distribution_sort", "DistSortStats"]


@dataclass
class DistSortStats:
    n_records: int
    memory_records: int
    fan_out: int
    n_leaf_buckets: int
    max_depth: int


def distribution_sort(
    bte: BTE,
    input_handle: StreamHandle,
    out_name: str,
    memory_records: int = 1 << 16,
    fan_out: int = 8,
    block_records: int = 4096,
    rng: np.random.Generator | None = None,
    tmp_prefix: str = "__dsort_tmp",
) -> tuple[StreamHandle, DistSortStats]:
    """Sort ``input_handle`` into ``out_name`` by recursive distribution."""
    if memory_records < 1:
        raise ValueError("memory_records must be >= 1")
    if fan_out < 2:
        raise ValueError("fan_out must be >= 2")
    rng = rng if rng is not None else np.random.default_rng(0)

    out = bte.create(out_name)
    stats = DistSortStats(
        n_records=bte.length(input_handle),
        memory_records=memory_records,
        fan_out=fan_out,
        n_leaf_buckets=0,
        max_depth=0,
    )
    counter = [0]

    def emit_sorted(handle: StreamHandle) -> None:
        batch = bte.read_all(handle)
        bte.append(out, np.sort(batch, order="key", kind="stable"))
        stats.n_leaf_buckets += 1

    def recurse(handle: StreamHandle, depth: int) -> None:
        stats.max_depth = max(stats.max_depth, depth)
        n = bte.length(handle)
        if n <= memory_records:
            emit_sorted(handle)
            return
        # Sample splitters from the bucket itself (distribution-adaptive, the
        # property that keeps recursion depth logarithmic under skew).
        sample_n = min(n, fan_out * 64)
        sample = bte.read_at(handle, 0, sample_n)["key"].astype(np.uint64)
        splitters = sample_splitters(sample, fan_out, rng)
        # Degenerate sample (all-equal keys): fall back to an in-place sort
        # of the bucket in bounded chunks via the merge path... here the keys
        # are all equal, so the bucket is already sorted by key.
        if np.unique(splitters).shape[0] != splitters.shape[0]:
            emit_sorted(handle)
            return
        dist = DistributeFunctor(splitters)
        children: list[StreamHandle] = []
        names = []
        for i in range(dist.alpha):
            counter[0] += 1
            name = f"{tmp_prefix}.{counter[0]}"
            names.append(name)
            children.append(bte.create(name))
        pos = 0
        while pos < n:
            block = bte.read_at(handle, pos, block_records)
            pos += block.shape[0]
            for child, piece in zip(children, dist.apply(block)):
                if piece.shape[0]:
                    bte.append(child, piece)
        # Progress guard: if every record landed in one child (possible when
        # a sampled splitter equals the bucket maximum), splitting cannot
        # help — the keys are too concentrated; sort the bucket directly.
        if max(bte.length(c) for c in children) == n:
            for name in names:
                bte.delete(name)
            emit_sorted(handle)
            return
        for name, child in zip(names, children):
            recurse(child, depth + 1)
            bte.delete(name)

    recurse(input_handle, 0)
    return out, stats
