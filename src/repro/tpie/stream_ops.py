"""Stream-level operations: scan, map-through, and the distribution sweep.

These are the TPIE primitives (§3.1: "sorting, merging, and distribution")
expressed over :class:`~repro.containers.stream.RecordStream`.  Each real
operation also returns I/O-free summaries so callers can check the work done.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..bte.base import BTE
from ..containers.stream import RecordStream
from ..functors.base import Functor
from ..functors.distribute import DistributeFunctor

__all__ = ["scan_apply", "distribution_sweep", "stream_filter", "count_records"]


def scan_apply(
    src: RecordStream,
    functor: Functor,
    dst: Optional[RecordStream] = None,
    block_records: int = 4096,
    destructive: bool = False,
) -> Optional[RecordStream]:
    """Scan ``src`` in order, applying a 1-in/1-out functor to each block.

    Output records append to ``dst`` (if given).  Returns ``dst``.
    """
    if functor.n_outputs != 1:
        raise ValueError(
            f"scan_apply needs a single-output functor, got {functor.n_outputs}"
        )
    src.rewind()
    for block in src.scan(block_records, destructive=destructive):
        out = functor.apply(block)[0]
        if dst is not None and out.shape[0]:
            dst.append(out)
    return dst


def stream_filter(
    src: RecordStream,
    predicate: Callable[[np.ndarray], np.ndarray],
    dst: RecordStream,
    block_records: int = 4096,
) -> RecordStream:
    """Filter ``src`` into ``dst`` (order preserved)."""
    src.rewind()
    for block in src.scan(block_records):
        mask = np.asarray(predicate(block), dtype=bool)
        kept = block[mask]
        if kept.shape[0]:
            dst.append(kept)
    return dst


def count_records(src: RecordStream, block_records: int = 65536) -> int:
    """Full-scan record count (exercises the scan path; len() is O(1))."""
    src.rewind()
    return sum(b.shape[0] for b in src.scan(block_records))


def distribution_sweep(
    src: RecordStream,
    distribute: DistributeFunctor,
    bte: BTE,
    out_prefix: str,
    block_records: int = 4096,
) -> list[RecordStream]:
    """The external distribute: partition a stream into α bucket streams.

    One sequential read pass, α sequential write cursors — the I/O pattern of
    the distribution step in distribution sort (§2.1).
    """
    buckets = [
        RecordStream(f"{out_prefix}.{i}", bte=bte, schema=src.schema)
        for i in range(distribute.alpha)
    ]
    src.rewind()
    for block in src.scan(block_records):
        pieces = distribute.apply(block)
        for stream, piece in zip(buckets, pieces):
            if piece.shape[0]:
                stream.append(piece)
    return buckets
