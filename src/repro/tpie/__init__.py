"""Mini-TPIE: I/O-efficient external-memory primitives (§2.1, §3.1)."""

from .distribution_sort import DistSortStats, distribution_sort
from .external_sort import SortStats, external_sort
from .kmerge import KMergeCursor, kway_merge_streams
from .pqueue import ExternalPriorityQueue
from .stream_ops import (
    count_records,
    distribution_sweep,
    scan_apply,
    stream_filter,
)

__all__ = [
    "DistSortStats",
    "distribution_sort",
    "SortStats",
    "external_sort",
    "KMergeCursor",
    "kway_merge_streams",
    "ExternalPriorityQueue",
    "count_records",
    "distribution_sweep",
    "scan_apply",
    "stream_filter",
]
