"""Streaming k-way merge over BTE streams.

Merges k sorted runs using bounded buffer memory per run, the kernel of the
external merge sort (§2.1).  The merge is vectorised: each round establishes
a *safe horizon* — the smallest "largest buffered key" across runs — and
emits every buffered record at or below it in one sorted batch.  Every round
fully consumes at least one run buffer, so the pass is O(n log k) compares
with NumPy-speed constants.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..bte.base import BTE, StreamHandle

__all__ = ["kway_merge_streams", "KMergeCursor"]


class KMergeCursor:
    """Buffered read cursor over one sorted run."""

    __slots__ = ("bte", "handle", "buf", "pos", "buffer_records", "exhausted")

    def __init__(self, bte: BTE, handle: StreamHandle, buffer_records: int):
        self.bte = bte
        self.handle = handle
        self.buffer_records = int(buffer_records)
        self.buf: np.ndarray | None = None
        self.pos = 0
        self.exhausted = False
        self._refill()

    def _refill(self) -> None:
        if self.exhausted:
            return
        if self.buf is None or self.pos >= self.buf.shape[0]:
            batch = self.bte.read_next(self.handle, self.buffer_records)
            if batch.shape[0] == 0:
                self.exhausted = True
                self.buf = None
            else:
                self.buf = batch
                self.pos = 0

    @property
    def active(self) -> bool:
        return not self.exhausted

    def max_buffered_key(self):
        """Largest key currently buffered (runs are sorted)."""
        assert self.buf is not None
        return self.buf["key"][-1]

    def take_upto(self, horizon) -> np.ndarray:
        """Remove and return buffered records with key <= horizon."""
        assert self.buf is not None
        keys = self.buf["key"][self.pos :]
        n = int(np.searchsorted(keys, horizon, side="right"))
        out = self.buf[self.pos : self.pos + n]
        self.pos += n
        self._refill()
        return out


def kway_merge_streams(
    bte: BTE,
    run_handles: Sequence[StreamHandle],
    out_name: str,
    buffer_records: int = 4096,
    out_block_records: Optional[int] = None,
) -> StreamHandle:
    """Merge sorted runs into a new sorted stream ``out_name``.

    Memory use is ``k * buffer_records`` records plus one output block —
    the bounded-buffer property that lets γ-way merges run on ASUs.
    """
    if buffer_records < 1:
        raise ValueError("buffer_records must be >= 1")
    out = bte.create(out_name)
    cursors = [KMergeCursor(bte, h, buffer_records) for h in run_handles]
    cursors = [c for c in cursors if c.active]
    pending: list[np.ndarray] = []
    pending_n = 0
    flush_at = out_block_records or (buffer_records * max(1, len(cursors)))

    while cursors:
        if len(cursors) == 1:
            # Single survivor: stream it straight through.
            c = cursors[0]
            while c.active:
                chunk = c.buf[c.pos :]
                pending.append(chunk)
                pending_n += chunk.shape[0]
                c.pos = c.buf.shape[0]
                c._refill()
                if pending_n >= flush_at:
                    out_batch = np.concatenate(pending)
                    bte.append(out, out_batch)
                    pending, pending_n = [], 0
            break
        horizon = min(c.max_buffered_key() for c in cursors)
        pieces = [c.take_upto(horizon) for c in cursors]
        pieces = [p for p in pieces if p.shape[0]]
        if pieces:
            merged = (
                pieces[0]
                if len(pieces) == 1
                else np.sort(np.concatenate(pieces), order="key", kind="stable")
            )
            pending.append(merged)
            pending_n += merged.shape[0]
            if pending_n >= flush_at:
                bte.append(out, np.concatenate(pending))
                pending, pending_n = [], 0
        cursors = [c for c in cursors if c.active]

    if pending:
        bte.append(out, np.concatenate(pending))
    return out
