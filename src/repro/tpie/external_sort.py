"""External merge sort over a BTE (the TPIE sorting primitive, §2.1).

Run formation reads memory-sized chunks, sorts them (N log M work), and
spills each as a sorted run; merge passes then reduce the runs with fan-in
``gamma`` until one remains.  I/O cost follows the
(N/B) * ceil(log_{M/B}(N/M)) + N/B shape of the Aggarwal–Vitter bound — the
bench harness checks the pass count against that formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..bte.base import BTE, StreamHandle
from .kmerge import kway_merge_streams

__all__ = ["external_sort", "SortStats"]


@dataclass
class SortStats:
    """What the sort did: run and pass counts for I/O-complexity checks."""

    n_records: int
    memory_records: int
    fan_in: int
    n_initial_runs: int
    n_merge_passes: int

    def expected_merge_passes(self) -> int:
        """ceil(log_gamma(#runs)) — the analytic pass count."""
        if self.n_initial_runs <= 1:
            return 0
        return max(1, math.ceil(math.log(self.n_initial_runs, self.fan_in)))


def external_sort(
    bte: BTE,
    input_handle: StreamHandle,
    out_name: str,
    memory_records: int = 1 << 16,
    fan_in: int = 8,
    buffer_records: int = 1024,
    tmp_prefix: str = "__sort_tmp",
) -> tuple[StreamHandle, SortStats]:
    """Sort ``input_handle`` into a new stream ``out_name``.

    ``memory_records`` is M (run length), ``fan_in`` is the merge order.
    Temporary run streams are deleted as they are consumed.
    """
    if memory_records < 1:
        raise ValueError("memory_records must be >= 1")
    if fan_in < 2:
        raise ValueError("fan_in must be >= 2")
    import numpy as np

    n_total = bte.length(input_handle)

    # --- run formation ----------------------------------------------------
    run_names: list[str] = []
    pos = 0
    while pos < n_total:
        chunk = bte.read_at(input_handle, pos, memory_records)
        pos += chunk.shape[0]
        run = np.sort(chunk, order="key", kind="stable")
        name = f"{tmp_prefix}.run0.{len(run_names)}"
        bte.write_all(name, run)
        run_names.append(name)
    n_initial_runs = len(run_names)

    if n_initial_runs == 0:
        out = bte.create(out_name)
        return out, SortStats(0, memory_records, fan_in, 0, 0)

    # --- merge passes ---------------------------------------------------------
    n_passes = 0
    level = 0
    while len(run_names) > 1:
        n_passes += 1
        level += 1
        next_names: list[str] = []
        for gi in range(0, len(run_names), fan_in):
            group = run_names[gi : gi + fan_in]
            handles = [bte.open(n) for n in group]
            merged_name = f"{tmp_prefix}.run{level}.{len(next_names)}"
            kway_merge_streams(bte, handles, merged_name, buffer_records=buffer_records)
            for n in group:
                bte.delete(n)
            next_names.append(merged_name)
        run_names = next_names

    # --- publish ---------------------------------------------------------------
    final_name = run_names[0]
    final = bte.open(final_name)
    # Rename by copy (BTEs have no rename primitive).
    out = bte.create(out_name)
    block = max(buffer_records, 4096)
    while not bte.at_end(final):
        bte.append(out, bte.read_next(final, block))
    bte.delete(final_name)
    stats = SortStats(
        n_records=n_total,
        memory_records=memory_records,
        fan_in=fan_in,
        n_initial_runs=n_initial_runs,
        n_merge_passes=n_passes,
    )
    return out, stats
