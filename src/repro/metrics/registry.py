"""Simulated-time metrics instruments and the registry that owns them.

The paper's load manager acts on *runtime feedback*: "the routing of records
across functor instances may be responsive to dynamic load conditions visible
to the system" (§3.3), and the emulator "is instrumented to report application
progress, overall runtime, and resource utilization for each host and ASU"
(§5).  Where :mod:`repro.trace` records that feedback *post hoc* as spans, the
metrics registry holds it *live*: queue depths, device utilization, per-stage
throughput and latency, all updated against the virtual clock and readable by
the system itself (the :class:`~repro.core.load_manager.LoadManager` routes
exclusively from registry-backed signals).

Design rules (shared with the tracer, see docs/OBSERVABILITY.md):

* **Zero overhead when disabled.**  Instrumented code guards every update
  with a single ``sim.metrics is None`` (or cached-instrument ``is None``)
  check; no registry ⇒ no allocation, no call, no perturbation.
* **Deterministic.**  All values derive from the virtual clock and the seeded
  workload.  Histogram quantiles use fixed log-spaced buckets, never
  sampling; exports serialise canonically, so same-seed runs are
  byte-identical.
* **Pure observation.**  Instruments never touch the event queue.  Scraping
  (:mod:`repro.metrics.collector`) piggybacks on existing events.

Instruments are identified by ``(name, labels)``; ``name`` follows the
Prometheus convention (``repro_*``, ``_total`` for counters).  An instrument
may carry an ``owner`` — the node it describes — so a detected failure makes
its gauges read NaN instead of freezing the last pre-crash value
(:meth:`MetricsRegistry.mark_dead`).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Optional

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "GaugeVector",
    "Histogram",
    "Rate",
    "MetricsRegistry",
    "derive_owner",
]

NAN = float("nan")


def derive_owner(name: str) -> Optional[str]:
    """Node id owning a named resource: ``asu0.cpu`` → ``asu0``,
    ``mbox:host1`` → ``host1``.  Non-node names resolve to a prefix that
    simply never appears in ``dead_nodes`` (harmless)."""
    if name.startswith("mbox:"):
        name = name[5:]
    return name.split(".", 1)[0] or None


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, label_items: tuple) -> str:
    if not label_items:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_items)
    return f"{name}{{{inner}}}"


class Instrument:
    """Base: identity, ownership, and the sample protocol."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, labels: dict,
                 owner: Optional[str] = None):
        self.registry = registry
        self.name = name
        self.labels = dict(labels)
        #: node this instrument describes (``None`` = not node-scoped).
        #: Dead owners make gauges sample NaN (see ``MetricsRegistry.mark_dead``).
        self.owner = owner
        #: canonical identity string, e.g. ``repro_cpu_utilization{node="asu0"}``
        self.key = _render_key(name, _label_key(labels))

    @property
    def dead(self) -> bool:
        return self.owner is not None and self.owner in self.registry.dead_nodes

    def sample(self, t: float) -> float:
        """Scalar value at virtual time ``t`` (what the collector records)."""
        raise NotImplementedError

    def final(self) -> dict:
        """Structured end-of-run snapshot for the JSON exporter."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.key}>"


class Counter(Instrument):
    """Monotone cumulative count (events, cycles, bytes).

    Counters survive node death: the cumulative total up to the crash is
    real work done, so :meth:`sample` keeps reporting it.
    """

    kind = "counter"

    def __init__(self, registry, name, labels, owner=None):
        super().__init__(registry, name, labels, owner)
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def sample(self, t: float) -> float:
        return self.value

    def final(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge(Instrument):
    """A point-in-time level: queue depth, utilization, backlog.

    Either *set* explicitly (``set``/``inc``/``dec``) or backed by a
    ``fn(t) -> float`` callback polled only at scrape time, which keeps
    derived quantities (device utilization) entirely off the hot path.
    ``hwm`` tracks the high-water mark of every set/poke/sample, so peaks
    between scrapes are not lost.
    """

    kind = "gauge"

    def __init__(self, registry, name, labels, owner=None,
                 fn: Optional[Callable[[float], float]] = None):
        super().__init__(registry, name, labels, owner)
        self.fn = fn
        self.value = 0.0
        self.hwm = 0.0

    def set(self, v: float) -> None:
        self.value = v
        if v > self.hwm:
            self.hwm = v

    def inc(self, n: float = 1.0) -> None:
        self.set(self.value + n)

    def dec(self, n: float = 1.0) -> None:
        self.value -= n

    def poke(self, v: float) -> None:
        """Update only the high-water mark (for callback-backed gauges whose
        live value is derived, e.g. queue depth)."""
        if v > self.hwm:
            self.hwm = v

    def sample(self, t: float) -> float:
        if self.dead:
            return NAN
        v = float(self.fn(t)) if self.fn is not None else self.value
        if v > self.hwm:
            self.hwm = v
        return v

    def final(self) -> dict:
        last = NAN if self.dead else (self.value if self.fn is None else None)
        out = {"type": "gauge", "hwm": self.hwm}
        if last is not None:
            out["value"] = last
        return out


class GaugeVector(Instrument):
    """A dense family of gauges indexed 0..n-1 sharing one numpy array.

    The backing :attr:`values` array is the instrument — consumers that need
    vectorised reads (the router's join-shortest-queue ``argmin``) operate on
    it directly, so the registry is the *single* home of the feedback signal
    rather than a copy of it.  Exported as one series per index under the
    ``index_label``.
    """

    kind = "gauge_vector"

    def __init__(self, registry, name, labels, n: int, index_label: str = "instance"):
        super().__init__(registry, name, labels)
        self.n = int(n)
        self.index_label = index_label
        self.values = np.zeros(self.n, dtype=np.float64)
        self.hwm = np.zeros(self.n, dtype=np.float64)
        #: per-element quarantine (a dead functor instance, not a dead node)
        self.element_dead = np.zeros(self.n, dtype=bool)
        self._keys = [
            _render_key(name, _label_key({**labels, index_label: str(i)}))
            for i in range(self.n)
        ]

    def element_key(self, i: int) -> str:
        return self._keys[i]

    def set(self, i: int, v: float) -> None:
        self.values[i] = v
        if v > self.hwm[i]:
            self.hwm[i] = v

    def add(self, i: int, dv: float) -> None:
        self.set(i, float(self.values[i]) + dv)

    def __getitem__(self, i: int) -> float:
        return float(self.values[i])

    def mark_element_dead(self, i: int) -> None:
        self.element_dead[i] = True

    def sample_element(self, i: int, t: float) -> float:
        if self.dead or self.element_dead[i]:
            return NAN
        v = float(self.values[i])
        if v > self.hwm[i]:
            self.hwm[i] = v
        return v

    def sample(self, t: float) -> float:  # scalar view: the vector maximum
        alive = ~self.element_dead
        if self.dead or not alive.any():
            return NAN
        return float(self.values[alive].max())

    def final(self) -> dict:
        return {
            "type": "gauge_vector",
            "values": [
                None if bool(self.element_dead[i]) else float(self.values[i])
                for i in range(self.n)
            ],
            "hwm": [float(x) for x in self.hwm],
        }


class Histogram(Instrument):
    """Log-bucketed distribution with deterministic quantiles.

    Observations land in geometric buckets ``[base**i, base**(i+1))`` with
    ``base = 2**(1/8)`` (eight buckets per octave ⇒ ≤ ~9% relative bucket
    width).  Quantiles walk the bucket table — no sampling, no reservoir —
    so the same observations always produce the same quantile estimates, and
    the estimate is within one bucket width of the exact order statistic.
    Non-positive observations collect in a dedicated underflow bucket.
    """

    kind = "histogram"

    #: buckets per octave; base = 2 ** (1 / BUCKETS_PER_OCTAVE)
    BUCKETS_PER_OCTAVE = 8
    _LOG_BASE = math.log(2.0) / BUCKETS_PER_OCTAVE

    def __init__(self, registry, name, labels, owner=None):
        super().__init__(registry, name, labels, owner)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.underflow = 0  # observations <= 0
        self.buckets: dict[int, int] = {}

    def _index(self, v: float) -> int:
        return math.floor(math.log(v) / self._LOG_BASE)

    def bucket_bounds(self, i: int) -> tuple[float, float]:
        return (math.exp(i * self._LOG_BASE), math.exp((i + 1) * self._LOG_BASE))

    def observe(self, v: float, n: int = 1) -> None:
        """Record ``n`` observations of value ``v``."""
        v = float(v)
        self.count += n
        self.sum += v * n
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if v <= 0.0:
            self.underflow += n
            return
        i = self._index(v)
        self.buckets[i] = self.buckets.get(i, 0) + n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic nearest-rank quantile from the bucket table.

        Returns the geometric midpoint of the bucket containing the q-th
        ranked observation, clamped to the exact observed [min, max].
        Edge cases: ``q=0`` returns the exact observed minimum, ``q=1`` the
        exact observed maximum, and an empty histogram returns NaN (the
        exporters sanitise it to null).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return NAN
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = max(1, math.ceil(q * self.count))
        if rank <= self.underflow:
            return min(self.min, 0.0)
        cum = self.underflow
        for i in sorted(self.buckets):
            cum += self.buckets[i]
            if cum >= rank:
                lo, hi = self.bucket_bounds(i)
                mid = math.sqrt(lo * hi)
                return min(max(mid, self.min), self.max)
        return self.max

    def sample(self, t: float) -> float:  # scalar view: the running count
        return float(self.count)

    def snapshot(self) -> dict:
        """Structured snapshot: count/sum/min/max plus p50/p95/p99/p999.

        The tail quantile (p999) is what the "millions of users" latency
        targets gate on — a p99 alone hides one-in-a-thousand stalls.
        Alias of :meth:`final`; exported through both the JSON and
        Prometheus exporters.
        """
        return self.final()

    def final(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "underflow": self.underflow,
            "buckets": [
                [self.bucket_bounds(i)[1], self.buckets[i]]
                for i in sorted(self.buckets)
            ],
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }


class Rate(Instrument):
    """A cumulative count plus its windowed rate — the steady-state
    throughput signal (records/s over the last ``window`` seconds) that
    in-network stream-processing systems use for placement decisions.

    ``mark(t, n)`` must be called in nondecreasing ``t`` order (event order,
    which the simulator guarantees).  Marks older than the window are pruned
    as new ones arrive, so memory stays bounded by the event density of one
    window.
    """

    kind = "rate"

    def __init__(self, registry, name, labels, window: float = 0.05, owner=None):
        super().__init__(registry, name, labels, owner)
        if window <= 0:
            raise ValueError("rate window must be positive")
        self.window = float(window)
        self.total = 0.0
        #: (t, n) marks inside the current window, oldest first
        self._marks: deque[tuple[float, float]] = deque()
        self._in_window = 0.0

    def mark(self, t: float, n: float = 1.0) -> None:
        self.total += n
        self._marks.append((t, n))
        self._in_window += n
        self._prune(t)

    def _prune(self, t: float) -> None:
        cutoff = t - self.window
        marks = self._marks
        while marks and marks[0][0] <= cutoff:
            self._in_window -= marks.popleft()[1]

    def rate_at(self, t: float) -> float:
        """Events per second over ``(t - window, t]``."""
        self._prune(t)
        return self._in_window / self.window

    def sample(self, t: float) -> float:
        if self.dead:
            return NAN
        return self.rate_at(t)

    def final(self) -> dict:
        return {"type": "rate", "total": self.total, "window": self.window}


class MetricsRegistry:
    """Owns every instrument of one run (or one stitched multi-pass job).

    Get-or-create accessors are idempotent: the same ``(name, labels)``
    always returns the same instrument, so hot paths can cache the handle
    once and instrumentation points in different modules can share a series.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, Instrument] = {}
        #: node_ids declared failed — their gauges sample NaN from then on
        self.dead_nodes: set[str] = set()
        #: the (single) collector scraping this registry, if any
        self.collector = None

    # -- get-or-create accessors -------------------------------------------
    def _get(self, cls, name: str, labels: dict, **kwargs) -> Instrument:
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(self, name, labels, **kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {inst.key!r} already registered as {inst.kind}, "
                f"not {cls.__name__.lower()}"
            )
        return inst

    def counter(self, name: str, owner: Optional[str] = None, **labels) -> Counter:
        return self._get(Counter, name, labels, owner=owner)

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[float], float]] = None,
        owner: Optional[str] = None,
        **labels,
    ) -> Gauge:
        g = self._get(Gauge, name, labels, owner=owner, fn=fn)
        if fn is not None:
            # Re-registration may supply (or replace) the callback: a
            # multi-pass job rebuilds its platform per pass, and scrapes must
            # read the *current* pass's device, not a stale closure.
            g.fn = fn
        return g

    def gauge_vector(
        self, name: str, n: int, index_label: str = "instance", **labels
    ) -> GaugeVector:
        return self._get(GaugeVector, name, labels, n=n, index_label=index_label)

    def histogram(self, name: str, owner: Optional[str] = None, **labels) -> Histogram:
        return self._get(Histogram, name, labels, owner=owner)

    def rate(
        self, name: str, window: float = 0.05, owner: Optional[str] = None, **labels
    ) -> Rate:
        return self._get(Rate, name, labels, owner=owner, window=window)

    # -- inspection ---------------------------------------------------------
    def instruments(self) -> list[Instrument]:
        """Every instrument, sorted by canonical key (stable export order)."""
        return sorted(self._instruments.values(), key=lambda m: m.key)

    def get(self, name: str, **labels) -> Optional[Instrument]:
        return self._instruments.get((name, _label_key(labels)))

    def __len__(self) -> int:
        return len(self._instruments)

    # -- fault integration ----------------------------------------------------
    def mark_dead(self, node_id: str) -> None:
        """A failure detector declared ``node_id`` dead: gauges owned by it
        sample NaN from now on (absent, not frozen — §repro.faults)."""
        self.dead_nodes.add(node_id)

    def mark_alive(self, node_id: str) -> None:
        """Undo :meth:`mark_dead` for a re-admitted node.

        A partitioned node was never actually dead — once the failure
        detector clears the suspicion (heal-time re-admission,
        docs/PARTITIONS.md) its gauges must resume sampling live values
        instead of staying NaN forever."""
        self.dead_nodes.discard(node_id)

    # -- collector binding ----------------------------------------------------
    def bind_collector(self, sim, interval: Optional[float] = None):
        """Attach (or re-attach) the scrape collector to a simulator.

        Re-binding to a fresh simulator continues the same sample series —
        multi-pass jobs set ``collector.offset`` to stitch pass timelines,
        exactly like ``tracer.offset``.
        """
        from .collector import MetricsCollector

        if self.collector is None:
            self.collector = MetricsCollector(
                self, interval if interval is not None else 0.01
            )
        elif interval is not None:
            self.collector.interval = float(interval)
        self.collector.bind(sim)
        return self.collector

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self)} instrument(s)>"
