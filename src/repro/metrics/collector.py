"""Zero-perturbation periodic scraping of a :class:`MetricsRegistry`.

A naive collector would be a sim-process sleeping ``interval`` between
scrapes — but that *adds events*: it would keep a drained simulator alive,
extend ``sim.now`` past the true makespan, and (worst) perturb FIFO
tie-breaking by consuming sequence numbers.  Instead the collector is an
**observer**: :meth:`observe` is invoked from ``Simulator.step`` with the
time of the event about to run, *before* the clock advances.  Between events
the simulated world is constant, so the state at any boundary time
``due ∈ (now, t]`` equals the state just before the event at ``t`` — the
scrape is the exact left-limit sample, and the event heap never sees the
collector at all.  Makespans are bit-identical with the collector on or off,
at any interval (tested).

``offset`` stitches multi-pass timelines exactly like ``tracer.offset``:
pass 2 of DSM-Sort restarts its simulator at 0, so the job sets
``collector.offset = pass1_makespan`` and samples land on one continuous
axis.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Samples every scalar instrument at fixed virtual-time intervals."""

    def __init__(self, registry, interval: float = 0.01):
        if interval <= 0:
            raise ValueError("scrape interval must be positive")
        self.registry = registry
        self.interval = float(interval)
        #: added to sample timestamps (multi-pass timeline stitching)
        self.offset = 0.0
        #: sample series: canonical key -> [(t, value), ...] in time order
        self.series: dict[str, list[tuple[float, float]]] = {}
        self._sim = None
        self._due = float(interval)
        registry.collector = self

    def bind(self, sim) -> None:
        """Attach to a simulator (a fresh one resets the local due-clock)."""
        self._sim = sim
        self._due = self.interval
        sim.metrics = self.registry

    # -- the hot hook ---------------------------------------------------------
    def observe(self, t: float) -> None:
        """Called from ``Simulator.step`` with the next event's time ``t``.

        Scrapes every boundary in ``(now, t]`` using current state — the
        left limit at each boundary, since nothing changes between events.
        """
        due = self._due
        if t < due:
            return
        interval = self.interval
        while due <= t:
            self._scrape(due)
            due += interval
        self._due = due

    def finalize(self, t_end: float) -> None:
        """Take one last sample at the end of a run (pass makespan)."""
        self._scrape(t_end)

    # -- internals ------------------------------------------------------------
    def _scrape(self, t: float) -> None:
        stamp = t + self.offset
        series = self.series
        for inst in self.registry.instruments():
            kind = inst.kind
            if kind == "histogram":
                continue  # distributions export once, at the end
            if kind == "gauge_vector":
                for i in range(inst.n):
                    key = inst.element_key(i)
                    pts = series.get(key)
                    if pts is None:
                        pts = series[key] = []
                    pts.append((stamp, inst.sample_element(i, t)))
                continue
            pts = series.get(inst.key)
            if pts is None:
                pts = series[inst.key] = []
            pts.append((stamp, inst.sample(t)))

    def n_samples(self) -> int:
        return sum(len(v) for v in self.series.values())

    def __repr__(self) -> str:
        return (
            f"<MetricsCollector interval={self.interval} "
            f"series={len(self.series)} samples={self.n_samples()}>"
        )
