"""Exporters: canonical JSON and Prometheus text exposition.

JSON is the machine-readable artifact (consumed by ``python -m repro
metrics`` and the bench regression gate) and is **canonical**: keys sorted,
compact separators, NaN sanitised to ``null`` — so a same-seed run produces
a byte-identical file, which the determinism tests pin.

The Prometheus text format is for eyeballs and for feeding scraped samples
into standard tooling; it follows the exposition format (``# TYPE`` lines,
``_total`` counters, histogram ``_bucket``/``_sum``/``_count`` with
cumulative ``le`` upper bounds).
"""

from __future__ import annotations

import json
import math
from typing import Optional

__all__ = ["SCHEMA_VERSION", "metrics_dict", "metrics_json", "prometheus_text"]

#: bumped on any breaking change to the export layout
SCHEMA_VERSION = 1


def _san(v):
    """NaN/Inf → None so the JSON is strict and canonical."""
    if isinstance(v, float) and not math.isfinite(v):
        return None
    return v


def _san_deep(obj):
    if isinstance(obj, dict):
        return {k: _san_deep(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_san_deep(v) for v in obj]
    return _san(obj)


def metrics_dict(registry, collector=None) -> dict:
    """Full structured snapshot of a registry (+ optional sample series)."""
    final = {}
    histograms = {}
    for inst in registry.instruments():
        snap = inst.final()
        if inst.kind == "histogram":
            histograms[inst.key] = snap
        else:
            final[inst.key] = snap
    out = {
        "schema_version": SCHEMA_VERSION,
        "final": final,
        "histograms": histograms,
        "dead_nodes": sorted(registry.dead_nodes),
    }
    if collector is not None:
        out["scrape_interval"] = collector.interval
        out["series"] = {
            key: [[t, _san(v)] for t, v in pts]
            for key, pts in sorted(collector.series.items())
        }
    return _san_deep(out)


def metrics_json(registry, collector=None) -> str:
    """Canonical (byte-stable) JSON export."""
    return json.dumps(
        metrics_dict(registry, collector),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
    )


def _prom_name(inst) -> tuple[str, str]:
    """(metric name, label block) in exposition syntax."""
    labels = ",".join(
        f'{k}="{v}"' for k, v in sorted(inst.labels.items())
    )
    return inst.name, (f"{{{labels}}}" if labels else "")


def _fmt(v: float) -> str:
    if isinstance(v, float) and math.isnan(v):
        return "NaN"
    return repr(float(v))


def prometheus_text(registry, t: Optional[float] = None) -> str:
    """Render current instrument state in Prometheus text format.

    ``t`` is the virtual time at which callback gauges are evaluated;
    defaults to 0.0 (fine after a run, when trackers clamp to run end).
    """
    if t is None:
        t = 0.0
    lines: list[str] = []
    typed: set[str] = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for inst in registry.instruments():
        name, lbl = _prom_name(inst)
        if inst.kind == "counter":
            type_line(name, "counter")
            lines.append(f"{name}{lbl} {_fmt(inst.value)}")
        elif inst.kind == "gauge":
            type_line(name, "gauge")
            lines.append(f"{name}{lbl} {_fmt(inst.sample(t))}")
        elif inst.kind == "rate":
            type_line(name, "gauge")
            lines.append(f"{name}{lbl} {_fmt(inst.sample(t))}")
        elif inst.kind == "gauge_vector":
            type_line(name, "gauge")
            base = dict(inst.labels)
            for i in range(inst.n):
                el = ",".join(
                    f'{k}="{v}"'
                    for k, v in sorted({**base, inst.index_label: str(i)}.items())
                )
                lines.append(f"{name}{{{el}}} {_fmt(inst.sample_element(i, t))}")
        elif inst.kind == "histogram":
            type_line(name, "histogram")
            pre = lbl[:-1] + "," if lbl else "{"
            cum = inst.underflow
            if cum:
                lines.append(f'{name}_bucket{pre}le="0.0"}} {cum}')
            for i in sorted(inst.buckets):
                cum += inst.buckets[i]
                ub = inst.bucket_bounds(i)[1]
                lines.append(f'{name}_bucket{pre}le="{ub!r}"}} {cum}')
            lines.append(f'{name}_bucket{pre}le="+Inf"}} {inst.count}')
            lines.append(f"{name}_sum{lbl} {_fmt(inst.sum)}")
            lines.append(f"{name}_count{lbl} {inst.count}")
            # Tail latency is the SLO signal (ROADMAP item 2 asks for p999
            # explicitly); exported as a companion gauge since the native
            # histogram type carries buckets, not quantiles.
            type_line(f"{name}_p999", "gauge")
            lines.append(f"{name}_p999{lbl} {_fmt(inst.quantile(0.999))}")
    return "\n".join(lines) + "\n"
