"""repro.metrics — simulated-time metrics registry and load-feedback signals.

Third observability layer of the reproduction (after ``repro.trace``):
live Counter/Gauge/Histogram/Rate instruments against the virtual clock,
scraped without perturbation by a :class:`MetricsCollector`, exported as
canonical JSON or Prometheus text.  The :class:`~repro.core.load_manager.
LoadManager` routes exclusively from registry-backed signals — the paper's
"dynamic load conditions visible to the system" (§3.3) made first-class.

See docs/METRICS.md for the model, scrape semantics, and formats.
"""

from .collector import MetricsCollector
from .export import SCHEMA_VERSION, metrics_dict, metrics_json, prometheus_text
from .registry import (
    Counter,
    Gauge,
    GaugeVector,
    Histogram,
    MetricsRegistry,
    Rate,
)

__all__ = [
    "Counter",
    "Gauge",
    "GaugeVector",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "Rate",
    "SCHEMA_VERSION",
    "metrics_dict",
    "metrics_json",
    "prometheus_text",
]
