"""Heartbeat failure detection with configurable latency.

Each monitored node runs a *beater* process that stamps a liveness table every
``interval`` virtual seconds; a single monitor process sweeps the table every
``check_interval`` and declares any node silent for longer than ``timeout``
failed.  Beaters are registered to their node
(:meth:`~repro.emulator.platform.ActivePlatform.spawn` with ``node=``), so a
fail-stop interrupts them and the heartbeats genuinely stop — detection then
follows within ``timeout + check_interval`` of the crash, which is the
detector's latency bound.

Heartbeats are pure timers: they charge no CPU cycles and send no network
messages, so arming a detector perturbs neither the workload's timing nor its
event ordering.  That also means link flaps and degraded clocks cause *no
false suspicion* — only a fail-stop silences a beater.  Recovery logic that
wants to react to slow (rather than dead) devices should watch load-manager
feedback instead (§3.2).
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..emulator.node import Node
from ..emulator.platform import ActivePlatform

__all__ = ["FailureDetector"]


class FailureDetector:
    """Timeout-based failure detector over a set of platform nodes."""

    def __init__(
        self,
        plat: ActivePlatform,
        nodes: Optional[Iterable[Node]] = None,
        interval: float = 0.05,
        timeout: float = 0.2,
        check_interval: Optional[float] = None,
    ):
        if interval <= 0 or timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        if timeout < interval:
            raise ValueError("timeout must be >= heartbeat interval")
        self.plat = plat
        self.nodes: list[Node] = list(plat.nodes if nodes is None else nodes)
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.check_interval = float(check_interval if check_interval is not None else interval)
        #: node_id -> virtual time the failure was declared
        self.detected: dict[str, float] = {}
        #: called with (node, detection_time) when a failure is declared
        self.on_failure: list[Callable[[Node, float], None]] = []
        self._last_beat: dict[str, float] = {}
        self._monitor = None
        self._running = False

    @property
    def latency_bound(self) -> float:
        """Worst-case detection lag after a fail-stop."""
        return self.timeout + self.check_interval

    def start(self) -> None:
        """Spawn the beaters and the monitor.  Call once, before ``run()``.

        The detector's processes are perpetual; a driver that runs the
        simulator to queue-exhaustion must call :meth:`stop` (or
        ``sim.stop``) when the workload completes.
        """
        if self._running:
            raise RuntimeError("detector already started")
        self._running = True
        now = self.plat.sim.now
        for node in self.nodes:
            self._last_beat[node.node_id] = now
            self.plat.spawn(self._beater(node), name=f"hb.{node.node_id}", node=node)
        self._monitor = self.plat.spawn(self._monitor_loop(), name="hb.monitor")

    def stop(self) -> None:
        """Tear down the monitor and any still-running beaters."""
        if not self._running:
            return
        self._running = False
        if self._monitor is not None and not self._monitor.triggered:
            self._monitor.interrupt(cause="detector stopped")

    # -- processes -------------------------------------------------------------
    def _beater(self, node: Node):
        while True:
            yield self.plat.sim.timeout(self.interval)
            self._last_beat[node.node_id] = self.plat.sim.now

    def _monitor_loop(self):
        while self._running:
            yield self.plat.sim.timeout(self.check_interval)
            now = self.plat.sim.now
            for node in self.nodes:
                nid = node.node_id
                if nid in self.detected:
                    continue
                if now - self._last_beat[nid] > self.timeout:
                    self.declare_failed(node)

    def declare_failed(self, node: Node) -> None:
        """Record a detection and fire the failure callbacks."""
        if node.node_id in self.detected:
            return
        self.detected[node.node_id] = self.plat.sim.now
        tracer = self.plat.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.plat.sim.now, "faults", f"detect {node.node_id}", cat="fault"
            )
        m = self.plat.sim.metrics
        if m is not None:
            # Gauges owned by the dead node read NaN (absent) from now on —
            # a frozen last-known value would look like live feedback.
            m.mark_dead(node.node_id)
            m.counter("repro_failures_detected_total").inc()
        for cb in list(self.on_failure):
            cb(node, self.plat.sim.now)
