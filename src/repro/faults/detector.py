"""Heartbeat failure detection with configurable latency — and, optionally,
a network-borne mode that can tell *crashed* from *unreachable*.

Each monitored node runs a *beater* process that stamps a liveness table every
``interval`` virtual seconds; a single monitor process sweeps the table every
``check_interval`` and declares any node silent for longer than ``timeout``
failed.  Beaters are registered to their node
(:meth:`~repro.emulator.platform.ActivePlatform.spawn` with ``node=``), so a
fail-stop interrupts them and the heartbeats genuinely stop — detection then
follows within ``timeout + check_interval`` of the crash, which is the
detector's latency bound.

Two detection modes:

* ``mode="timer"`` (default) — heartbeats are pure timers: they charge no CPU
  cycles and send no network messages, so arming a detector perturbs neither
  the workload's timing nor its event ordering.  Link flaps, degraded clocks,
  and even network partitions cause *no suspicion at all* — only a fail-stop
  silences a beater.  That purity is also this mode's blind spot: it cannot
  see a partition, so it must never be trusted in a deployment where
  "detected" triggers exclusive takeover across a real network
  (docs/PARTITIONS.md).

* ``mode="network"`` — heartbeats travel as real messages (zero-sized by
  default, so link capacity is not perturbed) from each node to an *anchor*
  node, and therefore suffer partitions, drops, and flaps like any other
  traffic.  A silent node is first **suspected**, then probed *indirectly*
  through third-party relays (SWIM-style: anchor→relay→target→relay→anchor,
  four real message legs).  An indirect ack proves the target alive but
  unreachable from the anchor (**unreachable** — no takeover); probe-timeout
  silence on every relay path **confirms** the failure and fires the usual
  callbacks.  False suspicion is possible by design here — which is exactly
  why confirmation must be fenced by membership epochs before any exclusive
  resource changes hands (:mod:`repro.membership`).

Re-admission: when a confirmed node's heartbeats resume (a healed cut), the
detector :meth:`clear`\\ s it and fires ``on_readmit`` so upper layers can
re-admit it under a fresh epoch.  A majority guard refuses to confirm more
than half the monitored fleet — an anchor sliced into a minority island must
quarantine itself, not expel the world.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..emulator.node import Node
from ..emulator.platform import ActivePlatform
from ..sim import Store

__all__ = ["FailureDetector"]

#: node states in network mode (timer mode only ever uses ALIVE/CONFIRMED)
ALIVE = "alive"
SUSPECTED = "suspected"
UNREACHABLE = "unreachable"
CONFIRMED = "confirmed"


class FailureDetector:
    """Timeout-based failure detector over a set of platform nodes."""

    def __init__(
        self,
        plat: ActivePlatform,
        nodes: Optional[Iterable[Node]] = None,
        interval: float = 0.05,
        timeout: float = 0.2,
        check_interval: Optional[float] = None,
        mode: str = "timer",
        anchor: Optional[Node] = None,
        probe_timeout: Optional[float] = None,
        hb_nbytes: int = 0,
    ):
        if interval <= 0 or timeout <= 0:
            raise ValueError("interval and timeout must be positive")
        if timeout < interval:
            raise ValueError("timeout must be >= heartbeat interval")
        if mode not in ("timer", "network"):
            raise ValueError(f"unknown detection mode {mode!r}")
        self.plat = plat
        self.nodes: list[Node] = list(plat.nodes if nodes is None else nodes)
        self.interval = float(interval)
        self.timeout = float(timeout)
        self.check_interval = float(check_interval if check_interval is not None else interval)
        self.mode = mode
        #: anchor node the heartbeats travel to (network mode)
        self.anchor: Optional[Node] = None
        self.probe_timeout = float(probe_timeout if probe_timeout is not None else timeout)
        self.hb_nbytes = int(hb_nbytes)
        if mode == "network":
            self.anchor = anchor if anchor is not None else (
                plat.hosts[0] if plat.hosts else self.nodes[0]
            )
        #: node_id -> virtual time the failure was declared (confirmed)
        self.detected: dict[str, float] = {}
        #: node_id -> ALIVE / SUSPECTED / UNREACHABLE / CONFIRMED
        self.state: dict[str, str] = {n.node_id: ALIVE for n in self.nodes}
        #: called with (node, detection_time) when a failure is confirmed
        self.on_failure: list[Callable[[Node, float], None]] = []
        #: called with (node, time) when a cleared node's heartbeats resume
        self.on_readmit: list[Callable[[Node, float], None]] = []
        #: confirmations withheld by the majority guard (self-quarantine)
        self.n_quarantine_holds = 0
        self._last_beat: dict[str, float] = {}
        self._suspected_at: dict[str, float] = {}
        self._probe_round: dict[str, float] = {}
        self._indirect_ack: dict[str, float] = {}
        self._monitor = None
        self._beaters: list = []
        self._procs: list = []
        self._hb_inbox: Optional[Store] = None
        self._probe_seq = 0
        self._running = False
        self._g_suspected = None
        m = plat.sim.metrics
        if m is not None and mode == "network":
            # Registered only in network mode: timer-mode runs must keep
            # byte-identical metric exports (the bench regress gate).
            self._g_suspected = m.gauge("repro_failures_suspected")

    @property
    def latency_bound(self) -> float:
        """Worst-case detection lag after a fail-stop."""
        if self.mode == "network":
            # silence noticed at a sweep, then one full probe round must also
            # come up empty — and its expiry is observed at a sweep too, so
            # the quantization charge applies twice
            return self.timeout + self.probe_timeout + 2 * self.check_interval
        return self.timeout + self.check_interval

    def start(self) -> None:
        """Spawn the beaters and the monitor.  Call once, before ``run()``.

        The detector's processes are perpetual; a driver that runs the
        simulator to queue-exhaustion must call :meth:`stop` (or
        ``sim.stop``) when the workload completes.
        """
        if self._running:
            raise RuntimeError("detector already started")
        self._running = True
        now = self.plat.sim.now
        if self.mode == "network":
            self._hb_inbox = Store(self.plat.sim, name="hb.inbox")
            sink = self.plat.spawn(self._hb_sink(), name="hb.sink", node=self.anchor)
            self._procs.append(sink)
        for node in self.nodes:
            self._last_beat[node.node_id] = now
            beater = self.plat.spawn(
                self._beater(node), name=f"hb.{node.node_id}", node=node
            )
            self._beaters.append(beater)
        self._monitor = self.plat.spawn(self._monitor_loop(), name="hb.monitor")

    def stop(self) -> None:
        """Tear down the monitor and any still-running beaters."""
        if not self._running:
            return
        self._running = False
        if self._monitor is not None and not self._monitor.triggered:
            self._monitor.interrupt(cause="detector stopped")
        # Beaters are node-registered, so a fail-stop already interrupted the
        # dead ones; interrupt whichever are still ticking (plus the heartbeat
        # sink and any in-flight probes in network mode).
        for proc in self._beaters + self._procs:
            if proc is not None and not proc.triggered:
                proc.interrupt(cause="detector stopped")

    # -- processes -------------------------------------------------------------
    def _beater(self, node: Node):
        if self.mode == "network" and node is not self.anchor:
            net = self.plat.network
            anchor_id = self.anchor.node_id
            while True:
                yield self.plat.sim.timeout(self.interval)
                # A real message: it rides the links, so cuts silence it.
                net.post(node.node_id, anchor_id, ("hb", node.node_id),
                         self.hb_nbytes, tag="hb", inbox=self._hb_inbox)
        else:
            while True:
                yield self.plat.sim.timeout(self.interval)
                self._last_beat[node.node_id] = self.plat.sim.now

    def _hb_sink(self):
        """Anchor-side consumer of heartbeat messages (network mode)."""
        while True:
            msg = yield self._hb_inbox.get()
            nid = msg.payload[1]
            now = self.plat.sim.now
            self._last_beat[nid] = now
            st = self.state.get(nid, ALIVE)
            if st in (SUSPECTED, UNREACHABLE):
                # the direct path works again — stand down before confirmation
                self.state[nid] = ALIVE
                self._refresh_suspected_gauge()
            elif st == CONFIRMED:
                node = self._node_by_id(nid)
                if node is not None and node.alive:
                    self.clear(node)
                    for cb in list(self.on_readmit):
                        cb(node, now)

    def _monitor_loop(self):
        while self._running:
            yield self.plat.sim.timeout(self.check_interval)
            now = self.plat.sim.now
            for node in self.nodes:
                nid = node.node_id
                if nid in self.detected:
                    continue
                if self.mode == "network" and node is not self.anchor:
                    self._sweep_network(node, now)
                elif now - self._last_beat[nid] > self.timeout:
                    self.declare_failed(node)

    def _sweep_network(self, node: Node, now: float) -> None:
        nid = node.node_id
        st = self.state.get(nid, ALIVE)
        if st == ALIVE:
            if now - self._last_beat[nid] > self.timeout:
                self._suspect(node, now)
        elif st in (SUSPECTED, UNREACHABLE):
            if self._indirect_ack.get(nid, -1.0) >= self._probe_round[nid]:
                # someone relayed proof of life: alive but cut off from the
                # anchor — no takeover, keep probing so a widening cut is
                # still caught
                if st != UNREACHABLE:
                    self.state[nid] = UNREACHABLE
                    self._note(f"unreachable {nid}")
                    self._refresh_suspected_gauge()
                self._launch_probes(node, now)
            elif now - self._probe_round[nid] > self.probe_timeout:
                self._confirm(node)

    def _suspect(self, node: Node, now: float) -> None:
        nid = node.node_id
        self.state[nid] = SUSPECTED
        self._suspected_at[nid] = now
        self._note(f"suspect {nid}")
        self._refresh_suspected_gauge()
        self._launch_probes(node, now)

    def _launch_probes(self, node: Node, now: float) -> None:
        self._probe_round[node.node_id] = now
        relays = [
            n for n in self.nodes
            if n is not node and n is not self.anchor
            and self.state.get(n.node_id) == ALIVE and n.alive
        ]
        for relay in sorted(relays, key=lambda n: n.node_id):
            self._probe_seq += 1
            proc = self.plat.spawn(
                self._probe_via(relay, node),
                name=f"hb.probe{self._probe_seq}.{node.node_id}",
                node=self.anchor,
            )
            self._procs.append(proc)

    def _probe_via(self, relay: Node, target: Node):
        """One indirect probe: four real message legs through ``relay``.

        Any leg severed by a cut (or dead-lettered by a crash) stalls the
        probe forever — which is the point: only a *complete* round trip
        counts as proof of life.  Stalled probes hold no events, so they
        cost nothing; :meth:`stop` interrupts them.
        """
        sim = self.plat.sim
        net = self.plat.network
        anchor_id = self.anchor.node_id
        for src, dst in (
            (anchor_id, relay.node_id),    # probe request
            (relay.node_id, target.node_id),  # relayed ping
            (target.node_id, relay.node_id),  # ack (only an alive target's
            (relay.node_id, anchor_id),       # side of the cut sends this)
        ):
            leg = Store(sim)
            net.post(src, dst, ("probe", target.node_id), self.hb_nbytes,
                     tag="probe", inbox=leg)
            yield leg.get()
        self._indirect_ack[target.node_id] = sim.now
        self._note(f"indirect-ack {target.node_id} via {relay.node_id}")

    def _confirm(self, node: Node) -> None:
        # Majority guard: if confirming would mean more than half the fleet
        # is "dead", the likelier story is that *we* are in the minority —
        # hold the confirmation and keep probing (self-quarantine).
        if (len(self.detected) + 1) * 2 > len(self.nodes):
            self.n_quarantine_holds += 1
            self._note(f"quarantine-hold {node.node_id}")
            return
        self.declare_failed(node)

    # -- declarations ----------------------------------------------------------
    def _node_by_id(self, nid: str) -> Optional[Node]:
        for n in self.nodes:
            if n.node_id == nid:
                return n
        return None

    def _note(self, what: str) -> None:
        tracer = self.plat.sim.tracer
        if tracer is not None:
            tracer.instant(self.plat.sim.now, "faults", what, cat="fault")

    def _refresh_suspected_gauge(self) -> None:
        if self._g_suspected is not None:
            self._g_suspected.set(float(sum(
                1 for s in self.state.values() if s in (SUSPECTED, UNREACHABLE)
            )))

    def declare_failed(self, node: Node) -> None:
        """Record a detection and fire the failure callbacks."""
        if node.node_id in self.detected:
            return
        self.detected[node.node_id] = self.plat.sim.now
        self.state[node.node_id] = CONFIRMED
        self._refresh_suspected_gauge()
        tracer = self.plat.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.plat.sim.now, "faults", f"detect {node.node_id}", cat="fault"
            )
        m = self.plat.sim.metrics
        if m is not None:
            # Gauges owned by the dead node read NaN (absent) from now on —
            # a frozen last-known value would look like live feedback.
            m.mark_dead(node.node_id)
            m.counter("repro_failures_detected_total").inc()
        for cb in list(self.on_failure):
            cb(node, self.plat.sim.now)

    def clear(self, node: Node) -> None:
        """Forget a detection: the node is alive after all (a healed cut).

        Resets the liveness stamp and state, and un-NaNs the node's gauges
        via :meth:`~repro.metrics.registry.MetricsRegistry.mark_alive`.
        Upper layers re-admit the node under a fresh membership epoch in
        their ``on_readmit`` callbacks — clear() itself only repairs the
        detector's and registry's view.
        """
        nid = node.node_id
        self.detected.pop(nid, None)
        self.state[nid] = ALIVE
        self._last_beat[nid] = self.plat.sim.now
        self._indirect_ack.pop(nid, None)
        self._suspected_at.pop(nid, None)
        self._probe_round.pop(nid, None)
        self._refresh_suspected_gauge()
        self._note(f"clear {nid}")
        m = self.plat.sim.metrics
        if m is not None:
            m.mark_alive(nid)
            m.counter("repro_failures_cleared_total").inc()
