"""Typed error hierarchy for unrecoverable failure states.

The fault-tolerant runtime distinguishes *recoverable* losses (a dead ASU
whose runs can be re-emitted, a dead host whose fragments can be replayed)
from *dead ends* where no redundancy is left — every host gone, every ASU
gone, or no surviving copy of required state.  Dead ends used to surface as
bare ``RuntimeError``s that crashed the caller; they are now typed so the
:class:`~repro.recovery.supervisor.JobSupervisor` escalation ladder can
catch them and convert the attempt into a clean ``abort`` outcome instead
of an unhandled traceback.

``UnrecoverableJobError`` subclasses ``RuntimeError`` so call sites that
already guarded with ``except RuntimeError`` keep working unchanged.
"""

from __future__ import annotations

__all__ = ["UnrecoverableJobError", "StaleEpochError", "StaleLeaseError"]


class UnrecoverableJobError(RuntimeError):
    """No redundancy left: the job cannot make progress under any schedule.

    Raised by the DSM-Sort FT runtime when every node of a required class is
    dead (nothing to replay from, nothing to stripe onto, nothing to take
    over a shard).  The supervisor treats it as terminal for the job —
    retry/replace/restore cannot help when the whole fleet is gone — and
    reports a clean abort with the reason attached.
    """


class StaleEpochError(RuntimeError):
    """A fenced operation presented an epoch older than its writer's fence.

    Membership epochs are fencing tokens (docs/PARTITIONS.md): every
    authority-side mutation — a replica write becoming durable, a manifest
    journal append, a lease completion — names the node it acts for and the
    epoch that node last learned.  A node expelled from the view keeps its
    stale token until re-admission, so its writes are rejected here instead
    of corrupting promoted state.  Callers on the zombie side catch this,
    count the rejection, and drop the operation; it is *not* a job-fatal
    condition (the survivors already own the data).
    """

    def __init__(self, node, token, fence, op: str = "write"):
        self.node = node
        self.token = token
        self.fence = fence
        self.op = op
        super().__init__(
            f"stale-epoch {op} from {node}: token {token} < fence {fence} "
            f"(node expelled from the membership view; re-admission issues "
            f"a fresh epoch)"
        )


class StaleLeaseError(StaleEpochError):
    """A job tried to complete against a lease revoked by the scheduler.

    Leases carry the epoch of the grant; preemption (or a partition-driven
    re-grant) revokes the lease and bumps the manager's epoch, so the old
    holder's finish event no longer validates.  The scheduler counts the
    rejection and re-dispatches — the preempted attempt cannot publish its
    result against resources it no longer owns.
    """

    def __init__(self, node, token, fence):
        super().__init__(node, token, fence, op="lease completion")
