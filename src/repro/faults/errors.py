"""Typed error hierarchy for unrecoverable failure states.

The fault-tolerant runtime distinguishes *recoverable* losses (a dead ASU
whose runs can be re-emitted, a dead host whose fragments can be replayed)
from *dead ends* where no redundancy is left — every host gone, every ASU
gone, or no surviving copy of required state.  Dead ends used to surface as
bare ``RuntimeError``s that crashed the caller; they are now typed so the
:class:`~repro.recovery.supervisor.JobSupervisor` escalation ladder can
catch them and convert the attempt into a clean ``abort`` outcome instead
of an unhandled traceback.

``UnrecoverableJobError`` subclasses ``RuntimeError`` so call sites that
already guarded with ``except RuntimeError`` keep working unchanged.
"""

from __future__ import annotations

__all__ = ["UnrecoverableJobError"]


class UnrecoverableJobError(RuntimeError):
    """No redundancy left: the job cannot make progress under any schedule.

    Raised by the DSM-Sort FT runtime when every node of a required class is
    dead (nothing to replay from, nothing to stripe onto, nothing to take
    over a shard).  The supervisor treats it as terminal for the job —
    retry/replace/restore cannot help when the whole fleet is gone — and
    reports a clean abort with the reason attached.
    """
