"""repro.faults — fault injection and failure recovery for the emulation.

The paper evaluates load management under healthy hardware; this package
exercises the same machinery under failure.  It provides:

- :mod:`~repro.faults.injector` — deterministic scheduled faults
  (fail-stops, degraded clocks, link flaps, message drop/dup/delay/corrupt
  windows, transient disk errors) plus a seeded random model;
- :mod:`~repro.faults.detector` — heartbeat/timeout failure detection with
  a configurable latency bound;
- :mod:`~repro.faults.report` — injected / detected / recovered accounting.

Recovery itself lives with the components that own the state: routing
policies quarantine dead instances (:mod:`repro.core.routing`), the placement
solver re-places functors off dead nodes (:mod:`repro.core.placement`), and
the DSM-Sort runtime re-runs lost run-formation work
(:mod:`repro.dsmsort.runtime`, ``faults=`` mode).
"""

from .detector import FailureDetector
from .errors import UnrecoverableJobError
from .injector import (
    FAULT_KINDS,
    MESSAGE_FAULT_KINDS,
    Fault,
    FaultKind,
    FaultPlan,
    Injector,
    RandomFaultModel,
    corrupt_msg,
    crash_asu,
    crash_host,
    degrade_asu,
    degrade_host,
    delay_msg,
    disk_fault,
    drop_msg,
    dup_msg,
    fault_kinds,
    heal,
    indices_of,
    link_flap,
    lose_replica,
    mask_of,
    partition,
    register_fault_kind,
)
from .report import FaultReport

__all__ = [
    "Fault",
    "FaultKind",
    "FaultPlan",
    "Injector",
    "RandomFaultModel",
    "FailureDetector",
    "FaultReport",
    "UnrecoverableJobError",
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "register_fault_kind",
    "fault_kinds",
    "crash_asu",
    "crash_host",
    "degrade_asu",
    "degrade_host",
    "link_flap",
    "drop_msg",
    "dup_msg",
    "delay_msg",
    "corrupt_msg",
    "disk_fault",
    "lose_replica",
    "partition",
    "heal",
    "mask_of",
    "indices_of",
]
