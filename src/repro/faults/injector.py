"""Deterministic fault injection for the emulated platform.

A :class:`FaultPlan` is an ordered schedule of :class:`Fault` events — ASU or
host fail-stops, degraded clocks, link flaps — and an :class:`Injector` arms
the plan against an :class:`~repro.emulator.platform.ActivePlatform`'s event
loop.  Faults fire as simulator callbacks at their scheduled virtual times, so
the same plan against the same workload and seed reproduces bit-identical
runs.

:class:`RandomFaultModel` draws a plan stochastically (exponential
inter-arrival, MTTF per device class) from a seeded generator, for soak-style
testing where the fault schedule itself is part of the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform

__all__ = [
    "Fault",
    "FaultPlan",
    "RandomFaultModel",
    "Injector",
    "crash_asu",
    "crash_host",
    "degrade_asu",
    "degrade_host",
    "link_flap",
]

#: recognised fault kinds
KINDS = ("crash_asu", "crash_host", "degrade_asu", "degrade_host", "link_flap")


@dataclass(frozen=True, order=True)
class Fault:
    """One scheduled fault.  Ordered by time so plans sort chronologically.

    ``index`` picks the target device (ASU or host index; for ``link_flap``
    the host index, with ``peer`` the ASU index).  ``duration`` applies to
    degradations and flaps; ``factor`` is the degraded-clock multiplier.
    """

    t: float
    kind: str = field(compare=False)
    index: int = field(compare=False)
    duration: float = field(default=0.0, compare=False)
    factor: float = field(default=1.0, compare=False)
    peer: int = field(default=-1, compare=False)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.t < 0:
            raise ValueError("fault time must be nonnegative")
        if self.kind in ("degrade_asu", "degrade_host", "link_flap"):
            if self.duration <= 0:
                raise ValueError(f"{self.kind} needs a positive duration")
        if self.kind in ("degrade_asu", "degrade_host") and not (0 < self.factor < 1):
            raise ValueError("degrade factor must be in (0, 1)")
        if self.kind == "link_flap" and self.peer < 0:
            raise ValueError("link_flap needs a peer (ASU index)")

    def describe(self) -> str:
        if self.kind == "crash_asu":
            return f"t={self.t:.3f} crash asu{self.index}"
        if self.kind == "crash_host":
            return f"t={self.t:.3f} crash host{self.index}"
        if self.kind == "link_flap":
            return (
                f"t={self.t:.3f} flap host{self.index}<->asu{self.peer} "
                f"for {self.duration:.3f}s"
            )
        dev = "asu" if self.kind == "degrade_asu" else "host"
        return (
            f"t={self.t:.3f} degrade {dev}{self.index} x{self.factor:.2f} "
            f"for {self.duration:.3f}s"
        )


# -- constructors --------------------------------------------------------------
def crash_asu(t: float, index: int) -> Fault:
    """Fail-stop ASU ``index`` at time ``t`` (permanent)."""
    return Fault(t=t, kind="crash_asu", index=index)


def crash_host(t: float, index: int) -> Fault:
    """Fail-stop host ``index`` at time ``t`` (permanent)."""
    return Fault(t=t, kind="crash_host", index=index)


def degrade_asu(t: float, index: int, factor: float, duration: float) -> Fault:
    """Scale asu ``index``'s clock by ``factor`` over ``[t, t + duration)``."""
    return Fault(t=t, kind="degrade_asu", index=index, factor=factor, duration=duration)


def degrade_host(t: float, index: int, factor: float, duration: float) -> Fault:
    """Scale host ``index``'s clock by ``factor`` over ``[t, t + duration)``."""
    return Fault(t=t, kind="degrade_host", index=index, factor=factor, duration=duration)


def link_flap(t: float, host: int, asu: int, duration: float) -> Fault:
    """Take the host<->ASU link down over ``[t, t + duration)``.

    The transport is assumed reliable: in-flight messages are delayed past
    the outage, not lost (see :meth:`repro.emulator.net.Network.set_link_down`).
    """
    return Fault(t=t, kind="link_flap", index=host, duration=duration, peer=asu)


class FaultPlan:
    """An immutable-ish, chronologically sorted fault schedule."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: list[Fault] = sorted(faults)

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        self.faults.sort()
        return self

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.faults)} fault(s)>"

    def horizon(self) -> float:
        """Latest instant at which any fault is still active."""
        return max((f.t + f.duration for f in self.faults), default=0.0)

    def validate(self, params: SystemParams) -> "FaultPlan":
        """Check every fault targets a device that exists; returns self."""
        for f in self.faults:
            if f.kind in ("crash_asu", "degrade_asu") and not (0 <= f.index < params.n_asus):
                raise ValueError(f"{f.describe()}: no such ASU (D={params.n_asus})")
            if f.kind in ("crash_host", "degrade_host") and not (0 <= f.index < params.n_hosts):
                raise ValueError(f"{f.describe()}: no such host (H={params.n_hosts})")
            if f.kind == "link_flap":
                if not (0 <= f.index < params.n_hosts):
                    raise ValueError(f"{f.describe()}: no such host (H={params.n_hosts})")
                if not (0 <= f.peer < params.n_asus):
                    raise ValueError(f"{f.describe()}: no such ASU (D={params.n_asus})")
        return self

    def scaled(self, time_factor: float) -> "FaultPlan":
        """A copy with every fault time (and duration) scaled — for re-using
        one schedule across workloads of different lengths."""
        return FaultPlan(
            replace(f, t=f.t * time_factor, duration=f.duration * time_factor)
            for f in self.faults
        )


class RandomFaultModel:
    """Seeded stochastic fault schedule: exponential inter-arrival per device.

    Each device class gets a mean-time-to-failure; crash faults are drawn as a
    Poisson process per device, degradations and flaps likewise with their own
    MTTFs.  ``None`` disables a fault class.  The same ``seed`` always yields
    the same plan for the same parameters and horizon.
    """

    def __init__(
        self,
        seed: int,
        mttf_asu: Optional[float] = None,
        mttf_host: Optional[float] = None,
        mtt_degrade: Optional[float] = None,
        mtt_flap: Optional[float] = None,
        degrade_factor: float = 0.5,
        degrade_duration: float = 1.0,
        flap_duration: float = 0.25,
        max_crashes: int = 1,
    ):
        self.seed = int(seed)
        self.mttf_asu = mttf_asu
        self.mttf_host = mttf_host
        self.mtt_degrade = mtt_degrade
        self.mtt_flap = mtt_flap
        self.degrade_factor = float(degrade_factor)
        self.degrade_duration = float(degrade_duration)
        self.flap_duration = float(flap_duration)
        #: cap on fail-stops per device class, so a random plan cannot kill
        #: every replica (recovery needs at least one survivor)
        self.max_crashes = int(max_crashes)

    def _arrivals(self, rng: np.random.Generator, mttf: float, horizon: float) -> list[float]:
        times, t = [], 0.0
        while True:
            t += float(rng.exponential(mttf))
            if t >= horizon:
                return times
            times.append(t)

    def plan(self, params: SystemParams, horizon: float) -> FaultPlan:
        """Draw the fault schedule over ``[0, horizon)``."""
        rng = np.random.default_rng(self.seed)
        faults: list[Fault] = []
        # Crashes: one Poisson stream per device, truncated to max_crashes
        # per class so the run keeps a quorum of survivors.
        if self.mttf_asu is not None:
            crashes = []
            for d in range(params.n_asus):
                crashes += [(t, d) for t in self._arrivals(rng, self.mttf_asu, horizon)]
            for t, d in sorted(crashes)[: self.max_crashes]:
                faults.append(crash_asu(t, d))
        if self.mttf_host is not None:
            crashes = []
            for h in range(params.n_hosts):
                crashes += [(t, h) for t in self._arrivals(rng, self.mttf_host, horizon)]
            for t, h in sorted(crashes)[: self.max_crashes]:
                faults.append(crash_host(t, h))
        if self.mtt_degrade is not None:
            for d in range(params.n_asus):
                for t in self._arrivals(rng, self.mtt_degrade, horizon):
                    faults.append(
                        degrade_asu(t, d, self.degrade_factor, self.degrade_duration)
                    )
        if self.mtt_flap is not None:
            for h in range(params.n_hosts):
                for d in range(params.n_asus):
                    for t in self._arrivals(rng, self.mtt_flap, horizon):
                        faults.append(link_flap(t, h, d, self.flap_duration))
        return FaultPlan(faults).validate(params)


class Injector:
    """Arms a :class:`FaultPlan` against a platform's event loop.

    Crash faults fail-stop the node through
    :meth:`~repro.emulator.platform.ActivePlatform.fail_node` (processes
    interrupted, traffic dead-lettered).  Degradations scale the target CPU's
    clock and schedule the restore.  Link flaps register a downtime window
    with the network.  Faults against already-dead nodes are recorded in
    :attr:`skipped` rather than fired.
    """

    def __init__(
        self,
        plat: ActivePlatform,
        plan: FaultPlan,
        on_fault: Optional[Callable[[Fault], None]] = None,
    ):
        self.plat = plat
        self.plan = plan.validate(plat.params)
        #: callback invoked after each fault is applied (recovery hook)
        self.on_fault = on_fault
        #: faults actually applied, in firing order
        self.injected: list[Fault] = []
        #: faults skipped because their target was already dead
        self.skipped: list[Fault] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault in the plan.  Call once, before ``run()``."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        now = self.plat.sim.now
        for f in self.plan:
            self.plat.sim.schedule_callback(
                lambda fault=f: self._fire(fault), delay=max(0.0, f.t - now)
            )

    # -- firing ---------------------------------------------------------------
    def _node_for(self, f: Fault):
        if f.kind in ("crash_asu", "degrade_asu"):
            return self.plat.asus[f.index]
        return self.plat.hosts[f.index]

    def _fire(self, f: Fault) -> None:
        if f.kind == "link_flap":
            host_id = self.plat.hosts[f.index].node_id
            asu_id = self.plat.asus[f.peer].node_id
            t = self.plat.sim.now
            self.plat.network.set_link_down(host_id, asu_id, t, t + f.duration)
            self.injected.append(f)
        else:
            node = self._node_for(f)
            if not node.alive:
                self.skipped.append(f)
                return
            if f.kind in ("crash_asu", "crash_host"):
                self.plat.fail_node(node)
            else:  # degrade
                node.cpu.set_speed(f.factor)
                self.plat.sim.schedule_callback(
                    lambda cpu=node.cpu: cpu.set_speed(1.0), delay=f.duration
                )
            self.injected.append(f)
        tracer = self.plat.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.plat.sim.now, "faults", f"inject {f.describe()}", cat="fault"
            )
        m = self.plat.sim.metrics
        if m is not None:
            m.counter("repro_faults_injected_total", kind=f.kind).inc()
        if self.on_fault is not None:
            self.on_fault(f)
