"""Deterministic fault injection for the emulated platform.

A :class:`FaultPlan` is an ordered schedule of :class:`Fault` events — ASU or
host fail-stops, degraded clocks, link flaps, message-level faults, transient
disk errors — and an :class:`Injector` arms the plan against an
:class:`~repro.emulator.platform.ActivePlatform`'s event loop.  Faults fire as
simulator callbacks at their scheduled virtual times, so the same plan against
the same workload and seed reproduces bit-identical runs.

Fault kinds live in a registry (:data:`FAULT_KINDS`): each kind carries its
own field validation, target validation, and description, and new kinds (such
as the message/disk kinds used by :mod:`repro.resilience`) register themselves
via :func:`register_fault_kind` instead of patching a module-level tuple.

:class:`RandomFaultModel` draws a plan stochastically (exponential
inter-arrival, MTTF per device class) from a seeded generator, for soak-style
testing where the fault schedule itself is part of the experiment seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Optional

import numpy as np

from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform

__all__ = [
    "Fault",
    "FaultKind",
    "FaultPlan",
    "RandomFaultModel",
    "Injector",
    "FAULT_KINDS",
    "MESSAGE_FAULT_KINDS",
    "CRASH_FAULT_KINDS",
    "register_fault_kind",
    "fault_kinds",
    "crash_asu",
    "crash_host",
    "degrade_asu",
    "degrade_host",
    "link_flap",
    "drop_msg",
    "dup_msg",
    "delay_msg",
    "corrupt_msg",
    "disk_fault",
    "lose_replica",
    "partition",
    "heal",
    "mask_of",
    "indices_of",
]


@dataclass(frozen=True)
class FaultKind:
    """A registered fault kind: per-kind validation and description hooks.

    ``validate(fault)`` checks field invariants at construction time;
    ``validate_targets(fault, params)`` checks the targeted devices exist
    (called by :meth:`FaultPlan.validate`); ``describe(fault)`` renders the
    human-readable summary used in traces and error messages.
    """

    name: str
    validate: Callable[["Fault"], None]
    validate_targets: Callable[["Fault", SystemParams], None]
    describe: Callable[["Fault"], str]


#: registry of recognised fault kinds, keyed by name
FAULT_KINDS: dict[str, FaultKind] = {}

#: kinds that perturb individual host<->ASU messages (handled by the network)
MESSAGE_FAULT_KINDS = ("drop_msg", "dup_msg", "delay_msg", "corrupt_msg")


def register_fault_kind(
    name: str,
    validate: Optional[Callable[["Fault"], None]] = None,
    validate_targets: Optional[Callable[["Fault", SystemParams], None]] = None,
    describe: Optional[Callable[["Fault"], str]] = None,
) -> FaultKind:
    """Register a new fault kind; returns the :class:`FaultKind` spec.

    Registration makes the kind constructible via :class:`Fault` and valid in
    any :class:`FaultPlan`.  Firing semantics for custom kinds are up to the
    caller (subclass :class:`Injector` or handle them in ``on_fault``).
    """
    if name in FAULT_KINDS:
        raise ValueError(f"fault kind {name!r} already registered")
    spec = FaultKind(
        name=name,
        validate=validate or (lambda f: None),
        validate_targets=validate_targets or (lambda f, p: None),
        describe=describe or (lambda f: f"t={f.t:.3f} {name} #{f.index}"),
    )
    FAULT_KINDS[name] = spec
    return spec


def fault_kinds() -> tuple[str, ...]:
    """All registered kind names, sorted (for error messages and docs)."""
    return tuple(sorted(FAULT_KINDS))


@dataclass(frozen=True, order=True)
class Fault:
    """One scheduled fault.  Ordered by time so plans sort chronologically.

    ``index`` picks the target device (ASU or host index; for ``link_flap``
    and the message kinds the host index, with ``peer`` the ASU index).
    ``duration`` applies to degradations, flaps, and fault windows; ``factor``
    is the degraded-clock multiplier; ``extra`` carries a kind-specific scalar
    (the added latency for ``delay_msg``).
    """

    t: float
    kind: str = field(compare=False)
    index: int = field(compare=False)
    duration: float = field(default=0.0, compare=False)
    factor: float = field(default=1.0, compare=False)
    peer: int = field(default=-1, compare=False)
    extra: float = field(default=0.0, compare=False)

    def __post_init__(self):
        spec = FAULT_KINDS.get(self.kind)
        if spec is None:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; registered kinds: "
                f"{', '.join(fault_kinds())}"
            )
        if self.t < 0:
            raise ValueError("fault time must be nonnegative")
        spec.validate(self)
        if self.duration < 0:
            # Kinds with their own duration rule reject this above; this
            # catches windowless kinds handed an end-before-start window.
            raise ValueError(
                f"{self.kind} window ends before it starts: start t={self.t:g}, "
                f"duration {self.duration:g} < 0"
            )

    def describe(self) -> str:
        return FAULT_KINDS[self.kind].describe(self)


# -- built-in kind registration ------------------------------------------------
def _check_duration(f: Fault) -> None:
    if f.duration <= 0:
        raise ValueError(f"{f.kind} needs a positive duration")


def _check_degrade(f: Fault) -> None:
    _check_duration(f)
    if not (0 < f.factor < 1):
        raise ValueError("degrade factor must be in (0, 1)")


def _check_peered(f: Fault) -> None:
    _check_duration(f)
    if f.peer < 0:
        raise ValueError(f"{f.kind} needs a peer (ASU index)")


def _check_delay(f: Fault) -> None:
    _check_peered(f)
    if f.extra <= 0:
        raise ValueError("delay_msg needs a positive extra delay")


def _targets_asu(f: Fault, p: SystemParams) -> None:
    if not (0 <= f.index < p.n_asus):
        raise ValueError(f"{f.describe()}: no such ASU (D={p.n_asus})")


def _targets_host(f: Fault, p: SystemParams) -> None:
    if not (0 <= f.index < p.n_hosts):
        raise ValueError(f"{f.describe()}: no such host (H={p.n_hosts})")


def _targets_host_asu_pair(f: Fault, p: SystemParams) -> None:
    _targets_host(f, p)
    if not (0 <= f.peer < p.n_asus):
        raise ValueError(f"{f.describe()}: no such ASU (D={p.n_asus})")


def _describe_degrade(dev: str) -> Callable[[Fault], str]:
    return lambda f: (
        f"t={f.t:.3f} degrade {dev}{f.index} x{f.factor:.2f} "
        f"for {f.duration:.3f}s"
    )


def _describe_msg(verb: str) -> Callable[[Fault], str]:
    return lambda f: (
        f"t={f.t:.3f} {verb} host{f.index}<->asu{f.peer} for {f.duration:.3f}s"
    )


register_fault_kind(
    "crash_asu",
    validate_targets=_targets_asu,
    describe=lambda f: f"t={f.t:.3f} crash asu{f.index}",
)
register_fault_kind(
    "crash_host",
    validate_targets=_targets_host,
    describe=lambda f: f"t={f.t:.3f} crash host{f.index}",
)
register_fault_kind(
    "degrade_asu",
    validate=_check_degrade,
    validate_targets=_targets_asu,
    describe=_describe_degrade("asu"),
)
register_fault_kind(
    "degrade_host",
    validate=_check_degrade,
    validate_targets=_targets_host,
    describe=_describe_degrade("host"),
)
register_fault_kind(
    "link_flap",
    validate=_check_peered,
    validate_targets=_targets_host_asu_pair,
    describe=_describe_msg("flap"),
)
register_fault_kind(
    "drop_msg",
    validate=_check_peered,
    validate_targets=_targets_host_asu_pair,
    describe=_describe_msg("drop-msgs"),
)
register_fault_kind(
    "dup_msg",
    validate=_check_peered,
    validate_targets=_targets_host_asu_pair,
    describe=_describe_msg("dup-msgs"),
)
register_fault_kind(
    "delay_msg",
    validate=_check_delay,
    validate_targets=_targets_host_asu_pair,
    describe=lambda f: (
        f"t={f.t:.3f} delay-msgs host{f.index}<->asu{f.peer} "
        f"+{f.extra:.4f}s for {f.duration:.3f}s"
    ),
)
register_fault_kind(
    "corrupt_msg",
    validate=_check_peered,
    validate_targets=_targets_host_asu_pair,
    describe=_describe_msg("corrupt-msgs"),
)
register_fault_kind(
    "disk_fault",
    validate=_check_duration,
    validate_targets=_targets_asu,
    describe=lambda f: f"t={f.t:.3f} disk-fault asu{f.index} for {f.duration:.3f}s",
)
register_fault_kind(
    "lose_replica",
    validate_targets=_targets_asu,
    describe=lambda f: f"t={f.t:.3f} lose-replica asu{f.index}",
)


# -- partition kinds -----------------------------------------------------------
#: ``factor`` encoding for partition asymmetry (the Fault dataclass is frozen,
#: so the cut direction rides in an existing numeric field)
PARTITION_MODES = {0.0: "both", 1.0: "out", 2.0: "in"}


def mask_of(indices: Iterable[int]) -> int:
    """Pack device indices into the bitmask carried by a partition fault."""
    m = 0
    for i in indices:
        if i < 0:
            raise ValueError(f"negative device index {i} in partition group")
        m |= 1 << int(i)
    return m


def indices_of(mask: int) -> tuple[int, ...]:
    """Unpack a partition bitmask back into sorted device indices."""
    out, i, m = [], 0, int(mask)
    while m:
        if m & 1:
            out.append(i)
        m >>= 1
        i += 1
    return tuple(out)


def _check_partition(f: Fault) -> None:
    _check_duration(f)
    if f.index < 0 or f.peer < 0:
        raise ValueError("partition masks must be nonnegative (index=ASU mask, "
                         "peer=host mask)")
    if f.index == 0 and f.peer == 0:
        raise ValueError("partition needs a nonempty minority group")
    if f.factor not in PARTITION_MODES:
        raise ValueError(
            f"partition factor {f.factor} must encode an asymmetry mode: "
            f"{PARTITION_MODES}"
        )


def _targets_partition(f: Fault, p: SystemParams) -> None:
    if f.index >> p.n_asus:
        raise ValueError(f"{f.describe()}: ASU mask exceeds D={p.n_asus}")
    if f.peer >> p.n_hosts:
        raise ValueError(f"{f.describe()}: host mask exceeds H={p.n_hosts}")
    if indices_of(f.index) == tuple(range(p.n_asus)) and \
            indices_of(f.peer) == tuple(range(p.n_hosts)):
        raise ValueError(f"{f.describe()}: the minority group is the whole "
                         f"platform — nothing is on the other side of the cut")


def _describe_partition(f: Fault) -> str:
    group = [f"asu{d}" for d in indices_of(f.index)]
    group += [f"host{h}" for h in indices_of(f.peer)]
    mode = PARTITION_MODES[f.factor]
    return (f"t={f.t:.3f} partition {{{','.join(group)}}} ({mode}) "
            f"for {f.duration:.3f}s")


def _check_heal(f: Fault) -> None:
    if f.index != 0 or f.peer not in (-1, 0):
        raise ValueError("heal takes no target (it ends every active cut)")


register_fault_kind(
    "partition",
    validate=_check_partition,
    validate_targets=_targets_partition,
    describe=_describe_partition,
)
register_fault_kind(
    "heal",
    validate=_check_heal,
    describe=lambda f: f"t={f.t:.3f} heal (end all partitions)",
)


# -- constructors --------------------------------------------------------------
def crash_asu(t: float, index: int) -> Fault:
    """Fail-stop ASU ``index`` at time ``t`` (permanent)."""
    return Fault(t=t, kind="crash_asu", index=index)


def crash_host(t: float, index: int) -> Fault:
    """Fail-stop host ``index`` at time ``t`` (permanent)."""
    return Fault(t=t, kind="crash_host", index=index)


def degrade_asu(t: float, index: int, factor: float, duration: float) -> Fault:
    """Scale asu ``index``'s clock by ``factor`` over ``[t, t + duration)``."""
    return Fault(t=t, kind="degrade_asu", index=index, factor=factor, duration=duration)


def degrade_host(t: float, index: int, factor: float, duration: float) -> Fault:
    """Scale host ``index``'s clock by ``factor`` over ``[t, t + duration)``."""
    return Fault(t=t, kind="degrade_host", index=index, factor=factor, duration=duration)


def link_flap(t: float, host: int, asu: int, duration: float) -> Fault:
    """Take the host<->ASU link down over ``[t, t + duration)``.

    The transport is assumed reliable: in-flight messages are delayed past
    the outage, not lost (see :meth:`repro.emulator.net.Network.set_link_down`).
    """
    return Fault(t=t, kind="link_flap", index=host, duration=duration, peer=asu)


def drop_msg(t: float, host: int, asu: int, duration: float) -> Fault:
    """Silently drop every host<->ASU message sent in ``[t, t + duration)``.

    Unlike :func:`link_flap`, dropped messages are *lost*, not deferred —
    surviving this requires the reliable transport in
    :mod:`repro.resilience.channel`.
    """
    return Fault(t=t, kind="drop_msg", index=host, duration=duration, peer=asu)


def dup_msg(t: float, host: int, asu: int, duration: float) -> Fault:
    """Deliver every host<->ASU message twice in ``[t, t + duration)``."""
    return Fault(t=t, kind="dup_msg", index=host, duration=duration, peer=asu)


def delay_msg(t: float, host: int, asu: int, duration: float, delay: float) -> Fault:
    """Add ``delay`` seconds to every host<->ASU delivery in the window."""
    return Fault(
        t=t, kind="delay_msg", index=host, duration=duration, peer=asu, extra=delay
    )


def corrupt_msg(t: float, host: int, asu: int, duration: float) -> Fault:
    """Flag every host<->ASU message sent in the window as corrupted.

    Corruption is detectable (a checksum mismatch): receivers see
    ``Message.corrupted`` and a reliable channel rejects the payload without
    acknowledging it, forcing a retransmission.
    """
    return Fault(t=t, kind="corrupt_msg", index=host, duration=duration, peer=asu)


def disk_fault(t: float, asu: int, duration: float) -> Fault:
    """Make ASU ``asu``'s disk reads fail transiently over ``[t, t + duration)``.

    Reads started inside the window raise
    :class:`~repro.emulator.disk.DiskFault`; writes are unaffected (the
    write-behind cache absorbs them).
    """
    return Fault(t=t, kind="disk_fault", index=asu, duration=duration)


def lose_replica(t: float, asu: int) -> Fault:
    """Silently discard every replica copy stored on ASU ``asu`` at ``t``.

    Models media loss (a scrubbed-out disk) on an otherwise healthy node:
    the ASU keeps serving, but the :class:`~repro.replica.ReplicationManager`
    must detect the under-replication and re-replicate in the background.
    A no-op for jobs that do not replicate (the ASU's own state is intact);
    fires through the injector's custom-kind branch (``on_fault`` only).
    """
    return Fault(t=t, kind="lose_replica", index=asu)


def partition(t: float, asus: Iterable[int], hosts: Iterable[int] = (),
              duration: float = 0.25, asymmetry: str = "both") -> Fault:
    """Cut the network between a minority group and the rest of the platform.

    ``asus``/``hosts`` name the minority side; every path that crosses the
    cut silently loses its messages (no dead-letter — the destination is
    alive, the *route* is gone) over ``[t, t + duration)``.  Paths within
    the minority and within the majority are untouched.  ``asymmetry``
    picks the severed direction relative to the minority:

    * ``"both"`` — symmetric cut, neither direction crosses;
    * ``"out"``  — minority→majority severed, inbound still delivered
      (the classic zombie case: the node hears the world but cannot ack);
    * ``"in"``   — majority→minority severed, outbound still delivered
      (heartbeats keep flowing, so a network-borne detector stays quiet).

    Nodes keep running throughout — partitions never kill processes, which
    is exactly what makes them dangerous to a fail-stop takeover protocol.
    """
    return Fault(
        t=t, kind="partition", index=mask_of(asus), peer=mask_of(hosts),
        duration=duration,
        factor={"both": 0.0, "out": 1.0, "in": 2.0}[asymmetry],
    )


def heal(t: float) -> Fault:
    """End every partition window still active at ``t``.

    Truncates each open cut to ``t`` (windows already closed are untouched)
    so a seeded plan can model repair crews arriving early.  Re-admission of
    expelled nodes is *not* automatic: it happens when their heartbeats
    resume through the healed network (see docs/PARTITIONS.md).
    """
    return Fault(t=t, kind="heal", index=0, peer=0)


#: kinds that permanently fail-stop their target; two of these against the
#: same device can never both fire (the first leaves nothing to kill), so a
#: plan containing such a pair is a scheduling bug, not a harsher schedule.
CRASH_FAULT_KINDS = ("crash_asu", "crash_host", "crash_coordinator")


class FaultPlan:
    """An immutable-ish, chronologically sorted fault schedule.

    Construction validates the schedule's internal consistency: every entry
    must be a :class:`Fault` of a registered kind, windows must not end
    before they start (checked at :class:`Fault` construction), and no two
    permanent crash faults may target the same device.
    """

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: list[Fault] = sorted(faults)
        self._check_consistency()

    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        self.faults.sort()
        self._check_consistency()
        return self

    def _check_consistency(self) -> None:
        crashed: dict[tuple[str, int], Fault] = {}
        for f in self.faults:
            if not isinstance(f, Fault):
                raise TypeError(
                    f"FaultPlan entries must be Fault instances, got {f!r}"
                )
            if f.kind not in FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {f.kind!r} in plan; registered "
                    f"kinds: {', '.join(fault_kinds())}"
                )
            if f.kind in CRASH_FAULT_KINDS:
                key = (f.kind, f.index)
                prev = crashed.get(key)
                if prev is not None:
                    raise ValueError(
                        f"overlapping crash windows for the same target: "
                        f"[{prev.describe()}] and [{f.describe()}] — a "
                        f"crashed device never restarts, so the second "
                        f"fault could never fire"
                    )
                crashed[key] = f

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:
        return f"<FaultPlan {len(self.faults)} fault(s)>"

    def horizon(self) -> float:
        """Latest instant at which any fault is still active."""
        return max((f.t + f.duration for f in self.faults), default=0.0)

    def kinds(self) -> set[str]:
        """The set of fault kinds present in the plan."""
        return {f.kind for f in self.faults}

    def validate(self, params: SystemParams) -> "FaultPlan":
        """Check every fault targets a device that exists; returns self."""
        for f in self.faults:
            FAULT_KINDS[f.kind].validate_targets(f, params)
        return self

    def scaled(self, time_factor: float) -> "FaultPlan":
        """A copy with every fault time (and duration) scaled — for re-using
        one schedule across workloads of different lengths."""
        return FaultPlan(
            replace(f, t=f.t * time_factor, duration=f.duration * time_factor)
            for f in self.faults
        )


def _first_crash_per_device(
    crashes: list[tuple[float, int]], cap: int
) -> list[tuple[float, int]]:
    """Earliest ``cap`` crashes, at most one per device.

    A device crashed at ``t`` cannot crash again later, and
    :class:`FaultPlan` now rejects such schedules, so the truncation keeps
    only each device's first arrival.  With ``cap == 1`` this is identical
    to the historical ``sorted(crashes)[:1]`` truncation.
    """
    picked: list[tuple[float, int]] = []
    seen: set[int] = set()
    for t, dev in sorted(crashes):
        if dev in seen:
            continue
        seen.add(dev)
        picked.append((t, dev))
        if len(picked) >= cap:
            break
    return picked


class RandomFaultModel:
    """Seeded stochastic fault schedule: exponential inter-arrival per device.

    Each device class gets a mean-time-to-failure; crash faults are drawn as a
    Poisson process per device, degradations, flaps, message faults, and disk
    faults likewise with their own MTTFs.  ``None`` disables a fault class.
    The same ``seed`` always yields the same plan for the same parameters and
    horizon; newly added fault classes draw *after* the legacy classes, so
    plans that only use the legacy classes are bit-identical to older
    versions.
    """

    def __init__(
        self,
        seed: int,
        mttf_asu: Optional[float] = None,
        mttf_host: Optional[float] = None,
        mtt_degrade: Optional[float] = None,
        mtt_flap: Optional[float] = None,
        degrade_factor: float = 0.5,
        degrade_duration: float = 1.0,
        flap_duration: float = 0.25,
        max_crashes: int = 1,
        mtt_drop: Optional[float] = None,
        mtt_dup: Optional[float] = None,
        mtt_delay: Optional[float] = None,
        mtt_corrupt: Optional[float] = None,
        mtt_disk_fault: Optional[float] = None,
        msg_fault_duration: float = 0.02,
        msg_delay: float = 0.002,
        disk_fault_duration: float = 0.05,
        mtt_lose_replica: Optional[float] = None,
        mtt_partition: Optional[float] = None,
        partition_duration: float = 0.25,
        partition_asymmetry: str = "mixed",
        partition_max_asus: int = 1,
    ):
        self.seed = int(seed)
        self.mttf_asu = mttf_asu
        self.mttf_host = mttf_host
        self.mtt_degrade = mtt_degrade
        self.mtt_flap = mtt_flap
        self.degrade_factor = float(degrade_factor)
        self.degrade_duration = float(degrade_duration)
        self.flap_duration = float(flap_duration)
        #: cap on fail-stops per device class, so a random plan cannot kill
        #: every replica (recovery needs at least one survivor)
        self.max_crashes = int(max_crashes)
        self.mtt_drop = mtt_drop
        self.mtt_dup = mtt_dup
        self.mtt_delay = mtt_delay
        self.mtt_corrupt = mtt_corrupt
        self.mtt_disk_fault = mtt_disk_fault
        self.msg_fault_duration = float(msg_fault_duration)
        self.msg_delay = float(msg_delay)
        self.disk_fault_duration = float(disk_fault_duration)
        self.mtt_lose_replica = mtt_lose_replica
        self.mtt_partition = mtt_partition
        self.partition_duration = float(partition_duration)
        if partition_asymmetry not in ("mixed", "both", "out", "in"):
            raise ValueError(
                f"partition_asymmetry {partition_asymmetry!r} must be 'mixed' "
                f"or one of the cut modes 'both'/'out'/'in'"
            )
        self.partition_asymmetry = partition_asymmetry
        #: size of the minority ASU group each drawn cut isolates
        self.partition_max_asus = int(partition_max_asus)

    def _arrivals(self, rng: np.random.Generator, mttf: float, horizon: float) -> list[float]:
        times, t = [], 0.0
        while True:
            t += float(rng.exponential(mttf))
            if t >= horizon:
                return times
            times.append(t)

    def plan(self, params: SystemParams, horizon: float) -> FaultPlan:
        """Draw the fault schedule over ``[0, horizon)``."""
        rng = np.random.default_rng(self.seed)
        faults: list[Fault] = []
        # Crashes: one Poisson stream per device, truncated to max_crashes
        # per class so the run keeps a quorum of survivors.
        if self.mttf_asu is not None:
            crashes = []
            for d in range(params.n_asus):
                crashes += [(t, d) for t in self._arrivals(rng, self.mttf_asu, horizon)]
            for t, d in _first_crash_per_device(crashes, self.max_crashes):
                faults.append(crash_asu(t, d))
        if self.mttf_host is not None:
            crashes = []
            for h in range(params.n_hosts):
                crashes += [(t, h) for t in self._arrivals(rng, self.mttf_host, horizon)]
            for t, h in _first_crash_per_device(crashes, self.max_crashes):
                faults.append(crash_host(t, h))
        if self.mtt_degrade is not None:
            for d in range(params.n_asus):
                for t in self._arrivals(rng, self.mtt_degrade, horizon):
                    faults.append(
                        degrade_asu(t, d, self.degrade_factor, self.degrade_duration)
                    )
        if self.mtt_flap is not None:
            for h in range(params.n_hosts):
                for d in range(params.n_asus):
                    for t in self._arrivals(rng, self.mtt_flap, horizon):
                        faults.append(link_flap(t, h, d, self.flap_duration))
        # Message-fault windows per (host, asu) pair.  Drawn after the legacy
        # classes so legacy-only plans stay bit-identical across versions.
        msg_classes = (
            (self.mtt_drop, "drop"),
            (self.mtt_dup, "dup"),
            (self.mtt_delay, "delay"),
            (self.mtt_corrupt, "corrupt"),
        )
        for mtt, which in msg_classes:
            if mtt is None:
                continue
            for h in range(params.n_hosts):
                for d in range(params.n_asus):
                    for t in self._arrivals(rng, mtt, horizon):
                        if which == "drop":
                            faults.append(drop_msg(t, h, d, self.msg_fault_duration))
                        elif which == "dup":
                            faults.append(dup_msg(t, h, d, self.msg_fault_duration))
                        elif which == "delay":
                            faults.append(
                                delay_msg(t, h, d, self.msg_fault_duration, self.msg_delay)
                            )
                        else:
                            faults.append(corrupt_msg(t, h, d, self.msg_fault_duration))
        if self.mtt_disk_fault is not None:
            for d in range(params.n_asus):
                for t in self._arrivals(rng, self.mtt_disk_fault, horizon):
                    faults.append(disk_fault(t, d, self.disk_fault_duration))
        # Replica-loss windows, drawn strictly after every legacy class.
        # Draw-order contract (pinned by tests/test_replication.py and
        # tests/test_membership.py): any new fault class appends its draws
        # *here*, after all existing ones, so enabling it cannot shift the
        # draws of a committed seeded plan.
        if self.mtt_lose_replica is not None:
            for d in range(params.n_asus):
                for t in self._arrivals(rng, self.mtt_lose_replica, horizon):
                    faults.append(lose_replica(t, d))
        # Partition cuts: one Poisson stream for the whole platform (a cut is
        # a fabric event, not a per-device one).  Each arrival isolates a
        # contiguous minority ASU group and draws its asymmetry.  Drawn after
        # lose_replica per the draw-order contract above.
        if self.mtt_partition is not None:
            group_size = max(1, min(self.partition_max_asus, params.n_asus - 1))
            for t in self._arrivals(rng, self.mtt_partition, horizon):
                start = int(rng.integers(params.n_asus))
                group = [(start + k) % params.n_asus for k in range(group_size)]
                if self.partition_asymmetry == "mixed":
                    mode = ("both", "out", "in")[int(rng.integers(3))]
                else:
                    mode = self.partition_asymmetry
                faults.append(
                    partition(t, group, duration=self.partition_duration,
                              asymmetry=mode)
                )
        return FaultPlan(faults).validate(params)


class Injector:
    """Arms a :class:`FaultPlan` against a platform's event loop.

    Crash faults fail-stop the node through
    :meth:`~repro.emulator.platform.ActivePlatform.fail_node` (processes
    interrupted, traffic dead-lettered).  Degradations scale the target CPU's
    clock and schedule the restore.  Link flaps register a downtime window
    with the network; message faults register drop/dup/delay/corrupt windows;
    disk faults register transient read-error windows on the target ASU's
    disk.  Faults against already-dead nodes are recorded in :attr:`skipped`
    rather than fired.
    """

    def __init__(
        self,
        plat: ActivePlatform,
        plan: FaultPlan,
        on_fault: Optional[Callable[[Fault], None]] = None,
    ):
        self.plat = plat
        self.plan = plan.validate(plat.params)
        #: callback invoked after each fault is applied (recovery hook)
        self.on_fault = on_fault
        #: faults actually applied, in firing order
        self.injected: list[Fault] = []
        #: faults skipped because their target was already dead
        self.skipped: list[Fault] = []
        self._armed = False

    def arm(self) -> None:
        """Schedule every fault in the plan.  Call once, before ``run()``."""
        if self._armed:
            raise RuntimeError("injector already armed")
        self._armed = True
        now = self.plat.sim.now
        for f in self.plan:
            self.plat.sim.schedule_callback(
                lambda fault=f: self._fire(fault), delay=max(0.0, f.t - now)
            )

    # -- firing ---------------------------------------------------------------
    def _node_for(self, f: Fault):
        if f.kind in ("crash_asu", "degrade_asu", "disk_fault"):
            return self.plat.asus[f.index]
        return self.plat.hosts[f.index]

    def _fire(self, f: Fault) -> None:
        t = self.plat.sim.now
        if f.kind == "link_flap":
            host_id = self.plat.hosts[f.index].node_id
            asu_id = self.plat.asus[f.peer].node_id
            self.plat.network.set_link_down(host_id, asu_id, t, t + f.duration)
            self.injected.append(f)
        elif f.kind in MESSAGE_FAULT_KINDS:
            host_id = self.plat.hosts[f.index].node_id
            asu_id = self.plat.asus[f.peer].node_id
            self.plat.network.set_msg_fault(
                host_id, asu_id, f.kind, t, t + f.duration, extra=f.extra
            )
            self.injected.append(f)
        elif f.kind == "partition":
            group = [self.plat.asus[d].node_id for d in indices_of(f.index)]
            group += [self.plat.hosts[h].node_id for h in indices_of(f.peer)]
            self.plat.network.set_partition(
                group, t, t + f.duration, mode=PARTITION_MODES[f.factor]
            )
            self.injected.append(f)
        elif f.kind == "heal":
            self.plat.network.heal_partitions(t)
            self.injected.append(f)
        elif f.kind in (
            "crash_asu", "crash_host", "degrade_asu", "degrade_host",
            "disk_fault",
        ):
            node = self._node_for(f)
            if not node.alive:
                self.skipped.append(f)
                return
            if f.kind in ("crash_asu", "crash_host"):
                self.plat.fail_node(node)
            elif f.kind == "disk_fault":
                node.disk.set_fault_window(t, t + f.duration)
            else:  # degrade
                node.cpu.set_speed(f.factor)
                self.plat.sim.schedule_callback(
                    lambda cpu=node.cpu: cpu.set_speed(1.0), delay=f.duration
                )
            self.injected.append(f)
        else:
            # Custom-registered kinds have no built-in platform semantics;
            # they fire through ``on_fault`` only.  (They used to fall into
            # the degrade branch and silently rescale a host clock.)
            self.injected.append(f)
        tracer = self.plat.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.plat.sim.now, "faults", f"inject {f.describe()}", cat="fault"
            )
        m = self.plat.sim.metrics
        if m is not None:
            m.counter("repro_faults_injected_total", kind=f.kind).inc()
        if self.on_fault is not None:
            self.on_fault(f)
