"""Injected vs. detected vs. recovered accounting for a faulted run.

A :class:`FaultReport` joins the injector's fired-fault log, the detector's
declaration times, and the workload's recovery log (when it keeps one, e.g.
:class:`~repro.dsmsort.runtime.DsmSortRun` in fault-tolerant mode) into one
summary: per-crash detection latency and MTTR, plus event counts by kind.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .detector import FailureDetector
from .injector import Fault, Injector

__all__ = ["FaultReport"]

_CRASH_KINDS = {"crash_asu": "asu", "crash_host": "host"}


class FaultReport:
    """Summary of one faulted run."""

    def __init__(
        self,
        injected: list[Fault],
        skipped: list[Fault],
        detected: Mapping[str, float],
        recovered_at: Optional[Mapping[str, float]] = None,
    ):
        self.injected = list(injected)
        self.skipped = list(skipped)
        self.detected = dict(detected)
        self.recovered_at = dict(recovered_at or {})

    @classmethod
    def from_run(
        cls,
        injector: Injector,
        detector: FailureDetector,
        recovered_at: Optional[Mapping[str, float]] = None,
    ) -> "FaultReport":
        return cls(injector.injected, injector.skipped, detector.detected, recovered_at)

    # -- derived ---------------------------------------------------------------
    def crash_rows(self) -> list[list]:
        """One row per injected crash: node, t_fault, t_detect, latency,
        t_recovered, MTTR (detection-to-recovery)."""
        rows = []
        for f in self.injected:
            kind = _CRASH_KINDS.get(f.kind)
            if kind is None:
                continue
            nid = f"{kind}{f.index}"
            t_det = self.detected.get(nid)
            t_rec = self.recovered_at.get(nid)
            rows.append([
                nid,
                f.t,
                t_det if t_det is not None else "-",
                (t_det - f.t) if t_det is not None else "-",
                t_rec if t_rec is not None else "-",
                (t_rec - t_det) if (t_rec is not None and t_det is not None) else "-",
            ])
        return rows

    def counts(self) -> dict[str, int]:
        n_crashes = sum(1 for f in self.injected if f.kind in _CRASH_KINDS)
        return {
            "injected": len(self.injected),
            "skipped": len(self.skipped),
            "crashes": n_crashes,
            "detected": len(self.detected),
            "recovered": len(self.recovered_at),
        }

    def mean_detection_latency(self) -> Optional[float]:
        lats = [
            r[3] for r in self.crash_rows() if not isinstance(r[3], str)
        ]
        return sum(lats) / len(lats) if lats else None

    def mean_mttr(self) -> Optional[float]:
        """Mean time from detection to recovery, over recovered crashes."""
        ts = [r[5] for r in self.crash_rows() if not isinstance(r[5], str)]
        return sum(ts) / len(ts) if ts else None

    def render(self) -> str:
        # Imported here: repro.bench pulls in the figure benches, which import
        # the dsmsort runtime, which imports this package.
        from ..bench.report import render_table

        c = self.counts()
        lines = [
            f"faults: {c['injected']} injected ({c['crashes']} crashes), "
            f"{c['skipped']} skipped, {c['detected']} detected, "
            f"{c['recovered']} recovered"
        ]
        rows = self.crash_rows()
        if rows:
            lines.append(
                render_table(
                    ["node", "t_fault", "t_detect", "latency", "t_recover", "mttr"],
                    rows,
                )
            )
        lat = self.mean_detection_latency()
        mttr = self.mean_mttr()
        if lat is not None:
            lines.append(f"mean detection latency {lat:.3f}s")
        if mttr is not None:
            lines.append(f"mean MTTR {mttr:.3f}s")
        return "\n".join(lines)

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"<FaultReport injected={c['injected']} detected={c['detected']} "
            f"recovered={c['recovered']}>"
        )
