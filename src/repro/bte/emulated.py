"""Emulated BTE: a MemoryBTE whose transfers charge virtual disk time.

Inside the emulator, data stored "on an ASU" lives in RAM (so functors can
really process it) while every append/read charges the ASU's disk timeline,
making I/O time visible to the simulation.  Because disk operations must
happen inside a process coroutine, this BTE exposes *generator* variants
(``append_g`` / ``read_next_g``) alongside the plain BTE interface (which
performs the data movement without charging time — useful for setup).
"""

from __future__ import annotations

import numpy as np

from ..emulator.node import Asu
from .base import StreamHandle
from .memory import MemoryBTE

__all__ = ["EmulatedBTE"]


class EmulatedBTE(MemoryBTE):
    """Stream store bound to one ASU's disk."""

    def __init__(self, asu: Asu, block_size: int = 256 * 1024):
        super().__init__(asu.params.schema, block_size)
        self.asu = asu

    # -- timed variants (process generators) --------------------------------
    def append_g(self, handle: StreamHandle, batch: np.ndarray):
        """Append and charge disk write time (write-behind semantics)."""
        self.append(handle, batch)
        if batch.shape[0]:
            yield from self.asu.disk_write(int(batch.nbytes))

    def read_next_g(self, handle: StreamHandle, count: int):
        """Sequential read charging disk streaming time; returns the batch."""
        batch = self.read_next(handle, count)
        if batch.shape[0]:
            yield from self.asu.disk_read(int(batch.nbytes))
        return batch

    def read_at_g(self, handle: StreamHandle, start: int, count: int):
        """Positioned read charging disk streaming time."""
        batch = self.read_at(handle, start, count)
        if batch.shape[0]:
            yield from self.asu.disk_read(int(batch.nbytes))
        return batch

    def drain_g(self):
        """Wait for outstanding (write-behind) transfers to hit the platter."""
        yield from self.asu.disk.drain()
