"""Block Transfer Engine (BTE) abstraction.

TPIE's pluggable BTE "abstracts the underlying storage system block access
operations, facilitating portability to various storage and access models"
(§3.1).  A BTE stores named *streams* of fixed-size records and moves them in
blocks; containers and the external-memory algorithms sit on top and never
touch the storage directly.

Implementations: :class:`~repro.bte.memory.MemoryBTE` (RAM),
:class:`~repro.bte.file.FileBTE` (on-disk), and
:class:`~repro.bte.emulated.EmulatedBTE` (charges virtual disk time inside
the emulator).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..util.records import DEFAULT_SCHEMA, RecordSchema

__all__ = ["BTE", "StreamHandle", "BteStats", "BteError"]


class BteError(RuntimeError):
    """Raised on misuse of a BTE (unknown stream, closed handle, ...)."""


@dataclass
class BteStats:
    """Logical-block I/O accounting (the I/O-complexity measure of §2.1)."""

    block_size: int = 256 * 1024
    blocks_read: int = 0
    blocks_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def record_read(self, nbytes: int) -> None:
        self.bytes_read += int(nbytes)
        self.blocks_read += -(-int(nbytes) // self.block_size)  # ceil div

    def record_write(self, nbytes: int) -> None:
        self.bytes_written += int(nbytes)
        self.blocks_written += -(-int(nbytes) // self.block_size)

    @property
    def total_ios(self) -> int:
        return self.blocks_read + self.blocks_written


@dataclass
class StreamHandle:
    """An open stream: name, schema, and a read cursor."""

    name: str
    schema: RecordSchema
    bte: "BTE"
    cursor: int = 0
    closed: bool = False
    _extra: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return self.bte.length(self)

    def _check_open(self) -> None:
        if self.closed:
            raise BteError(f"stream {self.name!r} handle is closed")


class BTE(abc.ABC):
    """Abstract stream store.  All sizes are in records unless noted."""

    def __init__(self, schema: RecordSchema = DEFAULT_SCHEMA, block_size: int = 256 * 1024):
        self.schema = schema
        self.stats = BteStats(block_size=block_size)

    # -- lifecycle -----------------------------------------------------------
    @abc.abstractmethod
    def create(self, name: str, schema: RecordSchema | None = None) -> StreamHandle:
        """Create an empty stream (error if it exists)."""

    @abc.abstractmethod
    def open(self, name: str) -> StreamHandle:
        """Open an existing stream with the cursor at record 0."""

    @abc.abstractmethod
    def delete(self, name: str) -> None:
        """Remove a stream and release its storage."""

    @abc.abstractmethod
    def exists(self, name: str) -> bool: ...

    @abc.abstractmethod
    def list_streams(self) -> list[str]: ...

    # -- data ------------------------------------------------------------------
    @abc.abstractmethod
    def append(self, handle: StreamHandle, batch: np.ndarray) -> None:
        """Append a record batch to the end of the stream."""

    @abc.abstractmethod
    def read_at(self, handle: StreamHandle, start: int, count: int) -> np.ndarray:
        """Read up to ``count`` records beginning at record ``start``."""

    @abc.abstractmethod
    def length(self, handle: StreamHandle) -> int:
        """Number of records currently in the stream."""

    @abc.abstractmethod
    def truncate_front(self, handle: StreamHandle, count: int) -> None:
        """Release the first ``count`` records (destructive-scan support).

        Record numbering is preserved: record ``i`` keeps its index, the
        storage for records below ``count`` is simply freed.
        """

    # -- conveniences built on the primitives ------------------------------
    def read_next(self, handle: StreamHandle, count: int) -> np.ndarray:
        """Sequential read at the handle's cursor; advances the cursor."""
        handle._check_open()
        batch = self.read_at(handle, handle.cursor, count)
        handle.cursor += batch.shape[0]
        return batch

    def at_end(self, handle: StreamHandle) -> bool:
        return handle.cursor >= self.length(handle)

    def write_all(self, name: str, batch: np.ndarray) -> StreamHandle:
        """Create a stream holding exactly ``batch``."""
        h = self.create(name)
        self.append(h, batch)
        return h

    def read_all(self, handle: StreamHandle) -> np.ndarray:
        """Read the whole stream regardless of cursor position."""
        return self.read_at(handle, 0, self.length(handle))

    def close(self, handle: StreamHandle) -> None:
        handle.closed = True
