"""In-memory BTE: the default substrate for tests and emulated runs.

Stores each stream as a list of appended chunks; reads materialise slices
across chunk boundaries.  ``truncate_front`` swaps freed chunks for a
zero-length placeholder so record numbering is stable while storage is
released — the semantics destructive scans rely on (§3.2).
"""

from __future__ import annotations

import numpy as np

from ..util.records import DEFAULT_SCHEMA, RecordSchema
from .base import BTE, BteError, StreamHandle

__all__ = ["MemoryBTE"]


class _MemStream:
    __slots__ = ("schema", "chunks", "starts", "n_records", "n_freed")

    def __init__(self, schema: RecordSchema):
        self.schema = schema
        self.chunks: list[np.ndarray] = []
        #: global record index of each chunk's first record
        self.starts: list[int] = []
        self.n_records = 0
        #: records logically freed from the front
        self.n_freed = 0


class MemoryBTE(BTE):
    """RAM-backed stream store."""

    def __init__(self, schema: RecordSchema = DEFAULT_SCHEMA, block_size: int = 256 * 1024):
        super().__init__(schema, block_size)
        self._streams: dict[str, _MemStream] = {}

    # -- lifecycle -----------------------------------------------------------
    def create(self, name: str, schema: RecordSchema | None = None) -> StreamHandle:
        if name in self._streams:
            raise BteError(f"stream {name!r} already exists")
        schema = schema or self.schema
        self._streams[name] = _MemStream(schema)
        return StreamHandle(name=name, schema=schema, bte=self)

    def open(self, name: str) -> StreamHandle:
        st = self._get(name)
        return StreamHandle(name=name, schema=st.schema, bte=self)

    def delete(self, name: str) -> None:
        if name not in self._streams:
            raise BteError(f"stream {name!r} does not exist")
        del self._streams[name]

    def exists(self, name: str) -> bool:
        return name in self._streams

    def list_streams(self) -> list[str]:
        return sorted(self._streams)

    # -- data ------------------------------------------------------------------
    def append(self, handle: StreamHandle, batch: np.ndarray) -> None:
        handle._check_open()
        st = self._get(handle.name)
        if batch.dtype != st.schema.dtype:
            raise BteError(
                f"batch dtype {batch.dtype} does not match stream schema "
                f"{st.schema.dtype}"
            )
        if batch.shape[0] == 0:
            return
        st.chunks.append(batch)
        st.starts.append(st.n_records)
        st.n_records += batch.shape[0]
        self.stats.record_write(batch.nbytes)

    def read_at(self, handle: StreamHandle, start: int, count: int) -> np.ndarray:
        handle._check_open()
        st = self._get(handle.name)
        if start < st.n_freed:
            raise BteError(
                f"read at {start} but records below {st.n_freed} were freed"
            )
        end = min(start + max(count, 0), st.n_records)
        if end <= start:
            return np.empty(0, dtype=st.schema.dtype)
        pieces = []
        # Locate overlapping chunks (linear scan is fine: chunk counts are
        # small; bisect would need starts of freed chunks kept consistent).
        for cstart, chunk in zip(st.starts, st.chunks):
            cend = cstart + chunk.shape[0]
            if cend <= start or cstart >= end:
                continue
            lo = max(start - cstart, 0)
            hi = min(end - cstart, chunk.shape[0])
            pieces.append(chunk[lo:hi])
        out = pieces[0].copy() if len(pieces) == 1 else np.concatenate(pieces)
        self.stats.record_read(out.nbytes)
        return out

    def length(self, handle: StreamHandle) -> int:
        return self._get(handle.name).n_records

    def truncate_front(self, handle: StreamHandle, count: int) -> None:
        handle._check_open()
        st = self._get(handle.name)
        count = min(count, st.n_records)
        if count <= st.n_freed:
            return
        keep_chunks, keep_starts = [], []
        for cstart, chunk in zip(st.starts, st.chunks):
            if cstart + chunk.shape[0] <= count:
                continue  # wholly freed
            keep_chunks.append(chunk)
            keep_starts.append(cstart)
        st.chunks = keep_chunks
        st.starts = keep_starts
        st.n_freed = count

    # -- internals ----------------------------------------------------------
    def _get(self, name: str) -> _MemStream:
        try:
            return self._streams[name]
        except KeyError:
            raise BteError(f"stream {name!r} does not exist") from None

    def nbytes_live(self, name: str) -> int:
        """Bytes currently held for a stream (shrinks under truncate_front)."""
        st = self._get(name)
        return sum(c.nbytes for c in st.chunks)
