"""File-backed BTE: streams as flat binary files in a directory.

This is the substrate for genuinely out-of-core runs of the TPIE layer (the
external sort and priority queue work unchanged over it).  Each stream is one
file of packed records; ``truncate_front`` is logical (a front pointer in a
sidecar), since hole-punching is not portable.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import numpy as np

from ..util.records import DEFAULT_SCHEMA, RecordSchema
from .base import BTE, BteError, StreamHandle

__all__ = ["FileBTE"]

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]")


def _fs_name(name: str) -> str:
    return _SAFE_NAME.sub("_", name)


class FileBTE(BTE):
    """Directory-of-files stream store."""

    def __init__(
        self,
        root: str | Path,
        schema: RecordSchema = DEFAULT_SCHEMA,
        block_size: int = 256 * 1024,
    ):
        super().__init__(schema, block_size)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: name -> (path, schema, n_freed)
        self._meta: dict[str, dict] = {}
        self._load_existing()

    def _load_existing(self) -> None:
        for meta_path in self.root.glob("*.meta.json"):
            info = json.loads(meta_path.read_text())
            self._meta[info["name"]] = info

    def _paths(self, name: str) -> tuple[Path, Path]:
        base = _fs_name(name)
        return self.root / f"{base}.dat", self.root / f"{base}.meta.json"

    def _save_meta(self, info: dict) -> None:
        _, meta_path = self._paths(info["name"])
        meta_path.write_text(json.dumps(info))

    def _dtype(self, name: str) -> np.dtype:
        info = self._meta[name]
        return RecordSchema(info["record_size"], info["key_dtype"]).dtype

    # -- lifecycle ------------------------------------------------------------
    def create(self, name: str, schema: RecordSchema | None = None) -> StreamHandle:
        if name in self._meta:
            raise BteError(f"stream {name!r} already exists")
        schema = schema or self.schema
        data_path, _ = self._paths(name)
        data_path.write_bytes(b"")
        info = {
            "name": name,
            "record_size": schema.record_size,
            "key_dtype": schema.key_dtype,
            "n_freed": 0,
        }
        self._meta[name] = info
        self._save_meta(info)
        return StreamHandle(name=name, schema=schema, bte=self)

    def open(self, name: str) -> StreamHandle:
        info = self._get(name)
        schema = RecordSchema(info["record_size"], info["key_dtype"])
        return StreamHandle(name=name, schema=schema, bte=self)

    def delete(self, name: str) -> None:
        self._get(name)
        data_path, meta_path = self._paths(name)
        data_path.unlink(missing_ok=True)
        meta_path.unlink(missing_ok=True)
        del self._meta[name]

    def exists(self, name: str) -> bool:
        return name in self._meta

    def list_streams(self) -> list[str]:
        return sorted(self._meta)

    # -- data ---------------------------------------------------------------------
    def append(self, handle: StreamHandle, batch: np.ndarray) -> None:
        handle._check_open()
        info = self._get(handle.name)
        dtype = self._dtype(handle.name)
        if batch.dtype != dtype:
            raise BteError(
                f"batch dtype {batch.dtype} does not match stream schema {dtype}"
            )
        if batch.shape[0] == 0:
            return
        data_path, _ = self._paths(handle.name)
        with open(data_path, "ab") as f:
            f.write(np.ascontiguousarray(batch).tobytes())
        self.stats.record_write(batch.nbytes)

    def read_at(self, handle: StreamHandle, start: int, count: int) -> np.ndarray:
        handle._check_open()
        info = self._get(handle.name)
        dtype = self._dtype(handle.name)
        if start < info["n_freed"]:
            raise BteError(
                f"read at {start} but records below {info['n_freed']} were freed"
            )
        total = self.length(handle)
        end = min(start + max(count, 0), total)
        if end <= start:
            return np.empty(0, dtype=dtype)
        data_path, _ = self._paths(handle.name)
        itemsize = dtype.itemsize
        with open(data_path, "rb") as f:
            f.seek(start * itemsize)
            raw = f.read((end - start) * itemsize)
        out = np.frombuffer(raw, dtype=dtype).copy()
        self.stats.record_read(out.nbytes)
        return out

    def length(self, handle: StreamHandle) -> int:
        self._get(handle.name)
        data_path, _ = self._paths(handle.name)
        return os.path.getsize(data_path) // self._dtype(handle.name).itemsize

    def truncate_front(self, handle: StreamHandle, count: int) -> None:
        handle._check_open()
        info = self._get(handle.name)
        info["n_freed"] = max(info["n_freed"], min(count, self.length(handle)))
        self._save_meta(info)

    # -- internals ---------------------------------------------------------------
    def _get(self, name: str) -> dict:
        try:
            return self._meta[name]
        except KeyError:
            raise BteError(f"stream {name!r} does not exist") from None
