"""Block Transfer Engines: pluggable stream storage (TPIE's BTE, §3.1)."""

from .base import BTE, BteError, BteStats, StreamHandle
from .emulated import EmulatedBTE
from .file import FileBTE
from .memory import MemoryBTE

__all__ = [
    "BTE",
    "BteError",
    "BteStats",
    "StreamHandle",
    "EmulatedBTE",
    "FileBTE",
    "MemoryBTE",
]
