"""Ablation sweeps for the design choices DESIGN.md calls out.

* ``sweep_c`` — sensitivity to the host:ASU power ratio c (paper simulates
  c = 4 and c = 8, §6);
* ``sweep_routing`` — routing policies under the Figure-10 skew workload;
* ``sweep_gamma_split`` — pass-2 merge fan-in split γ1·γ2 = γ between ASUs
  and hosts (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import ConfigSolver, DSMConfig
from ..dsmsort.runtime import DsmSortJob
from .fig9 import BASELINE_ALPHA, fig9_params
from .report import render_series_table

__all__ = ["sweep_c", "sweep_routing", "sweep_gamma_split", "SweepResult"]


@dataclass
class SweepResult:
    title: str
    x_label: str
    xs: list = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        out = render_series_table(self.x_label, self.xs, self.series, title=self.title)
        if self.notes:
            out += f"\n{self.notes}"
        return out + "\n"


def sweep_c(
    n_records: int = 1 << 17,
    asu_counts=(2, 8, 32),
    cs=(4.0, 8.0),
    alpha: int = 64,
    gamma: int = 64,
    seed: int = 42,
) -> SweepResult:
    """Speedup vs D for c = 4 and c = 8 — stronger ASUs help everywhere."""
    res = SweepResult(
        title=f"Ablation — ASU power ratio c (alpha={alpha}, n={n_records})",
        x_label="ASUs",
        xs=list(asu_counts),
        notes="speedup vs passive baseline; c=4 ASUs are twice as strong as c=8",
    )
    for c in cs:
        vals = []
        for D in asu_counts:
            params = fig9_params(D, c=c)
            solver = ConfigSolver(params, gamma=gamma)
            cfg = solver.config_for_alpha(n_records, alpha)
            base = solver.config_for_alpha(n_records, BASELINE_ALPHA)
            t_b = DsmSortJob(params, base, active=False, seed=seed).run_pass1().makespan
            t_a = DsmSortJob(params, cfg, active=True, seed=seed).run_pass1().makespan
            vals.append(t_b / t_a)
        res.series[f"c={c:g}"] = vals
    return res


def sweep_routing(
    n_records: int = 1 << 17,
    policies=("static", "round_robin", "sr", "rc", "jsq", "adaptive_switch"),
    alpha: int = 16,
    gamma: int = 64,
    seed: int = 42,
) -> SweepResult:
    """Makespan and imbalance per routing policy under the skew workload."""
    params = fig9_params(n_asus=16, n_hosts=2)
    cfg = ConfigSolver(params, gamma=gamma).config_for_alpha(n_records, alpha)
    res = SweepResult(
        title=(
            f"Ablation — routing policy under skew "
            f"(2 hosts, 16 ASUs, alpha={alpha}, half-uniform/half-exponential)"
        ),
        x_label="policy",
        xs=list(policies),
    )
    makespans, imbalances = [], []
    for policy in policies:
        job = DsmSortJob(
            params, cfg, policy=policy,
            workload="half_uniform_half_exponential", seed=seed,
        )
        r = job.run_pass1()
        makespans.append(r.makespan)
        imbalances.append(r.imbalance)
    res.series["makespan(s)"] = makespans
    res.series["imbalance(max/mean)"] = imbalances
    return res


def sweep_gamma_split(
    n_records: int = 1 << 16,
    gamma: int = 64,
    gamma1s=(1, 2, 4),
    alpha: int = 8,
    n_asus: int = 16,
    seed: int = 42,
) -> SweepResult:
    """Pass-2 makespan vs the ASU-side share γ1 of the merge fan-in.

    Offloading merge fan-in to ASUs pays only when the aggregate ASU capacity
    is large (many ASUs) and each ASU holds several runs per bucket: with
    γ = 64 runs per bucket over 16 ASUs, each ASU can pre-merge groups of up
    to 4.  On a host-bottlenecked platform that trims the host's per-record
    merge cost from log2(γ) to log2(γ/γ1) compares.
    """
    params = fig9_params(n_asus=n_asus, n_hosts=1)
    res = SweepResult(
        title=(
            f"Ablation — merge split gamma1 x gamma2 = {gamma} "
            f"({n_asus} ASUs, 1 host, n={n_records})"
        ),
        x_label="gamma1",
        xs=list(gamma1s),
        notes="gamma1 = ASU-side pre-merge fan-in; gamma2 = host-side fan-in",
    )
    makespans, host_util = [], []
    for g1 in gamma1s:
        cfg = DSMConfig(
            n_records=n_records,
            alpha=alpha,
            beta=max(1, n_records // (alpha * gamma)),
            gamma=gamma,
            gamma1=g1,
        )
        job = DsmSortJob(params, cfg, seed=seed)
        job.run_pass1()
        r2 = job.run_pass2()
        job.verify()
        makespans.append(r2.makespan)
        host_util.append(r2.host_util[0])
    res.series["pass2 makespan(s)"] = makespans
    res.series["host util"] = host_util
    return res
