"""Perf-regression gate: compare fresh ``BENCH_*.json`` against baselines.

The bench harness (see :func:`repro.bench.report.write_bench_json`) emits one
canonical-JSON payload per figure.  The emulation is deterministic, so a
committed snapshot under ``benchmarks/baseline/`` pins every makespan,
speedup, and imbalance the suite produces; this module re-compares a fresh
run against those snapshots and fails CI when any number drifts beyond
tolerance.

Comparison rules:

* ``schema_version`` must match :data:`repro.bench.report.SCHEMA_VERSION`
  exactly on both sides — mismatched layouts are a gate failure, not a diff.
* numbers compare with relative tolerance (``--rtol``, default 2%) plus an
  absolute floor (``--atol``) for values near zero;
* strings, booleans and nulls compare exactly;
* lists compare element-wise (length mismatch fails);
* dicts compare key-wise (a key present on only one side fails);
* a baseline file with no fresh counterpart fails (the bench silently
  disappeared); a fresh file with no baseline is reported as *new* and
  passes, so adding a benchmark does not require a two-step dance.

Run as ``python -m repro.bench.regress --candidate <dir>`` (exit status 1 on
any regression), or call :func:`compare_payloads` / :func:`compare_dirs`
directly from tests.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from dataclasses import dataclass
from typing import Iterator, Optional

from .report import SCHEMA_VERSION

__all__ = [
    "Diff",
    "RegressReport",
    "compare_values",
    "compare_payloads",
    "compare_dirs",
    "main",
]

DEFAULT_RTOL = 0.02
DEFAULT_ATOL = 1e-9


@dataclass(frozen=True)
class Diff:
    """One out-of-tolerance difference between baseline and candidate."""

    path: str
    baseline: object
    candidate: object
    note: str = ""

    def render(self) -> str:
        extra = f"  ({self.note})" if self.note else ""
        return f"  {self.path}: baseline={self.baseline!r} candidate={self.candidate!r}{extra}"


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def compare_values(
    base,
    cand,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
    path: str = "$",
) -> Iterator[Diff]:
    """Yield a :class:`Diff` for every out-of-tolerance leaf under ``path``."""
    if _is_number(base) and _is_number(cand):
        err = abs(cand - base)
        if err > atol + rtol * abs(base):
            rel = err / abs(base) if base else float("inf")
            yield Diff(path, base, cand, note=f"rel err {rel:.4f} > rtol {rtol}")
        return
    if type(base) is not type(cand):
        yield Diff(path, base, cand, note="type mismatch")
        return
    if isinstance(base, dict):
        for k in sorted(set(base) | set(cand)):
            sub = f"{path}.{k}"
            if k not in cand:
                yield Diff(sub, base[k], None, note="missing from candidate")
            elif k not in base:
                yield Diff(sub, None, cand[k], note="missing from baseline")
            else:
                yield from compare_values(base[k], cand[k], rtol, atol, sub)
        return
    if isinstance(base, list):
        if len(base) != len(cand):
            yield Diff(
                path, f"<{len(base)} items>", f"<{len(cand)} items>",
                note="length mismatch",
            )
            return
        for i, (b, c) in enumerate(zip(base, cand)):
            yield from compare_values(b, c, rtol, atol, f"{path}[{i}]")
        return
    if base != cand:
        yield Diff(path, base, cand)


def compare_payloads(
    base: dict,
    cand: dict,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> list[Diff]:
    """Compare two bench payloads; schema versions are checked first."""
    diffs: list[Diff] = []
    for side, payload in (("baseline", base), ("candidate", cand)):
        v = payload.get("schema_version")
        if v != SCHEMA_VERSION:
            diffs.append(
                Diff(
                    "$.schema_version", SCHEMA_VERSION, v,
                    note=f"{side} schema_version {v!r} != supported {SCHEMA_VERSION}",
                )
            )
    if diffs:
        return diffs
    return list(compare_values(base, cand, rtol, atol))


@dataclass
class RegressReport:
    """Outcome of a directory-level comparison."""

    compared: list[str]
    new: list[str]
    missing: list[str]
    #: bench name -> out-of-tolerance diffs (only names with failures)
    failures: dict[str, list[Diff]]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.missing

    def render(self) -> str:
        lines = []
        for name in self.compared:
            if name in self.failures:
                diffs = self.failures[name]
                lines.append(f"FAIL {name}: {len(diffs)} difference(s)")
                lines += [d.render() for d in diffs[:20]]
                if len(diffs) > 20:
                    lines.append(f"  ... and {len(diffs) - 20} more")
            else:
                lines.append(f"ok   {name}")
        for name in self.new:
            lines.append(f"new  {name}: no baseline (passes; commit one to pin it)")
        for name in self.missing:
            lines.append(f"FAIL {name}: baseline exists but candidate was not produced")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"{verdict}: {len(self.compared)} compared, "
            f"{len(self.failures)} regressed, {len(self.new)} new, "
            f"{len(self.missing)} missing"
        )
        return "\n".join(lines)


def _bench_files(dirname: str) -> dict[str, str]:
    return {
        os.path.basename(p): p
        for p in sorted(glob.glob(os.path.join(dirname, "BENCH_*.json")))
    }


def compare_dirs(
    baseline_dir: str,
    candidate_dir: str,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> RegressReport:
    """Compare every ``BENCH_*.json`` under two directories."""
    base_files = _bench_files(baseline_dir)
    cand_files = _bench_files(candidate_dir)
    report = RegressReport(compared=[], new=[], missing=[], failures={})
    for name, cpath in cand_files.items():
        if name not in base_files:
            report.new.append(name)
            continue
        report.compared.append(name)
        with open(base_files[name]) as fh:
            base = json.load(fh)
        with open(cpath) as fh:
            cand = json.load(fh)
        diffs = compare_payloads(base, cand, rtol, atol)
        if diffs:
            report.failures[name] = diffs
    report.missing = [n for n in base_files if n not in cand_files]
    return report


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.regress",
        description="Compare fresh BENCH_*.json files against committed baselines.",
    )
    ap.add_argument(
        "--baseline", default="benchmarks/baseline",
        help="directory holding the committed baseline snapshots",
    )
    ap.add_argument(
        "--candidate", default=".",
        help="directory holding the freshly emitted BENCH_*.json files",
    )
    ap.add_argument(
        "--rtol", type=float, default=DEFAULT_RTOL,
        help=f"relative tolerance per numeric leaf (default {DEFAULT_RTOL})",
    )
    ap.add_argument(
        "--atol", type=float, default=DEFAULT_ATOL,
        help=f"absolute tolerance floor for near-zero values (default {DEFAULT_ATOL})",
    )
    args = ap.parse_args(argv)
    if not os.path.isdir(args.baseline):
        print(f"regress: baseline directory {args.baseline!r} not found", file=sys.stderr)
        return 2
    report = compare_dirs(args.baseline, args.candidate, rtol=args.rtol, atol=args.atol)
    print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
