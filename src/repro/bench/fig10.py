"""Figure 10 regeneration: effect of skew, with and without load management.

Paper setup (§6): DSM-Sort sort phase on two hosts and 16 ASUs.  The first
half of the input is uniformly distributed, the second half exponential.  The
baseline statically assigns half of the α distribute subsets to each host;
under skew this unbalances the hosts.  The load-managed run spreads each
subset across both hosts with simple randomization (SR), keeping the two
utilization traces nearly identical and finishing earlier.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import ConfigSolver
from ..dsmsort.runtime import DsmSortJob
from ..emulator.params import SystemParams
from .fig9 import fig9_params
from .report import render_series_table

__all__ = ["Figure10Result", "run_figure10", "fig10_params"]


def fig10_params(n_asus: int = 16, n_hosts: int = 2) -> SystemParams:
    return fig9_params(n_asus=n_asus, n_hosts=n_hosts)


@dataclass
class Figure10Result:
    """Host-utilization traces for the static and load-managed runs."""

    n_records: int
    makespan_static: float
    makespan_managed: float
    imbalance_static: float
    imbalance_managed: float
    #: sample times and per-host utilizations, one series per (run, host)
    times: list[float] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)

    @property
    def managed_finishes_earlier(self) -> bool:
        return self.makespan_managed < self.makespan_static

    def to_csv(self) -> str:
        """Comma-separated utilization traces (one row per sample time)."""
        names = list(self.series)
        lines = ["t," + ",".join(names)]
        for i, t in enumerate(self.times):
            lines.append(
                f"{t:.4f}," + ",".join(f"{self.series[n][i]:.4f}" for n in names)
            )
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        head = (
            f"Figure 10 — host CPU utilization under skew "
            f"(n={self.n_records}, 2 hosts, 16 ASUs; first half uniform, "
            f"second half exponential)\n"
            f"  static (no load control): makespan={self.makespan_static:.3f}s "
            f"imbalance={self.imbalance_static:.2f}\n"
            f"  load-managed (SR):        makespan={self.makespan_managed:.3f}s "
            f"imbalance={self.imbalance_managed:.2f}\n"
        )
        table = render_series_table("t(s)", [f"{t:.2f}" for t in self.times], self.series)
        return head + "\n" + table + "\n"


def run_figure10(
    n_records: int = 1 << 18,
    alpha: int = 16,
    gamma: int = 64,
    seed: int = 42,
    util_dt: float | None = None,
    params: SystemParams | None = None,
) -> Figure10Result:
    """Run the static and SR-managed skew experiments; collect traces."""
    params = params if params is not None else fig10_params()
    cfg = ConfigSolver(params, gamma=gamma).config_for_alpha(n_records, alpha)
    kw = dict(
        workload="half_uniform_half_exponential",
        active=True,
        seed=seed,
    )

    static_job = DsmSortJob(params, cfg, policy="static", **kw)
    managed_job = DsmSortJob(params, cfg, policy="sr", **kw)

    # Pick a sampling window that gives ~40 points over the longer run.
    res_static = static_job.run_pass1(util_dt=1.0)  # provisional, resampled below
    dt = util_dt or max(res_static.makespan / 40.0, 1e-6)
    res_static = static_job.run_pass1(util_dt=dt)
    res_managed = managed_job.run_pass1(util_dt=dt)

    result = Figure10Result(
        n_records=n_records,
        makespan_static=res_static.makespan,
        makespan_managed=res_managed.makespan,
        imbalance_static=res_static.imbalance,
        imbalance_managed=res_managed.imbalance,
    )
    # Align all four traces on the static run's sample grid.
    result.times = [t for t, _u in res_static.host_util_series[0]]
    series: dict[str, list[float]] = {}
    for h, trace in enumerate(res_static.host_util_series):
        series[f"static.host{h}"] = [u for _t, u in trace]
    for h, trace in enumerate(res_managed.host_util_series):
        vals = [u for _t, u in trace]
        vals += [0.0] * (len(result.times) - len(vals))  # managed ends earlier
        series[f"managed.host{h}"] = vals[: len(result.times)]
    result.series = series
    return result
