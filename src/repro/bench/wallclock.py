"""Warn-only wall-clock smoke check for the benchmark suite.

The byte-identity gate (:mod:`repro.bench.regress`) pins *what* the emulator
computes; this module watches *how long* it takes.  Wall time is inherently
machine- and load-dependent (±15% run-to-run noise is normal on shared CI
runners), so this check never fails a build — it prints ``WARN`` lines for
benches slower than ``factor`` × baseline and always exits 0.  The hard
wall-clock *budget* is enforced separately: CI runs the bench suite under
``timeout``, so a pathological slowdown (e.g. an accidentally quadratic
accounting path) still fails loudly.

Two modes:

* ``--snapshot <pytest-benchmark json> --out <file>`` — distill a
  ``--benchmark-json`` dump into the committed ``BENCH_wallclock.json``
  baseline (bench name → mean seconds, plus machine context).
* ``--baseline <file> --candidate <pytest-benchmark json>`` — compare a
  fresh dump against the committed baseline, warn on slowdowns.

The baseline lives at ``benchmarks/BENCH_wallclock.json`` — deliberately
**outside** ``benchmarks/baseline/``, which the byte-identity gate globs
(a timing file there would demand a deterministic fresh counterpart).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional

__all__ = ["load_times", "snapshot", "compare", "main"]

WALLCLOCK_SCHEMA_VERSION = 1
DEFAULT_FACTOR = 1.5


def load_times(pytest_benchmark_json: str) -> dict[str, float]:
    """Extract {bench name: mean seconds} from a ``--benchmark-json`` dump."""
    with open(pytest_benchmark_json) as fh:
        payload = json.load(fh)
    return {
        b["name"]: float(b["stats"]["mean"])
        for b in payload.get("benchmarks", [])
    }


def snapshot(pytest_benchmark_json: str, note: str = "") -> dict:
    """Build a committable wall-clock baseline payload."""
    with open(pytest_benchmark_json) as fh:
        payload = json.load(fh)
    machine = payload.get("machine_info", {})
    return {
        "schema_version": WALLCLOCK_SCHEMA_VERSION,
        "note": note
        or "Mean wall-clock seconds per bench; advisory only (warn-only check).",
        "machine": {
            "cpu_count": machine.get("cpu", {}).get("count")
            if isinstance(machine.get("cpu"), dict)
            else os.cpu_count(),
            "python": machine.get("python_version"),
        },
        "benches": {
            name: round(secs, 4)
            for name, secs in sorted(load_times(pytest_benchmark_json).items())
        },
    }


def compare(
    baseline: dict, fresh: dict[str, float], factor: float = DEFAULT_FACTOR
) -> list[str]:
    """Return human-readable lines; slowdown lines are prefixed ``WARN``."""
    lines: list[str] = []
    base_benches: dict[str, float] = baseline.get("benches", {})
    for name in sorted(set(base_benches) | set(fresh)):
        if name not in fresh:
            lines.append(f"WARN {name}: in baseline but not in this run")
            continue
        if name not in base_benches:
            lines.append(f"new  {name}: {fresh[name]:.3f}s (no baseline)")
            continue
        base_t, cand_t = base_benches[name], fresh[name]
        ratio = cand_t / base_t if base_t > 0 else float("inf")
        verdict = "WARN" if ratio > factor else "ok  "
        lines.append(
            f"{verdict} {name}: {cand_t:.3f}s vs baseline {base_t:.3f}s "
            f"({ratio:.2f}x, threshold {factor:.2f}x)"
        )
    return lines


def main(argv: Optional[list[str]] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.bench.wallclock",
        description="Warn-only wall-clock comparison for the bench suite.",
    )
    ap.add_argument(
        "--snapshot", metavar="PYTEST_JSON",
        help="distill a --benchmark-json dump into a committable baseline",
    )
    ap.add_argument(
        "--out", default="benchmarks/BENCH_wallclock.json",
        help="where --snapshot writes the baseline",
    )
    ap.add_argument(
        "--baseline", default="benchmarks/BENCH_wallclock.json",
        help="committed wall-clock baseline to compare against",
    )
    ap.add_argument(
        "--candidate", metavar="PYTEST_JSON",
        help="fresh --benchmark-json dump to check",
    )
    ap.add_argument(
        "--factor", type=float, default=DEFAULT_FACTOR,
        help=f"warn when candidate > factor x baseline (default {DEFAULT_FACTOR})",
    )
    args = ap.parse_args(argv)

    if args.snapshot:
        payload = snapshot(args.snapshot)
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wallclock: wrote {args.out} ({len(payload['benches'])} benches)")
        return 0

    if not args.candidate:
        ap.error("either --snapshot or --candidate is required")
    if not os.path.isfile(args.baseline):
        print(
            f"wallclock: no baseline at {args.baseline!r} — skipping "
            "(run with --snapshot to create one)"
        )
        return 0
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    if baseline.get("schema_version") != WALLCLOCK_SCHEMA_VERSION:
        print(
            f"wallclock: baseline schema {baseline.get('schema_version')!r} != "
            f"{WALLCLOCK_SCHEMA_VERSION} — skipping"
        )
        return 0
    lines = compare(baseline, load_times(args.candidate), factor=args.factor)
    for line in lines:
        print(line)
    n_warn = sum(1 for line in lines if line.startswith("WARN"))
    print(
        f"wallclock: {n_warn} warning(s); advisory only, exit 0 "
        "(hard budget is the CI timeout)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
