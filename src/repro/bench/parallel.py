"""Process-parallel seed sweeps with deterministic merge order.

Multi-seed soaks (``repro chaos``, ``repro recover``) run one independent
emulation per seed; :func:`parallel_map` fans those cases out across worker
processes and returns the results **in input order**, so a report assembled
from them is byte-identical to the sequential run no matter which worker
finishes first.  Parallelism only changes wall-clock, never results: each
case runs a whole deterministic simulation inside one process with no shared
state.

Worker count resolution, in priority order:

1. explicit ``workers=`` argument;
2. ``REPRO_BENCH_WORKERS`` environment variable;
3. ``os.cpu_count()``.

A resolved count of 1 (or a single-item sweep) degrades to a plain in-process
``map`` — single-core environments take the exact sequential path.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Resolve the worker-process count (see module docstring)."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_BENCH_WORKERS")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    workers: Optional[int] = None,
) -> list[_R]:
    """``[fn(x) for x in items]`` across processes, results in input order.

    ``fn`` and every item must be picklable (``fn`` a module-level
    function).  Exceptions raised in a worker propagate to the caller, as
    in the sequential path.
    """
    seq: Sequence[_T] = list(items)
    n = resolve_workers(workers)
    if n <= 1 or len(seq) <= 1:
        return [fn(item) for item in seq]
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(n, len(seq))) as pool:
        # Executor.map preserves input order regardless of completion order.
        return list(pool.map(fn, seq, chunksize=1))
