"""Figure 9 regeneration: DSM-Sort speedup vs number of ASUs.

Paper setup (§6): one host; ASUs with 1/8 the host's processing power
(c = 8); 128-byte records with 4-byte keys; input pre-distributed across the
ASUs; timings from the first pass (run formation) only.  Series: α ∈
{1, 4, 16, 64, 256} plus the adaptive configuration; speedup is relative to a
passive-storage baseline where all computation happens at the host.

The calibrated cost family below sets the host:ASU work ratio so the
qualitative shape matches the paper: slowdown (<1×) for high α with few
ASUs, rising speedup as ASUs are added, host saturation flattening each
series, higher α winning at large D, and adaptive tracking the envelope to
≈1.8×.  Absolute saturation points differ from the paper's (theirs: 16 ASUs)
because their absolute CPU/disk constants are unpublished; see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import ConfigSolver, DSMConfig
from ..dsmsort.runtime import DsmSortJob
from ..emulator.params import SystemParams
from .report import ascii_plot, render_series_table

__all__ = ["FIG9_ALPHAS", "FIG9_ASU_COUNTS", "fig9_params", "Figure9Result", "run_figure9"]

FIG9_ALPHAS = (1, 4, 16, 64, 256)
FIG9_ASU_COUNTS = (2, 4, 8, 16, 32, 64)
FIG9_GAMMA = 64
BASELINE_ALPHA = 64


def fig9_params(n_asus: int, c: float = 8.0, n_hosts: int = 1) -> SystemParams:
    """The calibrated platform family used for the figure benches."""
    return SystemParams(
        n_hosts=n_hosts,
        n_asus=n_asus,
        asu_ratio=c,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=1024,
    )


@dataclass
class Figure9Result:
    """Speedup series, paper-figure style."""

    n_records: int
    asu_counts: list[int]
    #: series name -> speedup per ASU count
    speedup: dict[str, list[float]] = field(default_factory=dict)
    #: baseline makespans per ASU count
    baseline_makespan: list[float] = field(default_factory=list)
    #: adaptive α chosen per ASU count
    adaptive_alpha: list[int] = field(default_factory=list)

    def to_csv(self) -> str:
        """Comma-separated speedup series (one row per ASU count)."""
        names = list(self.speedup)
        lines = ["asus," + ",".join(names)]
        for i, d in enumerate(self.asu_counts):
            lines.append(
                f"{d}," + ",".join(f"{self.speedup[n][i]:.4f}" for n in names)
            )
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        table = render_series_table(
            "ASUs",
            self.asu_counts,
            self.speedup,
            title=(
                f"Figure 9 — DSM-Sort pass-1 speedup vs #ASUs "
                f"(n={self.n_records}, 1 host, c=8; baseline = passive storage)"
            ),
        )
        plot = ascii_plot(
            [float(d) for d in self.asu_counts],
            self.speedup,
            title="speedup vs num ASUs",
        )
        alphas = ", ".join(
            f"D={d}: alpha={a}" for d, a in zip(self.asu_counts, self.adaptive_alpha)
        )
        return f"{table}\n\n{plot}\n\nadaptive configuration chose: {alphas}\n"


def _pass1_makespan(params: SystemParams, cfg: DSMConfig, active: bool, seed: int) -> float:
    job = DsmSortJob(params, cfg, policy="static", workload="uniform",
                     active=active, seed=seed)
    return job.run_pass1().makespan


def run_figure9(
    n_records: int = 1 << 18,
    asu_counts=FIG9_ASU_COUNTS,
    alphas=FIG9_ALPHAS,
    gamma: int = FIG9_GAMMA,
    c: float = 8.0,
    seed: int = 42,
    include_adaptive: bool = True,
) -> Figure9Result:
    """Emulate the full Figure-9 sweep and return the speedup series."""
    result = Figure9Result(n_records=n_records, asu_counts=list(asu_counts))
    series: dict[str, list[float]] = {str(a): [] for a in alphas}
    if include_adaptive:
        series["adaptive"] = []

    for D in asu_counts:
        params = fig9_params(D, c=c)
        solver = ConfigSolver(params, gamma=gamma)
        base_cfg = solver.config_for_alpha(n_records, BASELINE_ALPHA)
        t_base = _pass1_makespan(params, base_cfg, active=False, seed=seed)
        result.baseline_makespan.append(t_base)

        for a in alphas:
            cfg = solver.config_for_alpha(n_records, a)
            t = _pass1_makespan(params, cfg, active=True, seed=seed)
            series[str(a)].append(t_base / t)

        if include_adaptive:
            cfg = solver.choose(n_records)
            result.adaptive_alpha.append(cfg.alpha)
            t = _pass1_makespan(params, cfg, active=True, seed=seed)
            series["adaptive"].append(t_base / t)

    result.speedup = series
    return result
