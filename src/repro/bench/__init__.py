"""Bench harness: regenerates every evaluation figure plus ablations."""

from .fig9 import FIG9_ALPHAS, FIG9_ASU_COUNTS, Figure9Result, fig9_params, run_figure9
from .fig10 import Figure10Result, fig10_params, run_figure10
from .parallel import parallel_map, resolve_workers
from .report import ascii_plot, render_series_table, render_table
from .sweeps import SweepResult, sweep_c, sweep_gamma_split, sweep_routing

__all__ = [
    "FIG9_ALPHAS",
    "FIG9_ASU_COUNTS",
    "Figure9Result",
    "fig9_params",
    "run_figure9",
    "Figure10Result",
    "fig10_params",
    "run_figure10",
    "ascii_plot",
    "parallel_map",
    "render_series_table",
    "render_table",
    "resolve_workers",
    "SweepResult",
    "sweep_c",
    "sweep_gamma_split",
    "sweep_routing",
]
