"""Bench harness: regenerates every evaluation figure plus ablations."""

from .fig9 import FIG9_ALPHAS, FIG9_ASU_COUNTS, Figure9Result, fig9_params, run_figure9
from .fig10 import Figure10Result, fig10_params, run_figure10
from .report import ascii_plot, render_series_table, render_table
from .sweeps import SweepResult, sweep_c, sweep_gamma_split, sweep_routing

__all__ = [
    "FIG9_ALPHAS",
    "FIG9_ASU_COUNTS",
    "Figure9Result",
    "fig9_params",
    "run_figure9",
    "Figure10Result",
    "fig10_params",
    "run_figure10",
    "ascii_plot",
    "render_series_table",
    "render_table",
    "SweepResult",
    "sweep_c",
    "sweep_gamma_split",
    "sweep_routing",
]
