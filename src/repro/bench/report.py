"""Plain-text report rendering for the bench harness.

The paper's figures are line charts; we emit the underlying series as aligned
tables (one row per x value, one column per series) plus simple ASCII sparkline
plots, so `pytest benchmarks/ --benchmark-only` output can be compared to the
paper's figures directly.
"""

from __future__ import annotations

import json
import os
from typing import Mapping, Optional, Sequence

#: version of the BENCH_*.json payload layout; bumped on breaking changes and
#: validated by :mod:`repro.bench.regress` before any value comparison.
SCHEMA_VERSION = 1

__all__ = [
    "SCHEMA_VERSION",
    "render_table",
    "render_series_table",
    "ascii_plot",
    "write_bench_json",
]


def write_bench_json(name: str, payload: Mapping, out_dir: Optional[str] = None) -> Optional[str]:
    """Write a benchmark payload as ``BENCH_<name>.json`` for CI artifacts.

    Disabled unless ``out_dir`` is given or ``REPRO_BENCH_JSON`` names a
    directory, so ordinary test runs write nothing.  The payload is emitted in
    canonical form (sorted keys, fixed separators): a deterministic benchmark
    produces a byte-identical file.  A ``schema_version`` field is stamped in
    unless the payload already carries one.  Returns the path written, or
    ``None``.
    """
    out_dir = out_dir if out_dir is not None else os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return None
    payload = dict(payload)
    payload.setdefault("schema_version", SCHEMA_VERSION)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    with open(path, "w") as fh:
        fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
    return path


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table with right-aligned numeric cells."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.3f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series_table(
    x_label: str,
    xs: Sequence,
    series: Mapping[str, Sequence[float]],
    title: str = "",
) -> str:
    """Table with x in the first column and one column per named series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(vals[i] for vals in series.values())])
    return render_table(headers, rows, title=title)


def ascii_plot(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Crude multi-series scatter plot for terminals."""
    marks = "ox+*#@%&"
    all_vals = [v for vals in series.values() for v in vals]
    if not all_vals or not xs:
        return f"{title} (no data)"
    ymin, ymax = min(all_vals + [0.0]), max(all_vals)
    if ymax == ymin:
        ymax = ymin + 1.0
    xmin, xmax = min(xs), max(xs)
    if xmax == xmin:
        xmax = xmin + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, vals) in enumerate(series.items()):
        m = marks[si % len(marks)]
        for x, v in zip(xs, vals):
            col = int((x - xmin) / (xmax - xmin) * (width - 1))
            row = int((v - ymin) / (ymax - ymin) * (height - 1))
            grid[height - 1 - row][col] = m
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{ymax:8.2f} +" + "-" * width)
    for row in grid:
        lines.append(" " * 9 + "|" + "".join(row))
    lines.append(f"{ymin:8.2f} +" + "-" * width)
    lines.append(" " * 10 + f"{xmin:<10.4g}{' ' * max(0, width - 20)}{xmax:>10.4g}")
    legend = "   ".join(
        f"{marks[i % len(marks)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
