"""Chaos soak harness: seeded random fault schedules vs. end-to-end invariants.

The reliability claims of :mod:`repro.resilience` are only worth something if
they hold under *schedules nobody hand-picked*.  This harness sweeps seeded
:class:`~repro.faults.injector.RandomFaultModel` plans — message drop /
duplicate / delay / corruption windows, transient disk-read errors, CPU
degradation, and fail-stop crashes — across two applications on the reliable
transport:

* **DSM-Sort** run formation (crash recovery + reliable channel combined):
  the run must complete, and the final two-pass output must be a *sorted
  permutation* of the input — exact record count, zero duplicates, zero loss;
* **filter-scan** (:class:`ResilientFilterScan`): the filtered records
  reaching the host must be the exact multiset a direct evaluation produces,
  with breaker-open links degrading gracefully to host-side filtering.

Each case also checks **bounded retry amplification** (wire bytes over
payload bytes) so the protocol cannot pass by brute-force flooding.  A
**negative control** reruns DSM-Sort with retries disabled under forced drop
windows and must *lose* records — demonstrating the invariants are earned by
the retransmission layer, not vacuously true.

Everything is virtual-time deterministic: the same seeds produce a
byte-identical :class:`ChaosReport` JSON.  Run it via ``python -m repro
chaos`` (see ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

import numpy as np

from ..bench.report import SCHEMA_VERSION, render_table
from ..core.config import DSMConfig
from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform
from ..faults.injector import FaultPlan, Injector, RandomFaultModel, drop_msg
from ..functors.basic import FilterFunctor
from ..util.distributions import make_workload
from ..util.records import concat_records
from ..util.rng import RngRegistry
from .breaker import BreakerBoard
from .channel import ReliableEndpoint, RetryPolicy
from .io import read_resilient

__all__ = [
    "ChaosReport", "ResilientFilterScan", "chaos_params", "list_chaos_apps",
    "run_chaos",
]


def chaos_params() -> SystemParams:
    """Small platform (2 hosts, 4 ASUs) calibrated so chaos runs stay fast."""
    return SystemParams(
        n_hosts=2,
        n_asus=4,
        cycles_per_compare=100.0,
        cycles_per_record=300.0,
        cycles_per_net_byte=1.5,
        cycles_per_io_byte=0.5,
        block_records=512,
    )


def _policy_for(t0: float, max_attempts: Optional[int] = None) -> RetryPolicy:
    """Retry policy scaled to the fault-free makespan ``t0``.

    The first timeout grace must exceed an ack round-trip (else fault-free
    runs retransmit spuriously) yet stay far below the run length (else a
    drop window stalls the whole pass); ``t0/50`` sits comfortably between.
    """
    return RetryPolicy(
        timeout=t0 / 50,
        backoff=2.0,
        max_backoff=t0 / 10,
        jitter=0.25,
        max_attempts=max_attempts,
        window=64,
    )


def _fault_model(seed: int, t0: float) -> RandomFaultModel:
    """The per-seed chaos schedule generator for DSM-Sort (crashes included)."""
    return RandomFaultModel(
        seed=seed,
        mttf_asu=8.0 * t0,
        mttf_host=16.0 * t0,
        max_crashes=1,
        mtt_drop=1.5 * t0,
        mtt_dup=2.0 * t0,
        mtt_delay=2.0 * t0,
        mtt_corrupt=2.5 * t0,
        mtt_disk_fault=2.0 * t0,
        msg_fault_duration=t0 / 8,
        msg_delay=t0 / 50,
        disk_fault_duration=t0 / 10,
    )


def _filterscan_fault_model(seed: int, t0: float) -> RandomFaultModel:
    """Filter-scan chaos: message/disk/degrade faults, no crashes (the scan
    has no replica recovery — reliability must come from the channel alone)."""
    return RandomFaultModel(
        seed=seed,
        mtt_degrade=3.0 * t0,
        degrade_factor=0.5,
        degrade_duration=t0 / 4,
        mtt_drop=1.5 * t0,
        mtt_dup=2.0 * t0,
        mtt_delay=2.0 * t0,
        mtt_corrupt=2.5 * t0,
        mtt_disk_fault=2.0 * t0,
        msg_fault_duration=t0 / 8,
        msg_delay=t0 / 50,
        disk_fault_duration=t0 / 10,
    )


def _amplification(channel_stats: Optional[dict]) -> float:
    cs = channel_stats or {}
    payload = cs.get("payload_bytes", 0)
    if payload == 0:
        return 1.0
    return (payload + cs.get("retrans_bytes", 0)) / payload


# --------------------------------------------------------------------- apps
class ResilientFilterScan:
    """Active filter-scan over the reliable transport, with degradation.

    Per block, the producer consults the link's circuit breaker: healthy →
    filter at the ASU and ship only survivors (the active-storage win);
    breaker open → ship the raw block and let the host filter it (graceful
    degradation: correctness preserved, interconnect savings sacrificed
    while the link is quarantined).  Reads go through
    :func:`~repro.resilience.io.read_resilient`, ships through
    :meth:`~repro.resilience.channel.ReliableEndpoint.send`.
    """

    def __init__(
        self,
        params: SystemParams,
        n_records: int,
        seed: int = 0,
        policy: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ):
        self.params = params
        self.n_records = int(n_records)
        self.functor = FilterFunctor(lambda b: b["key"] % 2 == 0, compares=1.0)
        self.policy = policy if policy is not None else RetryPolicy()
        self.faults = faults
        self.seed = int(seed)
        rngs = RngRegistry(seed)
        per_asu = self.n_records // params.n_asus
        self.asu_data = [
            make_workload(rngs.get(f"w.{d}"), per_asu, "uniform", params.schema)
            for d in range(params.n_asus)
        ]

    def expected_keys(self) -> np.ndarray:
        kept = [self.functor.apply(b)[0] for b in self.asu_data]
        return np.sort(concat_records(kept, self.params.schema)["key"])

    def run(self, deadline: Optional[float] = None) -> dict:
        plat = ActivePlatform(self.params)
        board = BreakerBoard(
            plat.sim, fail_threshold=5, cooldown=self.policy.timeout * 8
        )
        rngs = RngRegistry(self.seed)
        eps = {
            node.node_id: ReliableEndpoint(
                plat, node,
                rng=rngs.get(f"rel.{node.node_id}"),
                policy=self.policy, board=board,
            )
            for node in [*plat.hosts, *plat.asus]
        }
        if self.faults is not None:
            Injector(plat, self.faults).arm()
        host = plat.hosts[0]
        D = self.params.n_asus
        blk = self.params.block_records
        rs = self.params.schema.record_size
        collected: list[np.ndarray] = []
        n_degraded = [0]

        def producer(d):
            asu = plat.asus[d]
            ep = eps[asu.node_id]
            data = self.asu_data[d]
            blocks = [data[s : s + blk] for s in range(0, data.shape[0], blk)]
            for block in blocks:
                yield from read_resilient(plat.sim, asu.disk, block.shape[0] * rs)
                staging = block.shape[0] * rs * self.params.cycles_per_io_byte
                if board.healthy(asu.node_id, host.node_id):
                    kept = yield from asu.compute(
                        cycles=staging
                        + self.functor.cost_cycles(block.shape[0], self.params),
                        fn=lambda b: self.functor.apply(b)[0],
                        args=(block,),
                    )
                    if kept.shape[0]:
                        yield from ep.send(
                            host.node_id, ("data", kept), kept.shape[0] * rs,
                            tag="data",
                        )
                else:
                    # Breaker open: this link is flapping.  Ship raw and let
                    # the host filter — degraded but correct.
                    n_degraded[0] += 1
                    if staging:
                        yield from asu.cpu.execute(cycles=staging)
                    yield from ep.send(
                        host.node_id, ("raw", block), block.shape[0] * rs,
                        tag="raw",
                    )
            yield from ep.send(host.node_id, ("eof", None), 16, tag="eof")

        def sink():
            ep = eps[host.node_id]
            n_eof = 0
            while n_eof < D:
                msg = yield from ep.recv()
                kind, payload = msg.payload
                if kind == "eof":
                    n_eof += 1
                elif kind == "raw":
                    kept = yield from host.compute(
                        cycles=self.functor.cost_cycles(
                            payload.shape[0], self.params
                        ),
                        fn=lambda b: self.functor.apply(b)[0],
                        args=(payload,),
                    )
                    if kept.shape[0]:
                        collected.append(kept)
                else:
                    collected.append(payload)

        procs = [
            plat.spawn(producer(d), name=f"scan{d}", node=plat.asus[d])
            for d in range(D)
        ]
        procs.append(plat.spawn(sink(), name="sink", node=host))
        done = plat.sim.all_of(procs)

        def _on_done(ev):
            if not ev.ok:
                raise ev.value
            plat.sim.stop()

        done.callbacks.append(_on_done)
        plat.sim.run(until=deadline)
        completed = all(p.triggered for p in procs)
        out = (
            concat_records(collected, self.params.schema)
            if collected
            else np.empty(0, dtype=self.params.schema.dtype)
        )
        stats: dict = {}
        for ep in eps.values():
            for k, v in ep.stats.as_dict().items():
                stats[k] = stats.get(k, 0) + v
        return {
            "completed": completed,
            "makespan": plat.sim.now,
            "keys": np.sort(out["key"]),
            "net_bytes": plat.network.bytes_total,
            "channel_stats": stats,
            "n_breaker_trips": board.n_trips(),
            "n_degraded_blocks": n_degraded[0],
        }


# ------------------------------------------------------------------- cases
def _run_dsmsort_case(
    seed: int, n_records: int, t0: float, amp_bound: float
) -> dict:
    """DSM-Sort run formation under seeded message/disk/crash chaos."""
    from ..dsmsort.runtime import DsmSortJob

    params = chaos_params()
    cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
    plan = _fault_model(seed, t0).plan(params, horizon=0.8 * t0)
    job = DsmSortJob(
        params, cfg, policy="sr", seed=0, faults=plan,
        transport="reliable", retry_policy=_policy_for(t0),
        heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10,
    )
    res = job.run_pass1(deadline=12.0 * t0)
    sorted_ok = False
    if res.completed:
        job.run_pass2()
        try:
            job.verify()  # sorted + exact multiset: no loss, no duplicates
            sorted_ok = True
        except Exception:
            sorted_ok = False
    amp = _amplification(res.channel_stats)
    invariants = {
        "completed": bool(res.completed),
        "sorted_permutation": bool(sorted_ok),
        "exact_count": bool(res.completed and res.n_durable == n_records),
        "amplification_bounded": bool(amp <= amp_bound),
    }
    cs = res.channel_stats or {}
    return {
        "app": "dsmsort",
        "seed": seed,
        "n_faults": len(plan),
        "fault_kinds": sorted(plan.kinds()),
        "makespan_ratio": res.makespan / t0,
        "amplification": amp,
        "n_retransmits": cs.get("n_retransmits", 0),
        "n_dup_dropped": cs.get("n_dup_dropped", 0),
        "n_corrupt_dropped": cs.get("n_corrupt_dropped", 0),
        "n_breaker_trips": res.n_breaker_trips,
        "n_replayed_frags": res.n_replayed_frags,
        "n_takeover_blocks": res.n_takeover_blocks,
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


def _run_filterscan_case(
    seed: int, n_records: int, t0: float, amp_bound: float
) -> dict:
    """Active filter-scan on the reliable channel, degrading via breakers."""
    params = chaos_params()
    plan = _filterscan_fault_model(seed, t0).plan(params, horizon=0.8 * t0)
    app = ResilientFilterScan(
        params, n_records, seed=0, policy=_policy_for(t0), faults=plan
    )
    res = app.run(deadline=12.0 * t0)
    exact = bool(
        res["completed"] and np.array_equal(res["keys"], app.expected_keys())
    )
    amp = _amplification(res["channel_stats"])
    invariants = {
        "completed": bool(res["completed"]),
        "exact_multiset": exact,
        "amplification_bounded": bool(amp <= amp_bound),
    }
    cs = res["channel_stats"]
    return {
        "app": "filterscan",
        "seed": seed,
        "n_faults": len(plan),
        "fault_kinds": sorted(plan.kinds()),
        "makespan_ratio": res["makespan"] / t0,
        "amplification": amp,
        "n_retransmits": cs.get("n_retransmits", 0),
        "n_dup_dropped": cs.get("n_dup_dropped", 0),
        "n_corrupt_dropped": cs.get("n_corrupt_dropped", 0),
        "n_breaker_trips": res["n_breaker_trips"],
        "n_degraded_blocks": res["n_degraded_blocks"],
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


#: per-n cache of (fault-free two-pass makespan, reference output) for the
#: recovery app — every seed checks byte-identity against the same reference
_RECOVERY_REFERENCE: dict[int, tuple[float, np.ndarray]] = {}


def _recovery_reference(n_records: int) -> tuple[float, np.ndarray]:
    from ..dsmsort.runtime import DsmSortJob

    cached = _RECOVERY_REFERENCE.get(n_records)
    if cached is None:
        params = chaos_params()
        cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
        job = DsmSortJob(params, cfg, policy="sr", seed=0, faults=FaultPlan())
        r1 = job.run_pass1()
        r2 = job.run_pass2()
        job.verify()
        cached = (r1.makespan + r2.makespan, job.collected_output())
        _RECOVERY_REFERENCE[n_records] = cached
    return cached


def _recovery_t0(n_records: int) -> float:
    return _recovery_reference(n_records)[0]


def _run_recovery_case(
    seed: int, n_records: int, t0: float, amp_bound: float
) -> dict:
    """Coordinator kill at a seeded instant, then checkpoint-restart.

    The invariant is the tentpole's proof of equivalence: whatever the kill
    instant, the supervised resume must complete and produce output
    *byte-identical* to the uninterrupted reference, with the manifest
    showing zero duplicate fragment coverage.
    """
    from ..recovery.checkpoint import RecoverableSort
    from ..recovery.supervisor import RestartBudget
    from ..util.rng import derive_seed

    params = chaos_params()
    cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
    _t0, reference = _recovery_reference(n_records)
    rng = np.random.default_rng(derive_seed(seed, "chaos-recovery"))
    crash_at = float(rng.uniform(0.05, 0.95)) * t0
    sort = RecoverableSort(params, cfg, seed=0, policy="sr")
    rep = sort.run_supervised(
        crashes=[crash_at], budget=RestartBudget(max_restarts=3)
    )
    identical = False
    dup_frags = -1
    if rep.completed:
        sort.verify()
        identical = bool(np.array_equal(reference, sort.output()))
        dup_frags = 0
        try:
            sort.manifest.check_no_duplicate_coverage()
        except Exception:
            dup_frags = 1
    invariants = {
        "completed": bool(rep.completed),
        "byte_identical": identical,
        "no_duplicate_coverage": dup_frags == 0,
        "crash_observed": bool(rep.n_crashes >= 1) or crash_at >= t0,
    }
    return {
        "app": "recovery",
        "seed": seed,
        "n_faults": 1,
        "fault_kinds": ["crash_coordinator"],
        "crash_at_frac": crash_at / t0,
        "makespan_ratio": rep.total_virtual_time / t0,
        "amplification": 1.0,
        "n_retransmits": 0,
        "n_dup_dropped": 0,
        "n_corrupt_dropped": 0,
        "n_breaker_trips": 0,
        "n_attempts": rep.n_attempts,
        "n_crashes": rep.n_crashes,
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


def _straggler_t0(n_records: int) -> float:
    """Fault-free two-pass baseline (shared with the recovery reference)."""
    return _recovery_reference(n_records)[0]


def _run_straggler_case(
    seed: int, n_records: int, t0: float, amp_bound: float
) -> dict:
    """A seeded heavy ASU degradation, raced with and without speculation.

    Invariants: both runs complete and verify (exactly-once despite hedged
    duplicate replicas), and speculation never makes the degraded schedule
    slower.  The makespan improvement is recorded for the report.
    """
    from ..dsmsort.runtime import DsmSortJob
    from ..faults.injector import degrade_asu
    from ..recovery.speculate import SpeculationPolicy
    from ..util.rng import derive_seed

    params = chaos_params()
    cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
    rng = np.random.default_rng(derive_seed(seed, "chaos-straggler"))
    victim = int(rng.integers(0, params.n_asus))
    factor = float(rng.uniform(0.1, 0.3))
    start = float(rng.uniform(0.01, 0.1)) * t0
    plan = FaultPlan([degrade_asu(start, victim, duration=8.0 * t0, factor=factor)])

    base = DsmSortJob(params, cfg, policy="sr", seed=0, faults=plan)
    b1 = base.run_pass1()
    b2 = base.run_pass2()
    base.verify()
    mk_base = b1.makespan + b2.makespan

    policy = SpeculationPolicy(
        interval=t0 / 25, warmup=t0 / 10, max_hedges=params.n_asus, seed=seed
    )
    spec = DsmSortJob(
        params, cfg, policy="sr", seed=0, faults=plan, speculation=policy
    )
    s1 = spec.run_pass1()
    s2 = spec.run_pass2()
    verified = True
    try:
        spec.verify()  # sorted + exact multiset: hedges added no duplicates
    except Exception:
        verified = False
    mk_spec = s1.makespan + s2.makespan
    invariants = {
        "completed": bool(b1.completed and s1.completed),
        "sorted_permutation": verified,
        "not_slower": bool(mk_spec <= mk_base * 1.001),
    }
    return {
        "app": "straggler",
        "seed": seed,
        "n_faults": 1,
        "fault_kinds": ["degrade_asu"],
        "victim": victim,
        "degrade_factor": factor,
        "makespan_ratio": mk_spec / t0,
        "makespan_ratio_nospec": mk_base / t0,
        "speedup": mk_base / mk_spec if mk_spec else 1.0,
        "amplification": 1.0,
        "n_retransmits": 0,
        "n_dup_dropped": 0,
        "n_corrupt_dropped": 0,
        "n_breaker_trips": 0,
        "n_hedged_shards": s1.n_hedged_shards,
        "n_hedge_wasted_frags": s1.n_hedge_wasted_frags,
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


def _run_partition_case(
    seed: int, n_records: int, t0: float, amp_bound: float
) -> dict:
    """Seeded network cut against the membership / epoch-fencing stack.

    Each seed draws one partition scenario — minority group (one or two
    ASUs), asymmetry mode, window length, and optionally a fail-stop kill of
    a cut node *while it is unreachable* — and runs the replicated sort
    (r=2) with the network-borne failure detector.  Invariants: the job
    completes, the output is a sorted permutation, and it is byte-identical
    to the fault-free reference — i.e. no split-brain double-writes leaked
    past the epoch fences and no records were lost to the cut.  Long cuts
    that silence heartbeats must actually disrupt (expulsion observed), so
    the fencing claims are non-vacuous.
    """
    from ..dsmsort.runtime import DsmSortJob
    from ..faults.injector import crash_asu, partition
    from ..replica import ReplicationConfig
    from ..util.records import sort_records
    from ..util.rng import derive_seed

    params = chaos_params()
    cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
    rng = np.random.default_rng(derive_seed(seed, "chaos-partition"))
    n_cut = int(rng.integers(1, 3))
    cut = tuple(sorted(
        int(d) for d in rng.choice(params.n_asus, size=n_cut, replace=False)
    ))
    asymmetry = ("both", "out", "in")[int(rng.integers(0, 3))]
    long_cut = bool(rng.integers(0, 2))
    duration = (0.5 if long_cut else 0.08) * t0
    start = float(rng.uniform(0.15, 0.35)) * t0
    faults = [partition(start, cut, duration=duration, asymmetry=asymmetry)]
    kill = bool(long_cut and n_cut == 1 and rng.integers(0, 2))
    if kill:
        # the split-brain acid test: the node dies while partitioned, so
        # "crashed" and "unreachable" are indistinguishable until the heal
        faults.append(crash_asu(start + 0.4 * duration, cut[0]))
    plan = FaultPlan(faults)
    job = DsmSortJob(
        params, cfg, policy="sr", seed=0, faults=plan,
        transport="reliable", retry_policy=_policy_for(t0),
        replication=ReplicationConfig(r=2),
        heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10,
        detection_mode="network", probe_timeout=t0 / 10,
    )
    res = job.run_pass1(deadline=20.0 * t0)
    sorted_ok = False
    identical = False
    if res.completed:
        job.run_pass2()
        try:
            job.verify()  # sorted + exact multiset: no loss, no duplicates
            sorted_ok = True
        except Exception:
            sorted_ok = False
        if sorted_ok:
            ref = sort_records(concat_records(job.asu_data, params.schema))
            identical = bool(np.array_equal(job.collected_output(), ref))
    amp = _amplification(res.channel_stats)
    # "in" cuts never silence the minority's outbound heartbeats, so the
    # detector must stay quiet; "both"/"out" cuts longer than the detection
    # horizon must expel — and re-admit once heartbeats resume (unless the
    # node was killed mid-cut, in which case only the expulsion epoch shows)
    disruptive = long_cut and asymmetry in ("both", "out")
    invariants = {
        "completed": bool(res.completed),
        "sorted_permutation": bool(sorted_ok),
        "byte_identical_no_split_brain": identical,
        # a cut legitimately amplifies: every pending into the severed route
        # retransmits (bounded by backoff) for the whole window, so the
        # partition app earns twice the flood allowance of the other apps
        "amplification_bounded": bool(amp <= 2.0 * amp_bound),
        "disruption_observed": bool(
            not disruptive
            or res.n_readmitted >= 1
            or (kill and res.view_epoch >= 2)
        ),
    }
    cs = res.channel_stats or {}
    return {
        "app": "partition",
        "seed": seed,
        "n_faults": len(plan),
        "fault_kinds": sorted(plan.kinds()),
        "cut_asus": list(cut),
        "asymmetry": asymmetry,
        "duration_frac": duration / t0,
        "killed_in_cut": kill,
        "makespan_ratio": res.makespan / t0,
        "amplification": amp,
        "n_retransmits": cs.get("n_retransmits", 0),
        "n_dup_dropped": cs.get("n_dup_dropped", 0),
        "n_corrupt_dropped": cs.get("n_corrupt_dropped", 0),
        "n_breaker_trips": res.n_breaker_trips,
        "n_epoch_rejections": int(res.n_epoch_rejections),
        "n_readmitted": int(res.n_readmitted),
        "n_reconciled_runs": int(res.n_reconciled_runs),
        "n_divergent_copies": int(res.n_divergent_copies),
        "n_dup_frags_dropped": int(res.n_dup_frags_dropped),
        "view_epoch": int(res.view_epoch),
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


#: fixed arrival-stream length for the scheduler chaos app: long enough to
#: force preemptions and restart-budget kills at 3x overload, short enough
#: that one case stays in the same cost band as the other apps
_SCHED_CHAOS_JOBS = 30
#: offered load as a multiple of measured fleet capacity — deep saturation,
#: so admission control, preemption and the restart budget all fire
_SCHED_CHAOS_OVERLOAD = 3.0


def _scheduler_t0(n_records: int) -> float:
    """Ideal drain time of the chaos arrival stream (offered work / capacity).

    The scheduler app has no fault-free twin — overload *is* the chaos — so
    the makespan ratio is normalised against the work-conserving lower bound
    instead.
    """
    from ..sched import ServiceOracle, default_mix, estimate_capacity, serve_params

    capacity = estimate_capacity(serve_params(), default_mix(), ServiceOracle())
    return _SCHED_CHAOS_JOBS / capacity


def _scheduler_once(seed: int, rate: float) -> tuple:
    """One overloaded priority-preemption scheduler run; returns evidence."""
    from ..recovery.supervisor import RestartBudget
    from ..sched import (
        JobState,
        OpenLoopWorkload,
        Scheduler,
        ServiceOracle,
        default_mix,
        default_tenants,
        serve_params,
        summarize_outcome,
    )

    arrivals = OpenLoopWorkload(
        rate, default_mix(), _SCHED_CHAOS_JOBS, seed=seed
    ).generate()
    sched = Scheduler(
        serve_params(),
        default_tenants(),
        "priority",
        oracle=ServiceOracle(),
        restart_budget=RestartBudget(max_restarts=1),
        preempt=True,
        policy_kwargs={"age_rate": 0.05},
    )
    outcome = sched.run(arrivals)
    cell = summarize_outcome(outcome, sched.tenants, rate)
    return sched, outcome, cell, JobState


def _run_scheduler_case(
    seed: int, n_records: int, t0: float, amp_bound: float
) -> dict:
    """Multi-tenant scheduler at 3x overload: preemption + restart budget.

    The chaos here is *contention*, not injected faults: a seeded Poisson
    stream at triple the fleet's measured capacity drives strict-priority
    preemption, quota rejections and restart-budget kills simultaneously.
    Invariants: every admitted job reaches a terminal state (no job leaked
    mid-preemption), the queues and lease table drain to empty, the metrics
    counters agree exactly with the outcome, and a second run of the same
    seed reproduces the summary cell byte-for-byte.
    """
    import json as _json

    rate = _SCHED_CHAOS_OVERLOAD * (_SCHED_CHAOS_JOBS / t0)
    sched, outcome, cell, JobState = _scheduler_once(seed, rate)
    jobs = outcome.jobs
    n_done = sum(1 for j in jobs if j.state == JobState.DONE)
    n_failed = sum(1 for j in jobs if j.state == JobState.FAILED)
    n_rejected = sum(1 for j in jobs if j.state == JobState.REJECTED)
    reg = sched.registry

    _s2, _o2, cell2, _ = _scheduler_once(seed, rate)
    canon = _json.dumps(cell, sort_keys=True, separators=(",", ":"))
    canon2 = _json.dumps(cell2, sort_keys=True, separators=(",", ":"))

    invariants = {
        "all_terminal": all(j.state in JobState.TERMINAL for j in jobs),
        "accounting_exact": n_done + n_failed + n_rejected == len(jobs),
        "queues_drained": not sched.queued and not sched.running,
        "leases_released": not sched._lease_of,
        "counters_consistent": (
            reg.counter("repro_sched_jobs_completed_total").value == n_done
            and reg.counter("repro_sched_jobs_failed_total").value == n_failed
            and reg.counter("repro_sched_jobs_rejected_total").value
            == outcome.n_rejected
            and reg.counter("repro_sched_preemptions_total").value
            == outcome.n_preempted
        ),
        # which contention lever fires (preemption, quota rejection, budget
        # kill) varies per seed; the case only proves itself non-vacuous if
        # at least one did
        "overload_exercised": bool(
            outcome.n_preempted + outcome.n_rejected + outcome.n_restarted > 0
        ),
        "deterministic_replay": canon == canon2,
    }
    return {
        "app": "scheduler",
        "seed": seed,
        "n_faults": int(outcome.n_preempted + outcome.n_failed),
        "fault_kinds": ["overload", "preempt", "restart_budget"],
        "makespan_ratio": outcome.makespan / t0,
        "amplification": 1.0,
        "n_retransmits": 0,
        "n_dup_dropped": 0,
        "n_corrupt_dropped": 0,
        "n_breaker_trips": 0,
        "n_jobs": len(jobs),
        "n_done": n_done,
        "n_rejected": int(outcome.n_rejected),
        "n_preempted": int(outcome.n_preempted),
        "n_restarted": int(outcome.n_restarted),
        "n_failed": n_failed,
        "invariants": invariants,
        "ok": all(invariants.values()),
    }


def _run_negative_control(n_records: int, t0: float) -> dict:
    """Retries disabled + forced drop windows => records must be LOST.

    This is the control group proving the chaos invariants are earned by
    the retransmission layer: with ``max_attempts=1`` the same drop fault
    that the positive cases shrug off permanently loses fragments, so the
    pass cannot complete (the deadline converts the stall into a partial
    result).
    """
    from ..dsmsort.runtime import DsmSortJob

    params = chaos_params()
    cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
    plan = FaultPlan([
        drop_msg(0.3 * t0, h, d, 0.15 * t0)
        for h in range(params.n_hosts)
        for d in range(params.n_asus)
    ])
    job = DsmSortJob(
        params, cfg, policy="sr", seed=0, faults=plan,
        transport="reliable",
        retry_policy=_policy_for(t0, max_attempts=1),
        heartbeat_interval=t0 / 40, heartbeat_timeout=t0 / 10,
    )
    res = job.run_pass1(deadline=4.0 * t0)
    lost = n_records - max(res.n_durable, 0)
    return {
        "completed": bool(res.completed),
        "n_total": n_records,
        "n_durable": int(max(res.n_durable, 0)),
        "lost_records": int(lost),
        # The control PASSES by FAILING: incomplete and demonstrably lossy.
        "ok": bool(not res.completed and lost > 0),
    }


# ------------------------------------------------------------------ report
@dataclass
class ChaosReport:
    """Outcome of one chaos soak sweep (JSON-stable, wall-clock free)."""

    n_records: int
    amp_bound: float
    apps: list[str]
    seeds: list[int]
    baselines: dict[str, float]
    cases: list[dict] = field(default_factory=list)
    negative_control: Optional[dict] = None
    schema_version: int = SCHEMA_VERSION

    def violations(self) -> list[str]:
        out = []
        for c in self.cases:
            for name in sorted(c["invariants"]):
                if not c["invariants"][name]:
                    out.append(f"{c['app']}/seed{c['seed']}: {name}")
        nc = self.negative_control
        if nc is not None and not nc["ok"]:
            out.append(
                "negative_control: retries-disabled run lost no records "
                "(the invariant suite would be vacuous)"
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.violations()

    def as_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "n_records": self.n_records,
            "amp_bound": self.amp_bound,
            "apps": list(self.apps),
            "seeds": list(self.seeds),
            "baselines": dict(self.baselines),
            "cases": self.cases,
            "negative_control": self.negative_control,
            "ok": self.ok,
            "violations": self.violations(),
        }

    def to_json(self) -> str:
        """Canonical JSON: two identical sweeps are byte-identical."""
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def render(self) -> str:
        rows = []
        for c in self.cases:
            rows.append([
                c["app"], c["seed"], c["n_faults"],
                f"{c['makespan_ratio']:.2f}", f"{c['amplification']:.3f}",
                c["n_retransmits"], c["n_breaker_trips"],
                "ok" if c["ok"] else "FAIL",
            ])
        table = render_table(
            ["app", "seed", "faults", "T/T0", "amp", "retx", "trips", "result"],
            rows,
            title=f"chaos soak, N={self.n_records}, "
            f"{len(self.seeds)} seeds x {len(self.apps)} apps",
        )
        lines = [table]
        nc = self.negative_control
        if nc is not None:
            lines.append(
                f"negative control (retries disabled): lost "
                f"{nc['lost_records']}/{nc['n_total']} records, "
                f"completed={nc['completed']} -> "
                f"{'ok' if nc['ok'] else 'FAIL'}"
            )
        v = self.violations()
        lines.append(
            "PASS: all invariants held" if not v
            else "FAIL: " + "; ".join(v)
        )
        return "\n".join(lines)


# ------------------------------------------------------------------- sweep
def _dsmsort_t0(n_records: int) -> float:
    """Fault-free reliable-transport baseline makespan for DSM-Sort."""
    from ..dsmsort.runtime import DsmSortJob

    params = chaos_params()
    cfg = DSMConfig.for_n(n_records, alpha=8, gamma=16)
    # Provisional direct-transport run sizes the retry policy; the real
    # baseline then runs the same reliable stack the chaos cases use.
    provisional = DsmSortJob(
        params, cfg, policy="sr", seed=0, faults=FaultPlan()
    ).run_pass1().makespan
    job = DsmSortJob(
        params, cfg, policy="sr", seed=0, faults=FaultPlan(),
        transport="reliable", retry_policy=_policy_for(provisional),
    )
    return job.run_pass1().makespan


def _filterscan_t0(n_records: int) -> float:
    """Fault-free reliable-transport baseline makespan for filter-scan."""
    params = chaos_params()
    provisional = ResilientFilterScan(params, n_records, seed=0).run()["makespan"]
    app = ResilientFilterScan(
        params, n_records, seed=0, policy=_policy_for(provisional)
    )
    return app.run()["makespan"]


_CASE_RUNNERS: dict[str, Callable[..., dict]] = {
    "dsmsort": _run_dsmsort_case,
    "filterscan": _run_filterscan_case,
    "recovery": _run_recovery_case,
    "straggler": _run_straggler_case,
    "scheduler": _run_scheduler_case,
    "partition": _run_partition_case,
}

_BASELINES: dict[str, Callable[[int], float]] = {
    "dsmsort": _dsmsort_t0,
    "filterscan": _filterscan_t0,
    "recovery": _recovery_t0,
    "straggler": _straggler_t0,
    "scheduler": _scheduler_t0,
    # the partition app runs the same reliable-transport sort, so it shares
    # the dsmsort fault-free baseline
    "partition": _dsmsort_t0,
}


def list_chaos_apps() -> list[tuple[str, str]]:
    """Registered chaos apps with one-line summaries (for ``--list-apps``)."""
    out = []
    for name in sorted(_CASE_RUNNERS):
        doc = _CASE_RUNNERS[name].__doc__ or ""
        first = doc.strip().splitlines()[0].strip() if doc.strip() else ""
        out.append((name, first))
    return out


def _chaos_case(task: tuple) -> dict:
    """One (app, seed) chaos case — module-level so it pickles to workers."""
    app, seed, n_records, baseline, amp_bound = task
    return _CASE_RUNNERS[app](seed, n_records, baseline, amp_bound)


def run_chaos(
    seeds: Union[int, Sequence[int]] = 12,
    apps: Sequence[str] = ("dsmsort", "filterscan"),
    n_records: int = 1 << 13,
    amp_bound: float = 3.5,
    negative_control: bool = True,
    seed0: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
) -> ChaosReport:
    """Sweep seeded fault schedules across the apps; return the report.

    ``seeds`` is a count (seeds ``seed0 .. seed0 + seeds - 1``) or an
    explicit sequence.  Deterministic: identical arguments produce a
    byte-identical :meth:`ChaosReport.to_json`.

    Each (seed, app) case is an independent emulation, so the sweep fans
    out across ``workers`` processes (default: ``REPRO_BENCH_WORKERS`` or
    the CPU count); results merge in sweep order, so the report is
    byte-identical whatever the worker count.
    """
    seed_list = (
        list(range(seed0, seed0 + seeds)) if isinstance(seeds, int) else list(seeds)
    )
    for app in apps:
        if app not in _CASE_RUNNERS:
            raise ValueError(
                f"unknown chaos app {app!r}; expected one of "
                f"{sorted(_CASE_RUNNERS)}"
            )
    say = progress if progress is not None else (lambda _msg: None)
    baselines = {}
    for app in apps:
        baselines[app] = _BASELINES[app](n_records)
        say(f"baseline {app}: T0={baselines[app]:.4f}s")
    report = ChaosReport(
        n_records=int(n_records),
        amp_bound=float(amp_bound),
        apps=list(apps),
        seeds=seed_list,
        baselines=baselines,
    )
    from ..bench.parallel import parallel_map

    tasks = [
        (app, seed, n_records, baselines[app], amp_bound)
        for seed in seed_list
        for app in apps
    ]
    for task, case in zip(tasks, parallel_map(_chaos_case, tasks, workers=workers)):
        app, seed = task[0], task[1]
        report.cases.append(case)
        say(
            f"{app} seed={seed}: {case['n_faults']} faults, "
            f"T/T0={case['makespan_ratio']:.2f}, "
            f"{'ok' if case['ok'] else 'VIOLATION'}"
        )
    if negative_control and "dsmsort" in apps:
        report.negative_control = _run_negative_control(
            n_records, baselines["dsmsort"]
        )
        say(
            f"negative control: lost "
            f"{report.negative_control['lost_records']} records "
            f"({'ok' if report.negative_control['ok'] else 'FAIL'})"
        )
    return report
