"""Resilient disk I/O: retry transient read errors with deterministic backoff.

An injected ``disk_fault`` window (see :func:`repro.faults.disk_fault`) makes
:meth:`Disk.read <repro.emulator.disk.Disk.read>` raise
:class:`~repro.emulator.disk.DiskFault` for its duration.  The device
recovers once the window closes, so the right response is to wait and retry;
:func:`read_resilient` does that with a fixed doubling backoff — no
randomness, so retries perturb nothing in fault-free runs and stay
deterministic under faults.
"""

from __future__ import annotations

from typing import Optional

from ..emulator.disk import Disk, DiskFault
from ..sim import Simulator

__all__ = ["read_resilient"]


def read_resilient(
    sim: Simulator,
    disk: Disk,
    nbytes: int,
    retry_delay: float = 0.001,
    backoff: float = 2.0,
    max_backoff: float = 0.05,
    max_attempts: Optional[int] = None,
):
    """Process generator: ``disk.read`` with retry on :class:`DiskFault`.

    Waits ``retry_delay`` simulated seconds after the first failure, doubling
    (up to ``max_backoff``) on each subsequent one.  With ``max_attempts``
    set, the final :class:`DiskFault` propagates once the budget is spent;
    by default it retries until the fault window closes.
    """
    attempt = 0
    delay = float(retry_delay)
    while True:
        try:
            n = yield from disk.read(nbytes)
            return n
        except DiskFault:
            attempt += 1
            if max_attempts is not None and attempt >= max_attempts:
                raise
            tracer = sim.tracer
            if tracer is not None:
                tracer.instant(
                    sim.now, disk.name,
                    f"read-retry #{attempt}", cat="resilience",
                )
            m = sim.metrics
            if m is not None:
                m.counter("repro_disk_read_retries_total", node=disk.name).inc()
            yield sim.timeout(delay)
            delay = min(delay * backoff, max_backoff)
