"""repro.resilience — reliable transport and overload protection.

The emulator's base network (:mod:`repro.emulator.net`) delivers every
message; the message-fault kinds added in :mod:`repro.faults` break that
assumption (drop/dup/delay/corrupt windows, transient disk errors).  This
package restores end-to-end reliability on top of the lossy substrate:

- :mod:`~repro.resilience.channel` — :class:`ReliableEndpoint`: sequence
  numbers, acks, deadline timeouts with seeded exponential backoff + jitter,
  receiver-side idempotent dedup, and a bounded credit window that gives
  senders simulated-time backpressure;
- :mod:`~repro.resilience.breaker` — per-link :class:`CircuitBreaker`
  (closed -> open -> half-open) and the :class:`BreakerBoard` that the
  routing layer consults to steer work away from flapping links;
- :mod:`~repro.resilience.io` — retry wrapper for transient
  :class:`~repro.emulator.disk.DiskFault` read errors;
- :mod:`~repro.resilience.chaos` — the seeded chaos soak harness behind
  ``python -m repro chaos``.

See ``docs/RESILIENCE.md`` for the protocol and its invariants.
"""

from .breaker import BreakerBoard, CircuitBreaker
from .channel import ChannelStats, ReliableEndpoint, RetryPolicy
from .io import read_resilient

__all__ = [
    "BreakerBoard",
    "ChannelStats",
    "CircuitBreaker",
    "ReliableEndpoint",
    "RetryPolicy",
    "read_resilient",
]
