"""Reliable exactly-once messaging over the lossy emulated network.

The base :class:`~repro.emulator.net.Network` can lose, duplicate, delay, or
corrupt messages once fault windows are armed (see
:meth:`~repro.emulator.net.Network.set_msg_fault`).  A
:class:`ReliableEndpoint` per node restores end-to-end reliability with the
classic protocol:

- every data message carries a per-sender **sequence number** and is kept
  pending until the receiver's **ack** arrives;
- a **deadline timeout** — sized from the message's expected delivery time
  plus the retry policy's timeout — retransmits unacked messages, with
  seeded **exponential backoff + jitter** so retransmission storms decorrelate
  deterministically;
- the receiver **acks every copy** (the previous ack may have been lost) but
  delivers each ``(sender, seq)`` exactly once (**idempotent dedup**);
- **corrupted** copies (checksum mismatch) are rejected without ack, forcing
  a retransmission;
- a bounded **credit window** caps in-flight unacked messages per
  destination: ``wait_window`` blocks the sender, charging simulated time,
  which is the backpressure signal the load manager consumes
  (:meth:`repro.core.load_manager.LoadManager.backpressure_begin`);
- an optional **bounded inbox** blocks the receive loop when the application
  falls behind, which stalls acks and thereby closes the sender's window —
  end-to-end backpressure.

Delivery outcomes feed the optional
:class:`~repro.resilience.breaker.BreakerBoard` (ack = success, timeout =
failure), giving the routing layer its per-link health signal.

Everything is deterministic: timers go through the simulator, jitter comes
from a seeded generator stream, and all trace/metrics emission is
``is None``-guarded.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Hashable, Optional

import numpy as np

from ..emulator.net import Message
from ..sim import Event, Store

__all__ = ["REL", "RetryPolicy", "ChannelStats", "ReliableEndpoint"]

#: marker prefix of protocol envelopes on the wire
REL = "__rel__"

#: wire size charged for an ack (header-only message)
ACK_NBYTES = 16


class RetryPolicy:
    """Retransmission and flow-control knobs for a :class:`ReliableEndpoint`.

    ``timeout`` is the grace period *after the expected delivery instant*
    before a message is presumed lost; ``backoff`` multiplies it per attempt
    up to ``max_backoff``; ``jitter`` spreads each timeout by a seeded
    uniform factor in ``[1 - jitter, 1 + jitter]``.  ``max_attempts`` caps
    total transmissions (None = retry forever); ``window`` is the per-
    destination in-flight credit limit enforced by ``wait_window``.
    """

    def __init__(
        self,
        timeout: float = 0.002,
        backoff: float = 2.0,
        max_backoff: float = 0.1,
        jitter: float = 0.25,
        max_attempts: Optional[int] = None,
        window: int = 64,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        if backoff < 1:
            raise ValueError("backoff must be at least 1")
        if max_backoff < timeout:
            raise ValueError("max_backoff must be at least timeout")
        if not (0 <= jitter < 1):
            raise ValueError("jitter must be in [0, 1)")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if window < 1:
            raise ValueError("window must be at least 1")
        self.timeout = float(timeout)
        self.backoff = float(backoff)
        self.max_backoff = float(max_backoff)
        self.jitter = float(jitter)
        self.max_attempts = max_attempts
        self.window = int(window)

    def grace(self, attempt: int, rng: Optional[np.random.Generator]) -> float:
        """Timeout grace for transmission number ``attempt`` (0-based)."""
        base = min(self.timeout * self.backoff**attempt, self.max_backoff)
        if rng is not None and self.jitter:
            base *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return base


class ChannelStats:
    """Per-endpoint protocol accounting."""

    __slots__ = (
        "n_data_sent", "n_retransmits", "n_gave_up", "n_acks_sent",
        "n_dup_dropped", "n_corrupt_dropped", "n_delivered", "n_passthrough",
        "payload_bytes", "retrans_bytes", "window_wait_time",
    )

    def __init__(self) -> None:
        self.n_data_sent = 0
        self.n_retransmits = 0
        self.n_gave_up = 0
        self.n_acks_sent = 0
        self.n_dup_dropped = 0
        self.n_corrupt_dropped = 0
        self.n_delivered = 0
        self.n_passthrough = 0
        self.payload_bytes = 0
        self.retrans_bytes = 0
        self.window_wait_time = 0.0

    def amplification(self) -> float:
        """Bytes on the wire over payload bytes (1.0 = no retransmissions)."""
        if self.payload_bytes == 0:
            return 1.0
        return (self.payload_bytes + self.retrans_bytes) / self.payload_bytes

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class _Pending:
    """One unacked outbound message."""

    __slots__ = ("seq", "dst", "payload", "nbytes", "tag", "attempt", "acked",
                 "cancelled", "deadline_t")

    def __init__(self, seq: int, dst: Hashable, payload: Any, nbytes: int, tag: str):
        self.seq = seq
        self.dst = dst
        self.payload = payload
        self.nbytes = nbytes
        self.tag = tag
        self.attempt = 0
        self.acked = False
        self.cancelled = False
        #: instant the current attempt's retransmit timer was armed at
        #: (expected delivery); the grace between it and the actual
        #: retransmission is traced as breaker backoff
        self.deadline_t = 0.0


class ReliableEndpoint:
    """Reliable send/receive for one node; see the module docstring.

    The endpoint spawns its own receive loop (registered to ``node``, so a
    node crash interrupts it) that consumes the raw mailbox: protocol
    envelopes are acked/deduped and their payloads land in :attr:`inbox` as
    plain reconstructed messages; non-protocol messages pass through
    untouched, so direct ``mailbox.put`` control paths keep working.
    Applications must read via :meth:`recv` (not ``node.recv``).
    """

    def __init__(
        self,
        plat,
        node,
        rng: Optional[np.random.Generator] = None,
        policy: Optional[RetryPolicy] = None,
        board=None,
        inbox_capacity: Optional[int] = None,
    ):
        self.plat = plat
        self.sim = plat.sim
        self.node = node
        self.policy = policy if policy is not None else RetryPolicy()
        self.rng = rng
        self.board = board
        #: delivered (deduped) messages, awaiting application recv
        self.inbox = Store(self.sim, capacity=inbox_capacity, name=f"rel:{node.node_id}")
        self.stats = ChannelStats()
        self._seq = 0
        self._pending: dict[int, _Pending] = {}
        self._inflight: dict[Hashable, int] = defaultdict(int)
        self._waiters: dict[Hashable, list[Event]] = defaultdict(list)
        self._dead_peers: set[Hashable] = set()
        self._seen: set[tuple[Hashable, int]] = set()
        self._proc = plat.spawn(
            self._receiver(), name=f"rel.{node.node_id}", node=node
        )

    # -- sending ---------------------------------------------------------------
    @staticmethod
    def _node_id(dst) -> Hashable:
        return dst.node_id if hasattr(dst, "node_id") else dst

    def post(self, dst, payload: Any, nbytes: int, tag: str = "") -> _Pending:
        """Non-blocking reliable send; safe to call from callbacks.

        Bypasses the credit window (use :meth:`wait_window` first when flow
        control matters — recovery paths deliberately skip it).
        """
        dst_id = self._node_id(dst)
        e = _Pending(self._seq, dst_id, payload, int(nbytes), tag)
        self._seq += 1
        self._pending[e.seq] = e
        self._inflight[dst_id] += 1
        self.stats.n_data_sent += 1
        self.stats.payload_bytes += e.nbytes
        self._transmit(e, first=True)
        return e

    def send(self, dst, payload: Any, nbytes: int, tag: str = ""):
        """Process generator: window wait + CPU copy charge + reliable post."""
        dst_id = self._node_id(dst)
        yield from self.wait_window(dst_id)
        cycles = nbytes * self.node.params.cycles_per_net_byte
        if cycles:
            yield from self.node.cpu.execute(cycles=cycles)
        return self.post(dst_id, payload, nbytes, tag)

    def _transmit(self, e: _Pending, first: bool) -> None:
        msg = self.plat.network.post(
            self.node.node_id, e.dst,
            (REL, "data", self.node.node_id, e.seq, e.payload),
            e.nbytes, tag=e.tag,
        )
        if not first:
            self.stats.n_retransmits += 1
            self.stats.retrans_bytes += e.nbytes
            self._note("retransmit", e)
        # Adaptive deadline: wait for the known delivery instant (far in the
        # future when the link is backed up) plus the policy grace.  A dropped
        # message has no delivery instant; retry after the bare grace.
        deliver_at = msg.deliver_at if msg.deliver_at is not None else self.sim.now
        e.deadline_t = deliver_at
        grace = self.policy.grace(e.attempt, self.rng)
        delay = max(0.0, deliver_at - self.sim.now) + grace
        self.sim.schedule_callback(lambda entry=e: self._on_timeout(entry), delay=delay)

    def _on_timeout(self, e: _Pending) -> None:
        if e.acked or e.cancelled:
            return
        tracer = self.sim.tracer
        if tracer is not None and self.sim.now > e.deadline_t:
            # The expo-backoff grace the sender sat out before acting on this
            # timeout: a first-class blame bucket on the critical path.
            tracer.span(
                e.deadline_t, self.sim.now,
                f"{self.node.node_id}.backoff", f"grace {e.tag}".strip(),
                cat="breaker-backoff",
            )
        if not self.node.alive or e.dst in self._dead_peers:
            self._cancel(e)
            return
        if self.board is not None:
            self.board.record_failure(self.node.node_id, e.dst)
        attempts = e.attempt + 1
        if self.policy.max_attempts is not None and attempts >= self.policy.max_attempts:
            self.stats.n_gave_up += 1
            self._note("gave-up", e)
            self._cancel(e)
            return
        e.attempt += 1
        self._transmit(e, first=False)

    def _on_ack(self, seq: int) -> None:
        e = self._pending.pop(seq, None)
        if e is None:
            return
        e.acked = True
        self._release(e)
        if self.board is not None:
            self.board.record_success(self.node.node_id, e.dst)

    def _cancel(self, e: _Pending) -> None:
        if e.cancelled or e.acked:
            return
        e.cancelled = True
        self._pending.pop(e.seq, None)
        self._release(e)

    def _release(self, e: _Pending) -> None:
        self._inflight[e.dst] -= 1
        waiters = self._waiters.get(e.dst)
        if waiters:
            ready = list(waiters)
            waiters.clear()
            for ev in ready:
                if not ev.triggered:
                    ev.succeed()

    # -- flow control ----------------------------------------------------------
    def inflight(self, dst) -> int:
        return self._inflight[self._node_id(dst)]

    def wait_window(self, dst):
        """Process generator: block while ``dst``'s credit window is full.

        Returns the simulated seconds spent waiting (0.0 when the window had
        room) — the caller reports that to the load manager as backpressure.
        """
        dst_id = self._node_id(dst)
        t0 = self.sim.now
        while (
            dst_id not in self._dead_peers
            and self._inflight[dst_id] >= self.policy.window
        ):
            ev = Event(self.sim)
            self._waiters[dst_id].append(ev)
            yield ev
        waited = self.sim.now - t0
        if waited:
            self.stats.window_wait_time += waited
            tracer = self.sim.tracer
            if tracer is not None:
                # Credit-window stall: the sender was ready but the channel
                # held it back (backpressure) — traced so the critical-path
                # profiler can blame transport backoff, not the sender's CPU.
                tracer.span(
                    t0, self.sim.now,
                    f"{self.node.node_id}.backoff", f"window {dst_id}",
                    cat="breaker-backoff",
                )
        return waited

    def cancel_peer(self, peer) -> None:
        """Stop retransmitting to a peer declared dead; release its credits."""
        peer_id = self._node_id(peer)
        self._dead_peers.add(peer_id)
        for e in [p for p in self._pending.values() if p.dst == peer_id]:
            self._cancel(e)
        waiters = self._waiters.get(peer_id)
        if waiters:
            ready = list(waiters)
            waiters.clear()
            for ev in ready:
                if not ev.triggered:
                    ev.succeed()

    def revive_peer(self, peer) -> None:
        """Resume reliable delivery to a re-admitted peer (a healed cut).

        Undoes :meth:`cancel_peer`'s dead-peer mark only; transfers cancelled
        while the peer was out stay cancelled — the membership layer decides
        what (if anything) to re-send under the new epoch.
        """
        self._dead_peers.discard(self._node_id(peer))

    def fence_outbound(self, tags=None) -> list:
        """Cancel this endpoint's unacked outbound transfers; return them.

        The membership layer calls this when the owning node is *expelled*
        while still alive: a zombie's queued retransmissions must stop so a
        fenced takeover can re-ship the same data without racing it.  The
        returned :class:`_Pending` entries let the caller unwind whatever
        state markers were paired with the original posts (credit windows
        are released per entry, so fenced deliveries leak none).  ``tags``
        restricts cancellation to those message tags; the receive loop stays
        up — the node still acks/dedups inbound traffic and resumes service
        if later re-admitted.
        """
        cancelled = []
        for e in list(self._pending.values()):
            if tags is not None and e.tag not in tags:
                continue
            if not e.acked and not e.cancelled:
                cancelled.append(e)
                self._cancel(e)
        return cancelled

    # -- receiving -------------------------------------------------------------
    def _receiver(self):
        node = self.node
        network = self.plat.network
        while True:
            msg = yield from node.recv()
            p = msg.payload
            if not (isinstance(p, tuple) and len(p) >= 4 and p[0] == REL):
                self.stats.n_passthrough += 1
                self.inbox.put(msg)
                continue
            if p[1] == "ack":
                if msg.corrupted:
                    self.stats.n_corrupt_dropped += 1
                    continue
                self._on_ack(p[3])
                continue
            src, seq = p[2], p[3]
            if msg.corrupted:
                # Checksum mismatch: reject without ack; the sender's timer
                # will retransmit a clean copy.
                self.stats.n_corrupt_dropped += 1
                self._note_recv("corrupt", msg)
                continue
            # Ack every clean copy — the previous ack may have been lost.
            self.stats.n_acks_sent += 1
            network.post(
                node.node_id, src, (REL, "ack", node.node_id, seq),
                ACK_NBYTES, tag="rel-ack",
            )
            key = (src, seq)
            if key in self._seen:
                self.stats.n_dup_dropped += 1
                self._note_recv("dup", msg)
                continue
            self._seen.add(key)
            self.stats.n_delivered += 1
            delivery = Message(src, node.node_id, p[4], msg.nbytes, tag=msg.tag)
            ev = self.inbox.put(delivery)
            if not ev.triggered:
                # Bounded inbox is full: stall the receive loop (and with it
                # our acks) until the application catches up — backpressure.
                yield ev

    def recv(self):
        """Process generator: next deduped application message."""
        msg = yield self.inbox.get()
        return msg

    # -- checkpoint/restart ----------------------------------------------------
    def dedup_snapshot(self) -> set:
        """Copy of the (src, seq) dedup set, for durable checkpointing.

        Exactly-once delivery is only as durable as this set: an endpoint
        restarted *without* it would re-deliver any retransmission of a
        message it acked before the restart.
        """
        return set(self._seen)

    def restore_dedup(self, seen) -> None:
        """Adopt a :meth:`dedup_snapshot` taken before a restart."""
        self._seen |= set(seen)

    def shutdown(self) -> None:
        """Stop this endpoint's receive loop (simulated process restart).

        Pending outbound transfers are cancelled; the mailbox and dedup set
        are left as-is so a successor endpoint on the same node can adopt
        them via :meth:`restore_dedup`.
        """
        for e in list(self._pending.values()):
            self._cancel(e)
        if not self._proc.triggered:
            self._proc.interrupt(cause="endpoint shutdown")

    # -- observability ---------------------------------------------------------
    def _note(self, event: str, e: _Pending) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "resilience",
                f"{event} {e.tag}:{self.node.node_id}->{e.dst}#{e.seq}",
                cat="resilience",
            )
        m = self.sim.metrics
        if m is not None:
            m.counter("repro_rel_events_total", event=event).inc()

    def _note_recv(self, event: str, msg: Message) -> None:
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "resilience",
                f"{event} {msg.tag}:{msg.src}->{msg.dst}", cat="resilience",
            )
        m = self.sim.metrics
        if m is not None:
            m.counter("repro_rel_events_total", event=event).inc()

    def __repr__(self) -> str:
        return (
            f"<ReliableEndpoint {self.node.node_id} "
            f"pending={len(self._pending)} delivered={self.stats.n_delivered}>"
        )
