"""Per-link circuit breakers: quarantine flapping links as a routing signal.

A :class:`CircuitBreaker` follows the classic three-state protocol:

- **closed** — traffic flows; consecutive delivery failures are counted.
- **open** — tripped after ``fail_threshold`` consecutive failures.  The
  routing layer treats the link as unhealthy (``healthy`` is False) and
  steers new work elsewhere; already-queued retransmissions keep probing.
- **half-open** — entered lazily once ``cooldown`` simulated seconds have
  passed.  The next outcome decides: a success closes the breaker, a
  failure re-trips it.

Breakers never *block* traffic — the reliable channel keeps retransmitting
regardless — they only advise placement and routing.  That separation keeps
exactly-once delivery independent of breaker tuning.

State is observable through the ``repro_breaker_state`` gauge (0 closed,
1 open, 2 half-open) and ``repro_breaker_transitions_total`` counters; both
are ``is None``-guarded so unmetered runs pay nothing.
"""

from __future__ import annotations

from typing import Hashable, Optional

from ..sim import Simulator

__all__ = ["CircuitBreaker", "BreakerBoard"]


class CircuitBreaker:
    """Three-state breaker for one link, driven by delivery outcomes."""

    CLOSED, OPEN, HALF_OPEN = 0, 1, 2
    _NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half-open"}

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fail_threshold: int = 5,
        cooldown: float = 0.05,
    ):
        if fail_threshold < 1:
            raise ValueError("fail_threshold must be at least 1")
        if cooldown <= 0:
            raise ValueError("cooldown must be positive")
        self.sim = sim
        self.name = name
        self.fail_threshold = int(fail_threshold)
        self.cooldown = float(cooldown)
        self._state = self.CLOSED
        self._fails = 0
        self._opened_at = 0.0
        # Instant of the last half-open -> closed transition: a failure
        # landing at that same instant re-trips (see record_failure).
        self._closed_at: Optional[float] = None
        #: (t, state-name) history of every transition
        self.transitions: list[tuple[float, str]] = []
        self.n_trips = 0
        m = sim.metrics
        if m is not None:
            # Raw-state read: scraping must not advance the lazy half-open
            # transition, so the gauge reports _state, not .state.
            m.gauge(
                "repro_breaker_state",
                fn=lambda t: float(self._state),
                link=name,
            )

    # -- state ----------------------------------------------------------------
    def _maybe_half_open(self) -> None:
        if self._state == self.OPEN and self.sim.now >= self._opened_at + self.cooldown:
            self._set(self.HALF_OPEN)

    @property
    def state(self) -> int:
        """Current state; lazily moves open -> half-open after the cooldown."""
        self._maybe_half_open()
        return self._state

    @property
    def state_name(self) -> str:
        return self._NAMES[self.state]

    @property
    def healthy(self) -> bool:
        """Routing signal: False while the link is quarantined (open)."""
        return self.state != self.OPEN

    # -- outcomes -------------------------------------------------------------
    def record_failure(self) -> None:
        """A delivery attempt on this link timed out."""
        self._maybe_half_open()
        if self._state == self.HALF_OPEN:
            self._trip()
        elif self._state == self.CLOSED:
            if self._closed_at is not None and self.sim.now == self._closed_at:
                # Same-instant race with the success that just closed the
                # half-open probe: both outcomes were in flight together, so
                # the link is still suspect — the failure wins and re-trips
                # rather than being absorbed as 1 of ``fail_threshold``
                # fresh-window failures.
                self._trip()
                return
            self._fails += 1
            if self._fails >= self.fail_threshold:
                self._trip()

    def record_success(self) -> None:
        """A delivery on this link was acknowledged."""
        self._maybe_half_open()
        self._fails = 0
        if self._state == self.HALF_OPEN:
            self._closed_at = self.sim.now
            self._set(self.CLOSED)

    def _trip(self) -> None:
        self.n_trips += 1
        self._opened_at = self.sim.now
        self._fails = 0
        self._set(self.OPEN)

    def _set(self, state: int) -> None:
        if state == self._state:
            return
        self._state = state
        name = self._NAMES[state]
        self.transitions.append((self.sim.now, name))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant(
                self.sim.now, "resilience",
                f"breaker {self.name} -> {name}", cat="resilience",
            )
        m = self.sim.metrics
        if m is not None:
            m.counter("repro_breaker_transitions_total", to=name).inc()

    def __repr__(self) -> str:
        return f"<CircuitBreaker {self.name} {self._NAMES[self._state]}>"


class BreakerBoard:
    """All breakers, keyed by unordered link endpoint pair.

    Breakers are created lazily on the first *failure* — a run with no
    delivery failures allocates nothing (and, in metered runs, registers no
    extra instruments), keeping fault-free runs bit-identical.
    """

    def __init__(self, sim: Simulator, fail_threshold: int = 5, cooldown: float = 0.05):
        self.sim = sim
        self.fail_threshold = int(fail_threshold)
        self.cooldown = float(cooldown)
        self._breakers: dict[frozenset, CircuitBreaker] = {}

    def get(self, a: Hashable, b: Hashable) -> CircuitBreaker:
        """The breaker for link a<->b, created on first use."""
        key = frozenset((a, b))
        br = self._breakers.get(key)
        if br is None:
            name = "<->".join(sorted((str(a), str(b))))
            br = CircuitBreaker(self.sim, name, self.fail_threshold, self.cooldown)
            self._breakers[key] = br
        return br

    def peek(self, a: Hashable, b: Hashable) -> Optional[CircuitBreaker]:
        return self._breakers.get(frozenset((a, b)))

    def record_failure(self, a: Hashable, b: Hashable) -> None:
        self.get(a, b).record_failure()

    def record_success(self, a: Hashable, b: Hashable) -> None:
        br = self._breakers.get(frozenset((a, b)))
        if br is not None:
            br.record_success()

    def healthy(self, a: Hashable, b: Hashable) -> bool:
        br = self._breakers.get(frozenset((a, b)))
        return True if br is None else br.healthy

    def open_links(self) -> list[str]:
        """Names of currently-open breakers, sorted."""
        return sorted(br.name for br in self._breakers.values() if not br.healthy)

    def n_trips(self) -> int:
        return sum(br.n_trips for br in self._breakers.values())

    def __len__(self) -> int:
        return len(self._breakers)
