"""The job supervisor: restart budgets, backoff, and an escalation ladder.

A :class:`~repro.recovery.checkpoint.RecoverableSort` knows *how* to resume;
the :class:`JobSupervisor` decides *whether and with what* — the policy layer
a production scheduler would sit in.  Each failed attempt climbs one rung of
:data:`ESCALATION_LADDER`:

1. **retry** — resume from the manifest with everything else unchanged
   (the failure was probably transient);
2. **replace** — resume with a *fresh routing seed*: the load manager makes
   different placement decisions, steering the resumed work away from
   whatever placement pattern kept failing (re-placement without moving
   application objects, §3.3);
3. **restore** — strict checkpoint hygiene: the manifest is serialised to
   its canonical JSON form and reloaded (:meth:`RunManifest.to_json` /
   :meth:`~RunManifest.from_json`) before resuming, so the attempt runs
   from exactly what a cold process would read off the platters — if
   in-memory journal state was corrupt, this rung sheds it;
4. **abort** — the restart budget is exhausted; give up and return a
   :class:`SupervisorReport` with the full attempt history and the
   manifest's durable-frontier summary for post-mortem.

Each restart also pays an exponential-backoff delay (virtual time, charged
to the report's total) so a crash-looping job backs off instead of spinning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..faults.errors import UnrecoverableJobError
from ..util.rng import derive_seed
from .manifest import RunManifest

__all__ = ["ESCALATION_LADDER", "JobSupervisor", "RestartBudget", "SupervisorReport"]

#: rungs climbed on consecutive failures (1st, 2nd, 3rd+; then abort)
ESCALATION_LADDER = ("retry", "replace", "restore", "abort")


@dataclass(frozen=True)
class RestartBudget:
    """How many restarts a job gets, and how hard it backs off."""

    #: restarts allowed after the initial attempt (total attempts = 1 + this)
    max_restarts: int = 5
    #: backoff before the first restart (virtual seconds)
    backoff0: float = 0.05
    #: multiplier per consecutive failure
    backoff_factor: float = 2.0
    #: backoff ceiling
    backoff_cap: float = 1.0

    def __post_init__(self):
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be nonnegative")
        if self.backoff0 < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be nonnegative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")

    def backoff(self, n_consecutive_failures: int) -> float:
        if n_consecutive_failures <= 0:
            return 0.0
        return min(
            self.backoff0 * self.backoff_factor ** (n_consecutive_failures - 1),
            self.backoff_cap,
        )


@dataclass
class SupervisorReport:
    """Terminal outcome of a supervised job."""

    completed: bool
    aborted: bool
    n_attempts: int
    n_crashes: int
    #: (attempt_index, ladder rung taken before it, backoff paid) — the
    #: initial attempt takes no rung and appears only in ``outcomes``
    actions: list = field(default_factory=list)
    #: virtual time across all attempts plus backoff
    total_virtual_time: float = 0.0
    total_backoff: float = 0.0
    #: per-attempt outcomes (``AttemptOutcome``), in order
    outcomes: list = field(default_factory=list)
    #: human-readable abort reason ("" on success)
    reason: str = ""
    #: manifest durable-frontier summary at exit (for post-mortem)
    manifest_report: Optional[dict] = None

    def __repr__(self) -> str:
        tag = "completed" if self.completed else ("aborted" if self.aborted else "?")
        return (
            f"<SupervisorReport {tag} attempts={self.n_attempts} "
            f"crashes={self.n_crashes} t={self.total_virtual_time:.4f}>"
        )


class JobSupervisor:
    """Drives a :class:`RecoverableSort` to completion or abort.

    Pass ``registry`` to meter the supervision itself
    (``repro_supervisor_*`` counters).  When several supervised jobs share
    one registry — the multi-tenant scheduler does exactly this — each
    supervisor MUST carry a distinct ``job_id``: its counters (and, via the
    sort's ``job_id``, the job's own stage/routing instruments) are then
    labelled ``job=<id>`` instead of assuming exclusive ownership of the
    registry namespace.  ``job_id`` defaults to the sort's own ``job_id``.
    """

    def __init__(
        self,
        sort,
        budget: Optional[RestartBudget] = None,
        *,
        registry=None,
        job_id: Optional[str] = None,
    ):
        self.sort = sort
        self.budget = budget if budget is not None else RestartBudget()
        self.registry = registry
        self.job_id = job_id if job_id is not None else getattr(sort, "job_id", None)
        self._job_labels = {"job": self.job_id} if self.job_id is not None else {}

    def _count(self, name: str, dv: float = 1.0, **labels) -> None:
        if self.registry is not None:
            self.registry.counter(name, **labels, **self._job_labels).inc(dv)

    def run(self, crashes=()) -> SupervisorReport:
        """Attempt the job until done, escalating per failure.

        ``crashes`` is the kill schedule: attempt ``i`` is killed at virtual
        instant ``crashes[i]`` when the schedule covers it; attempts beyond
        the schedule run uninterrupted.  (The schedule exists for tests and
        chaos drills — production failures would arrive via the fault plan.)
        """
        crashes = list(crashes)
        budget = self.budget
        actions: list[tuple[int, str, float]] = []
        total_backoff = 0.0
        consecutive = 0
        attempt_no = 0
        while True:
            routing_seed = None
            if attempt_no > 0:
                rung = ESCALATION_LADDER[min(consecutive, 3) - 1]
                if rung in ("replace", "restore"):
                    # Fresh placement decisions for the resumed work.
                    routing_seed = derive_seed(
                        self.sort.seed, f"replace{consecutive}"
                    )
                if rung == "restore":
                    # Cold-restore hygiene: resume from the serialised
                    # journal, not the in-memory object.
                    self.sort.manifest = RunManifest.from_json(
                        self.sort.manifest.to_json()
                    )
                pause = budget.backoff(consecutive)
                total_backoff += pause
                actions.append((attempt_no, rung, pause))
                self._count("repro_supervisor_escalations_total", rung=rung)
                self._count("repro_supervisor_backoff_seconds_total", pause)
            crash_at = crashes[attempt_no] if attempt_no < len(crashes) else None
            try:
                out = self.sort.attempt(crash_at=crash_at, routing_seed=routing_seed)
            except UnrecoverableJobError as exc:
                # The fleet itself is gone (nothing to replay from / stripe
                # onto / take a shard over): no ladder rung can help, so
                # convert the dead end into a clean abort instead of letting
                # the typed RuntimeError crash the caller.
                self._count("repro_supervisor_attempts_total")
                self._count("repro_supervisor_unrecoverable_total")
                return self._report(
                    completed=False, aborted=True, actions=actions,
                    total_backoff=total_backoff,
                    reason=f"unrecoverable: {exc}",
                )
            attempt_no += 1
            self._count("repro_supervisor_attempts_total")
            if out.crashed:
                self._count("repro_supervisor_crashes_total")
            if out.completed:
                return self._report(
                    completed=True, aborted=False, actions=actions,
                    total_backoff=total_backoff, reason="",
                )
            consecutive += 1
            if consecutive > budget.max_restarts:
                return self._report(
                    completed=False, aborted=True, actions=actions,
                    total_backoff=total_backoff,
                    reason=(
                        f"restart budget exhausted: {consecutive} consecutive "
                        f"failures > max_restarts={budget.max_restarts}"
                    ),
                )

    def _report(
        self, *, completed, aborted, actions, total_backoff, reason
    ) -> SupervisorReport:
        outcomes = list(self.sort.attempts)
        return SupervisorReport(
            completed=completed,
            aborted=aborted,
            n_attempts=len(outcomes),
            n_crashes=sum(1 for o in outcomes if o.crashed),
            actions=actions,
            total_virtual_time=self.sort.total_virtual_time + total_backoff,
            total_backoff=total_backoff,
            outcomes=outcomes,
            reason=reason,
            manifest_report=self.sort.manifest.report(),
        )
