"""Checkpoint/restart for DSM-Sort: kill the coordinator, resume the job.

The paper's platform pushes computation into shared storage; a long sort is
therefore exposed to one more failure domain than the ASUs and hosts the
fault-tolerant runtime already covers — the *coordinating job itself*.  This
module models that as a first-class fault kind (``crash_coordinator``) and
provides :class:`RecoverableSort`, a thin wrapper that re-creates a killed
:class:`~repro.dsmsort.DsmSortJob` from its write-ahead
:class:`~repro.recovery.manifest.RunManifest` and resumes it without
re-reading completed shards or re-merging completed buckets.

Semantics of a coordinator crash:

* every volatile structure dies — host buffers, in-flight messages, ship
  markers, run lineage held in coordinator memory;
* the manifest journal and the run payloads it references survive (they are
  on ASU platters, written through the charged disk path);
* a resumed attempt replays the journal, adopts the durable frontier, and
  only produces/ships/merges what the journal does not already cover.

The proof obligation (tested in ``tests/test_recovery.py``): for *any* kill
instant, the resumed output is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..dsmsort.runtime import DsmSortJob, Pass1Result, Pass2Result
from ..faults.injector import FAULT_KINDS, Fault, FaultPlan, register_fault_kind
from .manifest import RunManifest

__all__ = ["AttemptOutcome", "RecoverableSort", "crash_coordinator"]


# -- the fault kind ------------------------------------------------------------
def _validate_coordinator(f: Fault) -> None:
    if f.index != 0:
        raise ValueError(
            "crash_coordinator targets the (single) job coordinator; index "
            f"must be 0, got {f.index}"
        )


if "crash_coordinator" not in FAULT_KINDS:
    register_fault_kind(
        "crash_coordinator",
        validate=_validate_coordinator,
        describe=lambda f: f"t={f.t:.3f} crash_coordinator",
    )


def crash_coordinator(t: float) -> Fault:
    """Fail-stop the whole job at simulated instant ``t``.

    Fires through the injector's custom-kind path: no platform node dies;
    instead the job's fault hook stops the simulation clock, modelling the
    coordinating process being killed with all its volatile state.
    """
    return Fault(t=t, kind="crash_coordinator", index=0)


# -- one attempt's outcome -----------------------------------------------------
@dataclass
class AttemptOutcome:
    """What one (possibly killed) attempt of the job accomplished."""

    #: phase the attempt ended in: "pass1", "pass2", or "done"
    phase: str
    #: True iff the job finished (sorted output available)
    completed: bool
    #: True iff a coordinator kill ended this attempt
    crashed: bool
    #: virtual time this attempt consumed (both passes, as run)
    makespan: float
    #: the kill instant this attempt was run under (None = uninterrupted)
    crash_at: Optional[float] = None
    #: True iff pass 1 was adopted from the manifest instead of re-run
    restored_pass1: bool = False
    pass1: Optional[Pass1Result] = None
    pass2: Optional[Pass2Result] = None

    def __repr__(self) -> str:
        tag = "done" if self.completed else f"crashed in {self.phase}"
        return f"<AttemptOutcome {tag} makespan={self.makespan:.4f}>"


# -- the recoverable job -------------------------------------------------------
class RecoverableSort:
    """A DSM-Sort that survives coordinator kills via its manifest.

    Each :meth:`attempt` builds a *fresh* :class:`DsmSortJob` (same workload
    seed, so the regenerated input is identical) sharing one
    :class:`RunManifest`; the job's fault-tolerant path replays the journal
    before doing any work, so attempt N+1 starts from attempt N's durable
    frontier.  ``crash_at`` is an absolute virtual instant within the
    attempt: landing in pass 1 it fires a ``crash_coordinator`` fault,
    landing in pass 2 it becomes the merge deadline, and landing past the
    attempt's completion it is a no-op.
    """

    def __init__(
        self,
        params,
        config,
        *,
        seed: int = 0,
        policy: str = "sr",
        workload: str = "uniform",
        base_faults: Optional[FaultPlan] = None,
        manifest: Optional[RunManifest] = None,
        transport: str = "direct",
        speculation=None,
        metrics_factory=None,
        job_kwargs: Optional[dict] = None,
        job_id: Optional[str] = None,
    ):
        self.params = params
        self.config = config
        self.seed = int(seed)
        self.policy = policy
        self.workload = workload
        self._base_faults = tuple(base_faults) if base_faults is not None else ()
        self.transport = transport
        self.speculation = speculation
        self._metrics_factory = metrics_factory
        self._job_kwargs = dict(job_kwargs or {})
        #: scheduler namespace: every attempt's DsmSortJob carries this id,
        #: so two supervised jobs can share one MetricsRegistry (their
        #: instruments get distinct ``job=<id>`` labels)
        self.job_id = job_id
        if job_id is not None:
            self._job_kwargs.setdefault("job_id", job_id)
        #: the shared journal — the only state that survives a kill
        self.manifest = manifest if manifest is not None else RunManifest()
        #: per-attempt outcomes, in order
        self.attempts: list[AttemptOutcome] = []
        #: virtual time consumed across all attempts (excludes backoff —
        #: the supervisor accounts for that)
        self.total_virtual_time = 0.0
        #: the most recent job (holds final_buckets once completed)
        self.job: Optional[DsmSortJob] = None

    # -- plumbing -----------------------------------------------------------
    def _make_job(
        self, crash_at: Optional[float], routing_seed: Optional[int]
    ) -> DsmSortJob:
        faults = list(self._base_faults)
        if crash_at is not None:
            faults.append(crash_coordinator(crash_at))
        metrics = (
            self._metrics_factory() if self._metrics_factory is not None else None
        )
        return DsmSortJob(
            self.params,
            self.config,
            policy=self.policy,
            workload=self.workload,
            seed=self.seed,
            faults=FaultPlan(faults),
            transport=self.transport,
            manifest=self.manifest,
            routing_seed=routing_seed,
            speculation=self.speculation,
            metrics=metrics,
            **self._job_kwargs,
        )

    # -- one attempt --------------------------------------------------------
    def attempt(
        self,
        crash_at: Optional[float] = None,
        routing_seed: Optional[int] = None,
    ) -> AttemptOutcome:
        """Run (or resume) the job, optionally killing it at ``crash_at``."""
        job = self._make_job(crash_at, routing_seed)
        self.job = job
        restored = False
        if self.manifest.pass1_complete():
            # A predecessor finished pass 1; adopt it rather than re-run.
            job.restore_pass1()
            r1, mk1, restored = None, 0.0, True
        else:
            r1 = job.run_pass1()
            mk1 = r1.makespan
            if not r1.completed:
                return self._record(
                    AttemptOutcome(
                        phase="pass1", completed=False,
                        crashed=bool(r1.coordinator_crashed),
                        makespan=mk1, crash_at=crash_at, pass1=r1,
                    )
                )
        deadline = None
        if crash_at is not None:
            deadline = crash_at - mk1
            if deadline <= 0:
                # Pass 1 finished exactly at/after the kill instant (tie won
                # by the completion event): the kill lands before pass 2 can
                # start, so nothing of the merge happens this attempt.
                return self._record(
                    AttemptOutcome(
                        phase="pass2", completed=False, crashed=True,
                        makespan=mk1, crash_at=crash_at, pass1=r1,
                        restored_pass1=restored,
                    )
                )
        r2 = job.run_pass2(deadline=deadline)
        return self._record(
            AttemptOutcome(
                phase="done" if r2.completed else "pass2",
                completed=r2.completed,
                crashed=not r2.completed,
                makespan=mk1 + r2.makespan,
                crash_at=crash_at,
                pass1=r1, pass2=r2, restored_pass1=restored,
            )
        )

    def _record(self, out: AttemptOutcome) -> AttemptOutcome:
        self.attempts.append(out)
        self.total_virtual_time += out.makespan
        return out

    # -- results ------------------------------------------------------------
    @property
    def completed(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].completed

    def output(self) -> np.ndarray:
        """The final sorted output (completed attempts only)."""
        if not self.completed or self.job is None:
            raise RuntimeError("job has not completed; call attempt() until done")
        return self.job.collected_output()

    def verify(self) -> None:
        """Assert sortedness + exact multiset match against the input."""
        if self.job is None:
            raise RuntimeError("no attempt has run")
        self.job.verify()

    def run_supervised(self, crashes=(), budget=None):
        """Drive attempts to completion under a :class:`JobSupervisor`.

        ``crashes[i]`` kills attempt ``i`` at that virtual instant; attempts
        past the schedule run uninterrupted.  Returns the supervisor's
        :class:`~repro.recovery.supervisor.SupervisorReport`.
        """
        from .supervisor import JobSupervisor

        return JobSupervisor(self, budget=budget).run(crashes=crashes)
