"""Straggler speculation: hedge slow replicas, steer routing around them.

"Dynamic changes in load at different points of the system can cause
imbalances" (§3.3) — and the worst imbalance is a *straggler*: one ASU or
host running far below its peers (a degraded clock, a competing tenant)
while the job's completion waits on it.  The :class:`Speculator` is an
unbound monitor process that watches per-replica progress **through the
metrics registry** (the same ``repro_stage_records`` rate instruments the
observability layer exports — no side channel) and reacts two ways:

* a lagging *ASU producer* gets its shard **hedged**: a duplicate
  distribute replica is spawned on the fastest alive peer (the shard is
  mirrored there), racing the original block-by-block.  First finisher
  wins each (block, bucket) fragment — the runtime's atomic ship markers
  dedup the loser, and in speculation mode every skipped fragment is
  digest-checked against what the winner shipped, so a hedge can never
  smuggle in divergent data;
* a lagging *host sorter* is flagged to the
  :class:`~repro.core.load_manager.LoadManager` as a soft steer-around
  (:meth:`mark_speculative`): new fragments prefer its peers until it
  catches back up, at which point the flag is cleared.

The laggard test is quantile-relative with a seeded jitter so sweeps are
reproducible: replica ``i`` is slow iff its average rate falls below
``ratio * quantile(peer rates, q) * (1 + jitter * u)`` with ``u`` drawn
from the policy's own RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..util.rng import derive_seed

__all__ = ["SpeculationPolicy", "Speculator", "StragglerSignal", "laggard_threshold"]


@dataclass(frozen=True)
class SpeculationPolicy:
    """Knobs for the straggler monitor (all times are virtual seconds)."""

    #: sampling period of the monitor process
    interval: float = 0.05
    #: no decisions before this instant (rates need history to mean anything)
    warmup: float = 0.1
    #: peer-rate quantile the laggard threshold is anchored to
    quantile: float = 0.5
    #: a replica is slow below ``ratio`` × that quantile
    ratio: float = 0.55
    #: ± relative jitter applied to the threshold (seeded, reproducible)
    jitter: float = 0.05
    #: don't hedge a shard with fewer unfinished blocks than this — the
    #: duplicate would finish after the original anyway
    min_remaining_blocks: int = 2
    #: at most this many hedge replicas per shard
    max_hedges_per_shard: int = 1
    #: global hedge budget for the whole pass
    max_hedges: int = 4
    #: RNG stream seed for the threshold jitter
    seed: int = 0
    #: also watch host sort rates and feed the load manager's steer-around
    watch_hosts: bool = True

    def __post_init__(self):
        if self.interval <= 0:
            raise ValueError("interval must be positive")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not 0.0 < self.ratio < 1.0:
            raise ValueError("ratio must be in (0, 1)")
        if self.jitter < 0:
            raise ValueError("jitter must be nonnegative")


def laggard_threshold(rates, policy: SpeculationPolicy, rng) -> float:
    """The rate below which a replica counts as a straggler.

    Shared by the DSM-Sort :class:`Speculator` and the pipeline executor's
    straggler watch, so "slow" means the same thing job-wide: ``ratio`` ×
    the ``quantile``-th peer rate, jittered by a seeded draw from ``rng``.
    """
    anchor = float(np.quantile(np.asarray(list(rates), dtype=float), policy.quantile))
    u = float(rng.uniform(-1.0, 1.0)) if policy.jitter else 0.0
    return policy.ratio * anchor * (1.0 + policy.jitter * u)


@dataclass
class StragglerSignal:
    """One monitor decision, for reports and tests."""

    t: float
    #: "asu" or "host"
    kind: str
    #: index of the replica the decision is about
    index: int
    #: its observed average rate (records/s since t=0)
    rate: float
    #: the threshold it was compared against
    threshold: float
    #: "hedge" (duplicate replica spawned), "steer" (routing flag set),
    #: or "clear" (routing flag lifted)
    action: str
    shard: Optional[int] = None
    helper: Optional[int] = None


class Speculator:
    """Monitor + hedging policy for one fault-tolerant pass-1 run.

    Attached by :class:`~repro.dsmsort.DsmSortJob` when constructed with
    ``speculation=SpeculationPolicy(...)``; requires a metrics registry
    (the job creates one if the caller didn't) because the registry's rate
    instruments ARE the progress signal.
    """

    def __init__(self, job, policy: SpeculationPolicy):
        if job.metrics is None:
            raise ValueError("speculation requires a metrics registry")
        self.job = job
        self.policy = policy
        self.rng = np.random.default_rng(derive_seed(policy.seed, "speculate"))
        #: every decision, in firing order
        self.signals: list[StragglerSignal] = []
        #: hedge replicas spawned (shard -> count)
        self.hedged: dict[int, int] = {}
        self.n_hedges = 0
        self._steered: set[int] = set()
        self._plat = None

    def attach(self, plat) -> None:
        """Spawn the monitor on ``plat`` (unbound: it is coordinator logic)."""
        self._plat = plat
        plat.spawn(self._monitor(plat), name="speculator")

    # -- monitor loop -------------------------------------------------------
    def _monitor(self, plat):
        pol = self.policy
        while True:
            yield plat.sim.timeout(pol.interval)
            now = plat.sim.now
            if now < pol.warmup:
                continue
            self._check_producers(plat, now)
            if pol.watch_hosts:
                self._check_hosts(plat, now)

    def _threshold(self, rates: list[float]) -> float:
        return laggard_threshold(rates, self.policy, self.rng)

    def _avg_rate(self, now: float, node: str, stage: str) -> float:
        # The runtime marks "repro_stage_records" with (node, stage) labels
        # (owner= is export metadata, not part of the instrument key), plus
        # a job=<id> label when the job runs namespaced under the scheduler.
        labels = getattr(self.job, "_job_labels", {})
        inst = self.job.metrics.get(
            "repro_stage_records", node=node, stage=stage, **labels
        )
        total = float(inst.total) if inst is not None else 0.0
        return total / now if now > 0 else 0.0

    # -- ASU producers: hedge ------------------------------------------------
    def _shard_blocks(self, shard: int) -> int:
        blk = self.job.params.block_records
        n = int(self.job.asu_data[shard].shape[0])
        return (n + blk - 1) // blk

    def _check_producers(self, plat, now: float) -> None:
        job, pol = self.job, self.policy
        active: list[tuple[int, int, float]] = []  # (shard, owner, rate)
        for shard, owner in sorted(job._shard_owner.items()):
            if shard in job._eof_posted or owner in job._dead_asus:
                continue
            active.append((shard, owner, self._avg_rate(now, f"asu{owner}", "distribute")))
        if len(active) < 2 or self.n_hedges >= pol.max_hedges:
            return
        thr = self._threshold([r for _s, _o, r in active])
        for shard, owner, rate in active:
            if rate >= thr:
                continue
            if self.hedged.get(shard, 0) >= pol.max_hedges_per_shard:
                continue
            remaining = self._shard_blocks(shard) - sum(
                1 for (s, _b) in job._blocks_complete if s == shard
            )
            if remaining < pol.min_remaining_blocks:
                continue
            helper = self._pick_helper(now, owner)
            if helper is None:
                continue
            self._hedge(plat, now, shard, owner, helper, rate, thr)
            if self.n_hedges >= pol.max_hedges:
                return

    def _pick_helper(self, now: float, owner: int) -> Optional[int]:
        """Fastest alive ASU that isn't the laggard (ties -> lowest index)."""
        job = self.job
        best, best_rate = None, -1.0
        for d in range(job.params.n_asus):
            if d == owner or d in job._dead_asus:
                continue
            r = self._avg_rate(now, f"asu{d}", "distribute")
            if r > best_rate:
                best, best_rate = d, r
        return best

    def _hedge(self, plat, now, shard, owner, helper, rate, thr) -> None:
        job, pol = self.job, self.policy
        blk = job.params.block_records
        rs = job.params.schema.record_size
        plat.spawn(
            job._produce_shard_ft(plat, helper, shard, blk, rs),
            name=f"hedge{shard}", node=plat.asus[helper],
        )
        self.hedged[shard] = self.hedged.get(shard, 0) + 1
        self.n_hedges += 1
        job._n_hedged_shards += 1
        self.signals.append(
            StragglerSignal(
                t=now, kind="asu", index=owner, rate=rate, threshold=thr,
                action="hedge", shard=shard, helper=helper,
            )
        )
        job.metrics.counter(
            "repro_speculation_hedges_total", **getattr(job, "_job_labels", {})
        ).inc()
        tracer = plat.sim.tracer
        if tracer is not None:
            tracer.instant(
                now, "faults",
                f"hedge shard{shard} (asu{owner} -> asu{helper})", cat="fault",
            )

    # -- host sorters: steer -------------------------------------------------
    def _check_hosts(self, plat, now: float) -> None:
        job = self.job
        lm = job.load_manager
        rates: list[tuple[int, float]] = []
        for h in range(job.params.n_hosts):
            if h in job._dead_hosts:
                continue
            rates.append((h, self._avg_rate(now, f"host{h}", "sort")))
        if len(rates) < 2:
            return
        thr = self._threshold([r for _h, r in rates])
        for h, rate in rates:
            if rate < thr and h not in self._steered:
                self._steered.add(h)
                lm.mark_speculative(h)
                self.signals.append(
                    StragglerSignal(
                        t=now, kind="host", index=h, rate=rate,
                        threshold=thr, action="steer",
                    )
                )
            elif rate >= thr and h in self._steered:
                self._steered.discard(h)
                lm.clear_speculative(h)
                self.signals.append(
                    StragglerSignal(
                        t=now, kind="host", index=h, rate=rate,
                        threshold=thr, action="clear",
                    )
                )
