"""repro.recovery — job-level durability for the emulated platform.

The resilience layer (PR 4) makes *messages* survive faults; this package
makes *jobs* survive them:

* :mod:`~repro.recovery.manifest` — a write-ahead run manifest durably
  logging DSM-Sort progress (distribute-block/shard completion, emitted runs
  with content digests, the pass-2 merge frontier) with its I/O charged
  simulated time through the emulated disk layer;
* :mod:`~repro.recovery.checkpoint` — the ``crash_coordinator`` fault kind
  and :class:`RecoverableSort`, which re-creates a killed
  :class:`~repro.dsmsort.DsmSortJob` from the manifest and resumes it
  without re-reading completed shards;
* :mod:`~repro.recovery.speculate` — a straggler speculator that watches
  per-replica progress rates in the metrics registry and hedges stage
  laggards with duplicate functor replicas (first-finisher-wins,
  digest-checked, exactly-once);
* :mod:`~repro.recovery.supervisor` — :class:`JobSupervisor`: restart
  budgets with exponential backoff and the retry → re-place →
  checkpoint-restore → abort escalation ladder.

See docs/RECOVERY.md for the manifest format and restart semantics.
"""

from .checkpoint import AttemptOutcome, RecoverableSort, crash_coordinator
from .manifest import CheckpointError, RestoredState, RunManifest, digest_records
from .speculate import SpeculationPolicy, Speculator, StragglerSignal
from .supervisor import (
    ESCALATION_LADDER,
    JobSupervisor,
    RestartBudget,
    SupervisorReport,
)

__all__ = [
    "RunManifest",
    "RestoredState",
    "CheckpointError",
    "digest_records",
    "RecoverableSort",
    "AttemptOutcome",
    "crash_coordinator",
    "SpeculationPolicy",
    "Speculator",
    "StragglerSignal",
    "JobSupervisor",
    "RestartBudget",
    "SupervisorReport",
    "ESCALATION_LADDER",
]
