"""The write-ahead run manifest: durable DSM-Sort progress, charged I/O.

The manifest is the job's recovery journal.  It records, as append-only
entries, everything a resumed attempt needs to avoid redoing work:

* ``block`` — a distribute block finished shipping: shard, block index, and
  the (bucket, record-count) list of every nonempty fragment it produced;
* ``shard`` — a shard's distribute finished (its EOF was broadcast);
* ``run`` — a sorted run became *durable* on an ASU: emitting host, bucket,
  destination ASU, record count, content digest, and the exact fragment keys
  the run covers (its lineage).  Re-replication after an ASU death logs the
  same run id again with the new destination;
* ``purge_asu`` / ``purge_host`` — a fail-stop revoked every live run on /
  from that device (mirrors the in-memory purge at the crash instant);
* ``pass1`` — run formation completed (with its makespan);
* ``bucket`` — a pass-2 bucket was fully merged (the merge frontier), with
  the final payload's digest.

Durability model: entries are durable the moment they are logged (an
idealized journal device — think NVRAM or a synchronous log disk), but the
journal *I/O time is still charged*: a writer process bound to the platform
batches pending entry bytes through an alive ASU's emulated disk
(write-behind), so checkpointing shows up in the simulated makespan.  Run
payloads live in an in-manifest :class:`dict` keyed by run id — the model
for data that is already on surviving platters when the coordinator dies.

The crash model this supports is a *coordinator* crash: all volatile job
state (host buffers, in-flight messages, ship markers) is lost; the manifest
and the payloads it references survive.  :meth:`RunManifest.restore_state`
replays the entries into exactly the bookkeeping a fresh
:class:`~repro.dsmsort.DsmSortJob` needs to resume — with every restored
payload digest-verified first.
"""

from __future__ import annotations

import base64
import hashlib
import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

__all__ = ["RunManifest", "RestoredState", "CheckpointError", "digest_records"]


class CheckpointError(RuntimeError):
    """A manifest invariant failed (digest mismatch, missing payload, ...)."""


def digest_records(arr: np.ndarray) -> str:
    """Content digest of a record batch (order-sensitive, byte-exact)."""
    return hashlib.sha1(arr.tobytes()).hexdigest()


@dataclass
class RestoredState:
    """What a replayed manifest says about a (possibly interrupted) run."""

    #: live durable runs in durability order: (rid, host, bucket, dest, payload)
    live_runs: list[tuple[int, int, int, int, np.ndarray]] = field(default_factory=list)
    #: fragment keys (shard, block, bucket) covered by live runs
    covered: set = field(default_factory=set)
    #: blocks whose every nonempty fragment is covered (safe to skip reading)
    blocks_complete: set = field(default_factory=set)
    #: per-block fragment layouts seen so far: (shard, block) -> [(bucket, n)]
    block_frags: dict = field(default_factory=dict)
    #: shards whose distribute fully completed (EOF broadcast)
    shards_done: set = field(default_factory=set)
    #: records held by live runs
    n_durable: int = 0
    pass1_done: bool = False
    pass1_makespan: float = 0.0
    #: pass-2 merge frontier: bucket -> final merged payload
    merged: dict = field(default_factory=dict)


class RunManifest:
    """Append-only job journal + durable run payload store.

    One manifest spans every attempt of one logical job: the first attempt
    starts it empty, each crash leaves it holding the durable frontier, and
    each resumed attempt binds it to the new platform and appends more.
    """

    def __init__(self):
        self.entries: list[dict] = []
        self._payloads: dict[int, np.ndarray] = {}
        self._next_rid = 0
        #: in-memory (volatile) metadata for emitted-but-not-yet-durable
        #: runs: rid -> (host, bucket, frag_keys).  Rebuilt per attempt.
        self._runs_meta: dict[int, tuple[int, int, list]] = {}
        self._logged_blocks: set = set()
        self._logged_shards: set = set()
        #: total journal bytes appended (also what gets charged to disk)
        self.bytes_logged = 0
        # -- platform binding (charging) --
        self._plat = None
        self._preferred_asu = 0
        self._pending_bytes = 0
        self._kick = None
        #: membership view fencing journal appends (None = fail-stop trust)
        self._view = None

    def attach_view(self, view) -> None:
        """Fence run-durability appends with a membership view.

        With a view attached, :meth:`log_run_durable` validates the
        destination ASU's epoch before journalling (raising
        :class:`~repro.faults.errors.StaleEpochError` for an expelled
        writer) and stamps each ``run`` entry with the epoch it was
        accepted under, so the journal records *which view* vouched for
        every durable run.  Without a view the journal format is unchanged
        byte-for-byte.
        """
        self._view = view

    # ------------------------------------------------------------- charging
    def bind(self, plat, asu_index: int = 0) -> None:
        """Attach the journal writer to ``plat`` (idempotent per platform).

        Spawns an unbound background process that batches pending entry
        bytes through the first alive ASU's disk (starting the search at
        ``asu_index``), so manifest I/O consumes simulated disk time without
        blocking the append path (group-commit write-behind).
        """
        if self._plat is plat:
            return
        self._plat = plat
        self._preferred_asu = asu_index
        self._pending_bytes = 0
        self._kick = None
        plat.spawn(self._writer(plat), name="manifest.wal")

    def _writer(self, plat):
        from ..sim import Event

        while True:
            if self._pending_bytes <= 0:
                ev = Event(plat.sim)
                self._kick = ev
                yield ev
                self._kick = None
            nbytes, self._pending_bytes = self._pending_bytes, 0
            disk = self._pick_disk(plat)
            if disk is not None and nbytes > 0:
                yield from disk.write(nbytes)

    def _pick_disk(self, plat):
        D = len(plat.asus)
        for step in range(D):
            asu = plat.asus[(self._preferred_asu + step) % D]
            if asu.alive:
                return asu.disk
        return None

    def _append(self, entry: dict) -> None:
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        self.entries.append(entry)
        nbytes = len(line) + 1
        self.bytes_logged += nbytes
        if self._plat is not None:
            self._pending_bytes += nbytes
            if self._kick is not None and not self._kick.triggered:
                self._kick.succeed()

    # ------------------------------------------------------------ log points
    def new_rid(self) -> int:
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def register_run(self, rid: int, host: int, bucket: int, frag_keys: list) -> None:
        """Volatile pre-registration of an emitted run's lineage.

        Called in the host's atomic emit region; becomes durable only when
        :meth:`log_run_durable` fires for the same ``rid``.  A coordinator
        crash in between simply forgets the run — its fragments stay
        uncovered and are re-shipped on resume.
        """
        self._runs_meta[rid] = (int(host), int(bucket), [tuple(k) for k in frag_keys])

    def log_run_durable(self, rid: int, dest: int, payload: np.ndarray) -> None:
        """A run's disk write completed on ASU ``dest``: journal + store it."""
        meta = self._runs_meta.get(rid)
        if meta is None:
            raise CheckpointError(f"run rid={rid} became durable but was never registered")
        host, bucket, frag_keys = meta
        entry = {
            "op": "run", "rid": rid, "host": host, "bucket": bucket,
            "dest": int(dest), "n": int(payload.shape[0]),
            "digest": digest_records(payload),
            "frags": [list(k) for k in frag_keys],
        }
        if self._view is not None:
            # Fenced append: an expelled dest raises StaleEpochError before
            # anything is journalled; accepted entries record their epoch.
            entry["epoch"] = self._view.validate(
                f"asu{int(dest)}", op="manifest append"
            )
        self._payloads[rid] = payload
        self._append(entry)

    def log_block(self, shard: int, block: int, frags: list) -> None:
        """Distribute block ``(shard, block)`` finished shipping.

        ``frags`` lists every nonempty fragment the block produces as
        (bucket, n) pairs — the full layout, not just what this attempt
        shipped, so restore can decide block completeness exactly.
        """
        key = (int(shard), int(block))
        if key in self._logged_blocks:
            return
        self._logged_blocks.add(key)
        self._append({
            "op": "block", "shard": key[0], "block": key[1],
            "frags": [[int(b), int(n)] for b, n in frags],
        })

    def log_shard_done(self, shard: int, n_blocks: int) -> None:
        shard = int(shard)
        if shard in self._logged_shards:
            return
        self._logged_shards.add(shard)
        self._append({"op": "shard", "shard": shard, "n_blocks": int(n_blocks)})

    def log_purge_asu(self, d: int) -> None:
        self._append({"op": "purge_asu", "d": int(d)})

    def log_purge_host(self, h: int) -> None:
        self._append({"op": "purge_host", "h": int(h)})

    def log_pass1_done(self, makespan: float) -> None:
        if self.pass1_complete():
            return
        self._append({"op": "pass1", "makespan": float(makespan)})

    def log_bucket_merged(self, bucket: int, payload: np.ndarray) -> None:
        rid = self.new_rid()
        self._payloads[rid] = payload
        self._append({
            "op": "bucket", "rid": rid, "bucket": int(bucket),
            "n": int(payload.shape[0]), "digest": digest_records(payload),
        })

    # -------------------------------------------------------------- queries
    def pass1_complete(self) -> bool:
        return any(e["op"] == "pass1" for e in self.entries)

    def merged_buckets(self) -> dict[int, np.ndarray]:
        """Pass-2 merge frontier: bucket -> digest-verified final payload."""
        out: dict[int, np.ndarray] = {}
        for e in self.entries:
            if e["op"] != "bucket":
                continue
            payload = self._require_payload(e)
            out[int(e["bucket"])] = payload
        return out

    def _require_payload(self, e: dict) -> np.ndarray:
        rid = e["rid"]
        payload = self._payloads.get(rid)
        if payload is None:
            raise CheckpointError(f"manifest entry references missing payload rid={rid}")
        if int(payload.shape[0]) != int(e["n"]) or digest_records(payload) != e["digest"]:
            raise CheckpointError(
                f"digest mismatch for rid={rid}: stored payload does not "
                f"match the journaled content digest"
            )
        return payload

    def restore_state(self) -> RestoredState:
        """Replay the journal into resumable job state (digest-verified).

        Also re-registers every live run's lineage in :attr:`_runs_meta`
        so a resumed attempt can re-replicate restored runs if their ASU
        later dies.
        """
        live: dict[int, dict] = {}  # rid -> latest run entry, insertion-ordered
        state = RestoredState()
        for e in self.entries:
            op = e["op"]
            if op == "run":
                # Latest entry wins (re-replication changes dest); move the
                # rid to the end to mirror in-memory durability order.
                live.pop(e["rid"], None)
                live[e["rid"]] = e
            elif op == "purge_asu":
                live = {r: en for r, en in live.items() if en["dest"] != e["d"]}
            elif op == "purge_host":
                live = {r: en for r, en in live.items() if en["host"] != e["h"]}
            elif op == "block":
                state.block_frags[(e["shard"], e["block"])] = [
                    (b, n) for b, n in e["frags"]
                ]
            elif op == "shard":
                state.shards_done.add(e["shard"])
            elif op == "pass1":
                state.pass1_done = True
                state.pass1_makespan = e["makespan"]
            elif op == "bucket":
                state.merged[int(e["bucket"])] = self._require_payload(e)
        for rid, e in live.items():
            payload = self._require_payload(e)
            frag_keys = [tuple(k) for k in e["frags"]]
            state.live_runs.append((rid, e["host"], e["bucket"], e["dest"], payload))
            state.covered.update(frag_keys)
            state.n_durable += int(e["n"])
            self._runs_meta[rid] = (e["host"], e["bucket"], frag_keys)
        for (shard, block), frags in state.block_frags.items():
            if all((shard, block, b) in state.covered for b, _n in frags):
                state.blocks_complete.add((shard, block))
        return state

    def check_no_duplicate_coverage(self) -> int:
        """Assert no fragment key is covered by two live runs; returns the
        number of live fragment keys.  (The duplicate-record sentinel used
        by the speculation and chaos tests.)"""
        state = self.restore_state()
        seen: set = set()
        n = 0
        for rid, _h, _b, _d, _payload in state.live_runs:
            _host, _bucket, frag_keys = self._runs_meta[rid]
            for k in frag_keys:
                if k in seen:
                    raise CheckpointError(
                        f"fragment {k} is covered by more than one live run "
                        f"(duplicate records)"
                    )
                seen.add(k)
                n += 1
        return n

    def report(self) -> dict:
        """Small deterministic summary for CLIs and tests."""
        state = self.restore_state()
        return {
            "n_entries": len(self.entries),
            "bytes_logged": self.bytes_logged,
            "n_live_runs": len(state.live_runs),
            "n_durable_records": state.n_durable,
            "n_blocks_logged": len(state.block_frags),
            "n_blocks_complete": len(state.blocks_complete),
            "n_shards_done": len(state.shards_done),
            "pass1_done": state.pass1_done,
            "n_buckets_merged": len(state.merged),
        }

    # -------------------------------------------------------- serialization
    def to_json(self) -> str:
        """Canonical JSON snapshot: the strict checkpoint-restore format.

        Deterministic for identical manifests, so two runs that reached the
        same frontier serialize byte-identically.
        """
        payloads = {}
        for rid in sorted(self._payloads):
            arr = self._payloads[rid]
            payloads[str(rid)] = {
                "dtype": [[name, spec] for name, spec in arr.dtype.descr],
                "data": base64.b64encode(arr.tobytes()).decode("ascii"),
            }
        return json.dumps(
            {
                "format": "repro.recovery.manifest/1",
                "next_rid": self._next_rid,
                "entries": self.entries,
                "payloads": payloads,
            },
            sort_keys=True, separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        doc = json.loads(text)
        if doc.get("format") != "repro.recovery.manifest/1":
            raise CheckpointError(f"unrecognized manifest format: {doc.get('format')!r}")
        m = cls()
        m.entries = list(doc["entries"])
        m._next_rid = int(doc["next_rid"])
        for rid_s, spec in doc["payloads"].items():
            dtype = np.dtype([(name, s) for name, s in spec["dtype"]])
            raw = base64.b64decode(spec["data"])
            m._payloads[int(rid_s)] = np.frombuffer(raw, dtype=dtype).copy()
        # Rebuild the in-memory dedupe caches from the journal.
        for e in m.entries:
            if e["op"] == "block":
                m._logged_blocks.add((e["shard"], e["block"]))
            elif e["op"] == "shard":
                m._logged_shards.add(e["shard"])
        m.bytes_logged = sum(
            len(json.dumps(e, sort_keys=True, separators=(",", ":"))) + 1
            for e in m.entries
        )
        return m
