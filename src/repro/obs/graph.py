"""Causal program-activity graph over a recorded trace.

Builds a DAG out of a :class:`~repro.trace.Tracer`'s spans (device busy
segments, CPU execution segments, scheduler segments) and flow edges
(message deliveries, mailbox residence, phase stitching):

* **lane edges** connect consecutive spans on the same track — a device
  serves one segment after another, so each segment causally waits for its
  predecessor's completion;
* **flow edges** connect spans on *different* tracks: the producer-side
  span whose end precedes the flow's departure instant to the consumer-side
  span that starts at (or covers) the arrival instant.  Tracks that carry
  flow endpoints but no spans (mailboxes) get zero-duration *virtual*
  nodes, which still participate in lane ordering so mailbox FIFO order is
  causal.

Job-level aggregate spans (``cat="phase"``) are excluded from the node set:
they span entire passes and would trivially dominate any path.

The **critical path** is extracted by walking backward from the last node
to finish, always following the predecessor that finished last — the chain
of activities such that shortening anything off the chain cannot shorten
the makespan.  :meth:`CausalGraph.blame` folds the chain into deterministic
blame buckets (cpu / disk / net / queue-wait / breaker-backoff /
scheduler-queueing / preemption / service) that sum exactly to the path's
end time.  :meth:`CausalGraph.slack` runs the PERT backward pass (latest
finish minus actual finish).  :meth:`CausalGraph.what_if` replays the graph
forward with per-bucket speedups, preserving every recorded inter-node lag
(including pipelined overlap, as a negative lag), so a speedup factor of
1.0 everywhere reproduces the recorded timeline exactly.

All outputs are pure functions of the trace: same seed, same bytes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Optional

__all__ = ["BLAME_BUCKETS", "CAT_BUCKET", "CausalGraph", "GraphNode"]

#: span category -> blame bucket for time spent *in* a critical-path node
CAT_BUCKET = {
    "cpu": "cpu",
    "disk": "disk",
    "link": "net",
    "net": "net",
    "breaker-backoff": "breaker-backoff",
    "sched-queue": "scheduler-queueing",
    "sched-run": "service",
    "preemption": "preemption",
}

#: flow/lane category -> blame bucket for *gaps* between critical-path nodes
EDGE_BUCKET = {
    "net": "net",
    "queue": "queue-wait",
    "lane": "queue-wait",
    "phase": "queue-wait",
}

#: every bucket a blame vector carries, in canonical order
BLAME_BUCKETS = (
    "cpu",
    "disk",
    "net",
    "queue-wait",
    "breaker-backoff",
    "scheduler-queueing",
    "preemption",
    "service",
    "other",
)

#: tolerance when matching flow endpoints to span boundaries
_EPS = 1e-9


class GraphNode:
    """One activity: a recorded span, or a zero-duration virtual point."""

    __slots__ = ("idx", "t0", "t1", "track", "name", "cat", "virtual")

    def __init__(self, idx, t0, t1, track, name, cat, virtual=False):
        self.idx = idx
        self.t0 = t0
        self.t1 = t1
        self.track = track
        self.name = name
        self.cat = cat
        self.virtual = virtual

    @property
    def dur(self) -> float:
        return self.t1 - self.t0

    def key(self) -> tuple:
        """Total order consistent with causality (edges only go key-upward)."""
        return (self.t0, self.t1, self.idx)

    def __repr__(self) -> str:
        v = " virtual" if self.virtual else ""
        return (
            f"<GraphNode {self.track}/{self.name} "
            f"[{self.t0:.6f},{self.t1:.6f}] {self.cat}{v}>"
        )


class CausalGraph:
    """Program activity graph assembled from a tracer's spans and flows."""

    def __init__(self) -> None:
        self.nodes: list[GraphNode] = []
        #: idx -> list of (pred_idx, edge_cat)
        self.preds: dict[int, list[tuple[int, str]]] = {}
        #: idx -> list of (succ_idx, edge_cat)
        self.succs: dict[int, list[tuple[int, str]]] = {}

    # -- construction --------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer) -> "CausalGraph":
        g = cls()
        for (t0, t1, track, name, cat) in tracer.spans:
            if cat == "phase":
                continue  # pass-level aggregates would dominate every path
            g._add_node(t0, t1, track, name, cat)

        # Index real spans per track before virtual-point creation so flow
        # matching never binds to another flow's virtual endpoint.
        by_track: dict[str, _Lane] = {}
        grouped: dict[str, list[GraphNode]] = {}
        for n in g.nodes:
            grouped.setdefault(n.track, []).append(n)
        for track, lst in grouped.items():
            by_track[track] = _Lane(lst)

        flow_edges: list[tuple[GraphNode, GraphNode, str]] = []
        virtual_at: dict[tuple[str, float], GraphNode] = {}
        _empty = _Lane([])

        def _virtual(track: str, t: float) -> GraphNode:
            key = (track, t)
            node = virtual_at.get(key)
            if node is None:
                node = g._add_node(t, t, track, "·", "virtual", virtual=True)
                virtual_at[key] = node
            return node

        for (t0, src_track, t1, dst_track, name, cat) in tracer.flows:
            src = by_track.get(src_track, _empty).match_src(t0)
            if src is None:
                src = _virtual(src_track, t0)
            dst = by_track.get(dst_track, _empty).match_dst(t1)
            if dst is None:
                dst = _virtual(dst_track, t1)
            flow_edges.append((src, dst, cat))

        # Lane edges: consecutive activities on a track (virtual included).
        lanes: dict[str, list[GraphNode]] = {}
        for n in g.nodes:
            lanes.setdefault(n.track, []).append(n)
        for lane in lanes.values():
            lane.sort(key=GraphNode.key)
            for a, b in zip(lane, lane[1:]):
                g._add_edge(a, b, "lane")
        for src, dst, cat in flow_edges:
            g._add_edge(src, dst, cat)
        return g

    def _add_node(self, t0, t1, track, name, cat, virtual=False) -> GraphNode:
        node = GraphNode(len(self.nodes), t0, t1, track, name, cat, virtual)
        self.nodes.append(node)
        return node

    def _add_edge(self, src: GraphNode, dst: GraphNode, cat: str) -> None:
        # Acyclicity guard: keep only key-increasing edges, so the node key
        # order is a topological order and every walk terminates.
        if src.idx == dst.idx or not (src.key() < dst.key()):
            return
        self.preds.setdefault(dst.idx, []).append((src.idx, cat))
        self.succs.setdefault(src.idx, []).append((dst.idx, cat))

    # -- queries -------------------------------------------------------------
    @property
    def makespan(self) -> float:
        return max((n.t1 for n in self.nodes), default=0.0)

    def n_edges(self) -> int:
        return sum(len(v) for v in self.succs.values())

    def _chain(self) -> list[tuple[GraphNode, Optional[str]]]:
        """Backward walk from the last finisher: (node, cat of edge into it).

        At each step follow the predecessor that finished last — the one
        whose completion gated this node's start.  Deterministic tie-breaks
        by node key.
        """
        if not self.nodes:
            return []
        cur = max(self.nodes, key=lambda n: (n.t1, n.key()))
        chain: list[tuple[GraphNode, Optional[str]]] = []
        in_cat: Optional[str] = None
        seen = set()
        while cur.idx not in seen:
            seen.add(cur.idx)
            chain.append((cur, in_cat))
            preds = self.preds.get(cur.idx)
            if not preds:
                break
            best_idx, best_cat = max(
                preds, key=lambda pc: (self.nodes[pc[0]].t1, self.nodes[pc[0]].key())
            )
            in_cat = best_cat
            cur = self.nodes[best_idx]
        chain.reverse()
        # After reversal each entry's recorded cat is the edge *out of* it
        # (into the next entry) — shift so entries carry their own in-edge.
        out: list[tuple[GraphNode, Optional[str]]] = []
        for i, (node, _) in enumerate(chain):
            out.append((node, None if i == 0 else chain[i - 1][1]))
        return out

    def critical_path(self) -> list[GraphNode]:
        """The chain of activities whose completion gated the makespan."""
        return [n for n, _cat in self._chain()]

    def blame(self) -> dict[str, float]:
        """Fold the critical path into blame buckets.

        Walks the chain in time order keeping a ``prev_end`` watermark:
        a *gap* before a node is billed to the bucket of the edge that
        carried the dependency (a network flow's gap is wire/queue time, a
        lane gap is queue-wait); the node's own span past the watermark is
        billed to its category's bucket.  Buckets sum exactly to the path's
        end time.
        """
        buckets = {b: 0.0 for b in BLAME_BUCKETS}
        prev_end = 0.0
        for node, in_cat in self._chain():
            gap = node.t0 - prev_end
            if gap > 0.0:
                bucket = EDGE_BUCKET.get(in_cat or "lane", "queue-wait")
                buckets[bucket] += gap
                prev_end = node.t0
            contrib = node.t1 - max(node.t0, prev_end)
            if contrib > 0.0:
                buckets[CAT_BUCKET.get(node.cat, "other")] += contrib
            prev_end = max(prev_end, node.t1)
        return buckets

    def totals(self) -> dict[str, float]:
        """Aggregate busy time per bucket over *all* nodes (not just the
        path) — surfaces activity on disconnected lanes (e.g. breaker
        backoff) that the path never crosses."""
        buckets = {b: 0.0 for b in BLAME_BUCKETS}
        for n in self.nodes:
            if n.virtual:
                continue
            buckets[CAT_BUCKET.get(n.cat, "other")] += n.dur
        return buckets

    def slack(self) -> list[tuple[GraphNode, float]]:
        """PERT backward pass: latest finish minus actual finish per node.

        Zero slack marks the critical chain; large slack marks activities
        that could slip without moving the makespan.
        """
        makespan = self.makespan
        order = sorted(self.nodes, key=GraphNode.key)
        lf: dict[int, float] = {}
        for node in reversed(order):
            succs = self.succs.get(node.idx)
            if not succs:
                lf[node.idx] = makespan
            else:
                lf[node.idx] = min(
                    lf[s] - self.nodes[s].dur for s, _cat in succs
                )
        return [(n, lf[n.idx] - n.t1) for n in order]

    def what_if(self, speedups: dict[str, float]) -> float:
        """Predicted makespan when each bucket's node durations are divided
        by its speedup factor (``{"disk": 2.0}`` = disks twice as fast).

        Forward replay in topological order.  A source keeps its recorded
        start.  Every other node identifies its *gating* predecessor — the
        one that finished last, i.e. whose completion actually triggered
        this node — and starts at ``new_finish(gating) + (t0 - gating.t1)``:
        the recorded lag relative to the trigger, positive (scheduling
        delta, preserved) or negative (pipelined overlap, preserved).
        Non-gating predecessors impose pure precedence (no recorded gap is
        pinned to them — their gap was *caused by* the gating pred, and
        evaporates if the gating pred speeds up).  With all factors 1.0
        this reproduces the recorded timeline.
        """
        for bucket, f in speedups.items():
            if f <= 0:
                raise ValueError(f"speedup for {bucket!r} must be positive, got {f}")
        new_t1: dict[int, float] = {}
        finish = 0.0
        for node in sorted(self.nodes, key=GraphNode.key):
            factor = speedups.get(CAT_BUCKET.get(node.cat, "other"), 1.0)
            dur = node.dur / factor
            preds = self.preds.get(node.idx)
            if not preds:
                nt0 = node.t0
            else:
                gate, _cat = max(
                    preds,
                    key=lambda pc: (self.nodes[pc[0]].t1, self.nodes[pc[0]].key()),
                )
                nt0 = new_t1[gate] + (node.t0 - self.nodes[gate].t1)
                for p, _c in preds:
                    if p != gate and new_t1[p] > nt0:
                        nt0 = new_t1[p]
            new_t1[node.idx] = nt0 + dur
            if new_t1[node.idx] > finish:
                finish = new_t1[node.idx]
        return finish


# -- flow-endpoint matching ---------------------------------------------------
class _Lane:
    """Per-track span index: by-start order for dst lookups and lane edges,
    by-end order for src lookups."""

    __slots__ = ("by_start", "starts", "by_end", "ends")

    def __init__(self, nodes: list[GraphNode]):
        self.by_start = sorted(nodes, key=GraphNode.key)
        self.starts = [n.t0 for n in self.by_start]
        self.by_end = sorted(nodes, key=lambda n: (n.t1, n.idx))
        self.ends = [n.t1 for n in self.by_end]

    def match_src(self, t: float) -> Optional[GraphNode]:
        """Producer side: the last span finishing at or before the departure
        instant; else the span covering it (the flow left mid-span)."""
        i = bisect_right(self.ends, t + _EPS)
        if i > 0:
            return self.by_end[i - 1]
        for n in reversed(self.by_start):
            if n.t0 <= t + _EPS and n.t1 >= t - _EPS:
                return n
        return None

    def match_dst(self, t: float) -> Optional[GraphNode]:
        """Consumer side: the first span starting at or after the arrival
        instant; else the span covering it (consumer already busy)."""
        i = bisect_left(self.starts, t - _EPS)
        if i < len(self.by_start):
            return self.by_start[i]
        for n in reversed(self.by_start):
            if n.t0 <= t + _EPS and n.t1 >= t - _EPS:
                return n
        return None
