"""Causal observability: critical-path profiling, blame attribution, and
SLO burn-rate monitoring over the traced platform.

Layers on the zero-overhead tracing hooks (``repro.trace``): the emulator
emits spans and cross-node flow edges, :class:`CausalGraph` assembles them
into a program activity graph, and the critical path through that graph
explains *why* the makespan is what it is — with blame buckets, PERT
slack, and a what-if estimator.  :class:`SLOMonitor` evaluates
multi-window burn-rate rules over the scheduler's per-tenant SLO events in
simulated time.  See docs/CRITPATH.md.
"""

from .critpath import (
    CritPathReport,
    critpath_params,
    folded_stacks,
    render_timeline,
    run_critpath,
    run_critpath_serve,
)
from .graph import BLAME_BUCKETS, CausalGraph, GraphNode
from .slo import BurnRule, SLOAlert, SLOMonitor, default_rules

__all__ = [
    "BLAME_BUCKETS",
    "BurnRule",
    "CausalGraph",
    "CritPathReport",
    "GraphNode",
    "SLOAlert",
    "SLOMonitor",
    "critpath_params",
    "default_rules",
    "folded_stacks",
    "render_timeline",
    "run_critpath",
    "run_critpath_serve",
]
