"""`repro critpath`: causal critical-path profile of a traced run.

Two modes share the report shape:

* **sort mode** — run a traced two-pass DSM-Sort on a Figure-9-style cell,
  assemble the :class:`~repro.obs.graph.CausalGraph`, extract the critical
  path, and fold the makespan into blame buckets.  Optionally replay a
  what-if scenario ("disks 2× faster") through the graph and — with
  ``validate=True`` — check the prediction against an actual re-run on
  scaled :class:`~repro.emulator.params.SystemParams`.

* **serve mode** — run one multi-tenant scheduler cell with the tracer and
  the :class:`~repro.obs.slo.SLOMonitor` attached; the graph covers the
  scheduler's queued / run / preemption segments, and the report carries
  the burn-rate alerts next to the ServeReport's SLO outcomes.

All outputs are deterministic: the blame JSON and the folded-stack
flamegraph file are byte-identical across runs of the same (n, seed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional

from .graph import BLAME_BUCKETS, CAT_BUCKET, EDGE_BUCKET, CausalGraph
from .slo import SLOMonitor

__all__ = [
    "CritPathReport",
    "critpath_params",
    "folded_stacks",
    "render_timeline",
    "run_critpath",
    "run_critpath_serve",
]

#: schema tag for the blame JSON artifact (bump on breaking change)
SCHEMA_VERSION = 1


def critpath_params(n_asus: int = 4, n_hosts: int = 2):
    """The Figure-9 cost family on a small cell (disk-bound at modest n)."""
    from ..bench.fig9 import fig9_params

    return fig9_params(n_asus, c=8.0, n_hosts=n_hosts)


@dataclass
class CritPathReport:
    """Deterministic critical-path profile of one traced run."""

    mode: str
    makespan: float
    n_nodes: int
    n_edges: int
    path_len: int
    #: blame bucket -> virtual seconds on the critical path (sums to the
    #: path's end instant)
    blame: dict = field(default_factory=dict)
    #: bucket -> total busy seconds over *all* activities (context for
    #: buckets the path never crosses, e.g. breaker backoff)
    totals: dict = field(default_factory=dict)
    #: track -> seconds of critical-path residence (top contributors)
    path_by_track: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    what_if: Optional[dict] = None
    slo: Optional[dict] = None

    def as_dict(self) -> dict:
        doc = {
            "schema_version": SCHEMA_VERSION,
            "mode": self.mode,
            "makespan": self.makespan,
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "path_len": self.path_len,
            "blame": {b: self.blame.get(b, 0.0) for b in BLAME_BUCKETS},
            "totals": {b: self.totals.get(b, 0.0) for b in BLAME_BUCKETS},
            "path_by_track": dict(sorted(self.path_by_track.items())),
            "meta": self.meta,
        }
        if self.what_if is not None:
            doc["what_if"] = self.what_if
        if self.slo is not None:
            doc["slo"] = self.slo
        return doc

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))

    def write(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())
            fh.write("\n")

    def render(self) -> str:
        from ..bench.report import render_table

        total = sum(self.blame.values()) or 1.0
        rows = [
            [b, f"{self.blame.get(b, 0.0):.6f}",
             f"{100.0 * self.blame.get(b, 0.0) / total:.1f}",
             f"{self.totals.get(b, 0.0):.6f}"]
            for b in BLAME_BUCKETS
            if self.blame.get(b, 0.0) > 0.0 or self.totals.get(b, 0.0) > 0.0
        ]
        out = render_table(
            ["bucket", "on path (s)", "path %", "total busy (s)"],
            rows,
            title=(
                f"critical path blame — makespan {self.makespan:.6f}s, "
                f"{self.path_len} of {self.n_nodes} activities on path"
            ),
        )
        if self.what_if is not None:
            w = self.what_if
            line = (
                f"\nwhat-if {w['scenario']}: predicted makespan "
                f"{w['predicted_makespan']:.6f}s "
                f"({w['predicted_delta_pct']:+.1f}%)"
            )
            if w.get("measured_makespan") is not None:
                line += (
                    f"; measured {w['measured_makespan']:.6f}s "
                    f"({w['measured_delta_pct']:+.1f}%), "
                    f"prediction error {w['error_pct']:.1f}%"
                )
            out += line + "\n"
        if self.slo is not None:
            out += (
                f"\nSLO burn-rate alerts: {len(self.slo['alerts'])} "
                f"(first: {self.slo['alerts'][0] if self.slo['alerts'] else '—'})\n"
            )
        return out


# -- folded stacks -------------------------------------------------------------
def folded_stacks(graph: CausalGraph) -> str:
    """Critical path as folded stacks (``flamegraph.pl`` input format).

    One line per ``bucket;frame;frame`` stack with the sample weight in
    integer microseconds; gaps between path nodes become ``(gap)`` frames
    under the gap's blame bucket.  Lines are sorted — byte-deterministic.
    """
    agg: dict[str, float] = {}
    prev_end = 0.0
    for node, in_cat in graph._chain():
        gap = node.t0 - prev_end
        if gap > 0.0:
            bucket = EDGE_BUCKET.get(in_cat or "lane", "queue-wait")
            key = f"{bucket};(gap);{in_cat or 'start'}"
            agg[key] = agg.get(key, 0.0) + gap
            prev_end = node.t0
        contrib = node.t1 - max(node.t0, prev_end)
        if contrib > 0.0:
            bucket = CAT_BUCKET.get(node.cat, "other")
            key = f"{bucket};{node.track};{node.name}"
            agg[key] = agg.get(key, 0.0) + contrib
        prev_end = max(prev_end, node.t1)
    lines = [f"{k} {int(round(v * 1e6))}" for k, v in sorted(agg.items())]
    return "\n".join(lines) + ("\n" if lines else "")


# -- text timeline -------------------------------------------------------------
def render_timeline(graph: CausalGraph, width: int = 72, max_rows: int = 32) -> str:
    """ASCII timeline of the tracks the critical path visits.

    ``#`` marks critical-path residence, ``-`` other activity on the same
    track.  Tracks appear in order of first path visit; rows beyond
    ``max_rows`` are elided with a note.
    """
    path = graph.critical_path()
    makespan = graph.makespan
    if not path or makespan <= 0.0:
        return "(empty trace)\n"
    order: list[str] = []
    on_path: dict[str, list] = {}
    for n in path:
        if n.track not in on_path:
            on_path[n.track] = []
            order.append(n.track)
        on_path[n.track].append(n)
    by_track: dict[str, list] = {}
    for n in graph.nodes:
        if n.track in on_path and not n.virtual:
            by_track.setdefault(n.track, []).append(n)

    def cols(t0: float, t1: float) -> range:
        a = int(t0 / makespan * (width - 1))
        b = int(t1 / makespan * (width - 1))
        return range(max(0, a), min(width - 1, b) + 1)

    label_w = max(len(t) for t in order[:max_rows])
    lines = [
        f"{'':<{label_w}}  t=0 {'·' * (width - 12)} t={makespan:.4f}s"
    ]
    for track in order[:max_rows]:
        row = [" "] * width
        for n in by_track.get(track, ()):
            for c in cols(n.t0, n.t1):
                row[c] = "-"
        for n in on_path[track]:
            for c in cols(n.t0, n.t1):
                row[c] = "#"
        lines.append(f"{track:<{label_w}}  {''.join(row)}")
    if len(order) > max_rows:
        lines.append(f"... {len(order) - max_rows} more tracks elided")
    return "\n".join(lines) + "\n"


# -- drivers -------------------------------------------------------------------
def _blame_by_track(graph: CausalGraph) -> dict[str, float]:
    out: dict[str, float] = {}
    prev_end = 0.0
    for node, _cat in graph._chain():
        contrib = node.t1 - max(node.t0, prev_end)
        if contrib > 0.0:
            out[node.track] = out.get(node.track, 0.0) + contrib
        prev_end = max(prev_end, node.t0, node.t1)
    return out


def run_critpath(
    n_records: int = 1 << 12,
    *,
    n_asus: int = 4,
    n_hosts: int = 2,
    alpha: int = 8,
    seed: int = 3,
    what_if: Optional[dict] = None,
    validate: bool = False,
) -> tuple[CritPathReport, CausalGraph]:
    """Trace a two-pass DSM-Sort and profile its critical path.

    ``what_if`` maps blame buckets to speedup factors (``{"disk": 2.0}``).
    ``validate`` additionally re-runs the sort with the scenario's disk/cpu
    factors applied to the real :class:`SystemParams` and reports the
    prediction error.  Validation supports the ``disk`` and ``cpu`` buckets
    (the two with a direct parameter knob).
    """
    from ..core.config import ConfigSolver
    from ..dsmsort import DsmSortJob
    from ..trace import Tracer

    params = critpath_params(n_asus=n_asus, n_hosts=n_hosts)
    config = ConfigSolver(params).config_for_alpha(n_records, alpha)
    tracer = Tracer()
    job = DsmSortJob(params, config, policy="sr", seed=seed, tracer=tracer)
    r1 = job.run_pass1()
    r2 = job.run_pass2()
    job.verify()
    makespan = r1.makespan + r2.makespan

    graph = CausalGraph.from_tracer(tracer)
    report = CritPathReport(
        mode="sort",
        makespan=makespan,
        n_nodes=len(graph.nodes),
        n_edges=graph.n_edges(),
        path_len=len(graph.critical_path()),
        blame=graph.blame(),
        totals=graph.totals(),
        path_by_track=_blame_by_track(graph),
        meta={
            "n_records": n_records, "n_asus": n_asus, "n_hosts": n_hosts,
            "alpha": alpha, "seed": seed,
            "pass1_makespan": r1.makespan, "pass2_makespan": r2.makespan,
        },
    )

    if what_if:
        predicted = graph.what_if(what_if)
        entry = {
            "scenario": {k: what_if[k] for k in sorted(what_if)},
            "predicted_makespan": predicted,
            "predicted_delta_pct": 100.0 * (predicted - makespan) / makespan,
        }
        if validate:
            unsupported = sorted(set(what_if) - {"disk", "cpu"})
            if unsupported:
                raise ValueError(
                    f"validation knows only disk/cpu scaling, got {unsupported}"
                )
            changes = {}
            if "disk" in what_if:
                changes["disk_rate"] = params.disk_rate * what_if["disk"]
            if "cpu" in what_if:
                # Faster CPUs everywhere: scale the base clock.
                changes["host_clock_hz"] = params.host_clock_hz * what_if["cpu"]
            scaled = params.with_(**changes)
            job2 = DsmSortJob(
                scaled, ConfigSolver(scaled).config_for_alpha(n_records, alpha),
                policy="sr", seed=seed,
            )
            m1 = job2.run_pass1().makespan
            m2 = job2.run_pass2().makespan
            measured = m1 + m2
            entry["measured_makespan"] = measured
            entry["measured_delta_pct"] = 100.0 * (measured - makespan) / makespan
            entry["error_pct"] = (
                100.0 * abs(predicted - measured) / measured if measured else 0.0
            )
        report.what_if = entry
    return report, graph


def run_critpath_serve(
    *,
    n_jobs: int = 40,
    seed: int = 0,
    policy: str = "fair",
    load_factor: float = 3.0,
    rules=None,
) -> tuple[CritPathReport, CausalGraph, object]:
    """One multi-tenant scheduler cell with critical-path + SLO monitoring.

    Restricted to a single (policy, load) cell so scheduler tracks —
    ``sched:<tenant>:<job_id>`` — are unambiguous in the shared tracer.
    Returns (report, graph, serve_report).
    """
    from ..sched import run_serve
    from ..trace import Tracer

    tracer = Tracer()
    monitor = SLOMonitor(rules)
    serve_report = run_serve(
        policies=(policy,), load_factors=(load_factor,),
        n_jobs=n_jobs, seed=seed,
        tracer=tracer, slo_monitor=monitor,
    )
    graph = CausalGraph.from_tracer(tracer)
    report = CritPathReport(
        mode="serve",
        makespan=graph.makespan,
        n_nodes=len(graph.nodes),
        n_edges=graph.n_edges(),
        path_len=len(graph.critical_path()),
        blame=graph.blame(),
        totals=graph.totals(),
        path_by_track=_blame_by_track(graph),
        meta={
            "n_jobs": n_jobs, "seed": seed,
            "policy": policy, "load_factor": load_factor,
        },
        slo=monitor.as_dict(),
    )
    return report, graph, serve_report
