"""Multi-window burn-rate SLO monitoring in simulated time.

Implements the standard SRE multi-window, multi-burn-rate alerting policy
over the scheduler's per-tenant SLO event stream: each job contributes
*good* / *bad* events (predicted at dispatch time, actual at completion),
and a :class:`BurnRule` fires when the error-budget burn rate exceeds its
factor over **both** a long and a short window — the long window for
significance, the short window so alerts clear quickly once the burn stops.

``burn = error_rate / (1 - target)``: burn 1.0 consumes exactly the error
budget over the period; burn 14.4 (the classic page threshold) exhausts a
30-day budget in 2.5 days.  Windows and rates here are in *virtual*
seconds — everything is deterministic and replayable.

Because the scheduler records a *predicted* event at dispatch (service
time is known from the oracle before the job runs), a tenant whose jobs
are being dispatched past their deadlines raises an alert strictly before
the first miss lands in the :class:`~repro.sched.report.ServeReport`.

An optional :class:`~repro.metrics.registry.MetricsRegistry` receives a
``repro_slo_burn_alert`` gauge per (tenant, rule) — 1.0 while the alert is
active — which wait-queue policies may read to shed or boost tenants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

__all__ = ["BurnRule", "SLOAlert", "SLOMonitor", "default_rules"]


@dataclass(frozen=True)
class BurnRule:
    """One multi-window burn-rate alerting rule."""

    #: rule name (appears in alerts and gauge labels)
    name: str
    #: availability target in (0, 1), e.g. 0.9 = 90% of jobs meet their SLO
    target: float
    #: long window (virtual seconds): the significance window
    long_window: float
    #: short window (virtual seconds): the fast-clear window
    short_window: float
    #: burn-rate threshold; both windows must exceed it to fire
    factor: float = 1.0

    def __post_init__(self):
        if not (0.0 < self.target < 1.0):
            raise ValueError(f"target must be in (0,1), got {self.target}")
        if self.long_window <= 0 or self.short_window <= 0:
            raise ValueError("windows must be positive")
        if self.short_window > self.long_window:
            raise ValueError(
                f"short window {self.short_window} exceeds long window "
                f"{self.long_window}"
            )
        if self.factor <= 0:
            raise ValueError(f"factor must be positive, got {self.factor}")

    @property
    def budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class SLOAlert:
    """One rising-edge alert: a (tenant, rule) pair started burning."""

    t: float
    tenant: str
    rule: str
    burn_long: float
    burn_short: float

    def as_dict(self) -> dict:
        return {
            "t": self.t,
            "tenant": self.tenant,
            "rule": self.rule,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
        }


def default_rules() -> list[BurnRule]:
    """A page-style fast-burn rule and a ticket-style slow-burn rule."""
    return [
        BurnRule("fast-burn", target=0.9, long_window=2.0, short_window=0.25,
                 factor=2.0),
        BurnRule("slow-burn", target=0.9, long_window=10.0, short_window=1.0,
                 factor=1.0),
    ]


class SLOMonitor:
    """Evaluates burn-rate rules over per-tenant SLO event streams."""

    def __init__(self, rules: Optional[list[BurnRule]] = None, *, registry=None):
        self.rules = list(rules) if rules is not None else default_rules()
        names = [r.name for r in self.rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {sorted(names)}")
        self.registry = registry
        #: per-tenant event window: (t, good) in arrival order
        self._events: dict[str, deque] = {}
        #: rising-edge alerts in firing order
        self.alerts: list[SLOAlert] = []
        #: (tenant, rule) -> currently firing?
        self._active: dict[tuple[str, str], bool] = {}
        self._gauges: dict[tuple[str, str], object] = {}

    # -- feeding -------------------------------------------------------------
    def record(self, t: float, tenant: str, good: bool) -> None:
        """Feed one SLO event (a job met / will meet its deadline, or not)
        and re-evaluate every rule for the tenant at virtual time ``t``."""
        q = self._events.get(tenant)
        if q is None:
            q = self._events[tenant] = deque()
        q.append((t, bool(good)))
        horizon = t - max(r.long_window for r in self.rules)
        while q and q[0][0] < horizon:
            q.popleft()
        self._evaluate(t, tenant)

    # -- evaluation ----------------------------------------------------------
    def burn(self, tenant: str, window: float, target: float, now: float) -> float:
        """Error-budget burn rate over ``[now - window, now]``."""
        q = self._events.get(tenant)
        if not q:
            return 0.0
        t0 = now - window
        total = bad = 0
        for t, good in q:
            if t >= t0 and t <= now:
                total += 1
                if not good:
                    bad += 1
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - target)

    def _evaluate(self, now: float, tenant: str) -> None:
        for rule in self.rules:
            bl = self.burn(tenant, rule.long_window, rule.target, now)
            bs = self.burn(tenant, rule.short_window, rule.target, now)
            firing = bl > rule.factor and bs > rule.factor
            key = (tenant, rule.name)
            was = self._active.get(key, False)
            if firing and not was:
                self.alerts.append(SLOAlert(now, tenant, rule.name, bl, bs))
            self._active[key] = firing
            if self.registry is not None:
                gauge = self._gauges.get(key)
                if gauge is None:
                    gauge = self.registry.gauge(
                        "repro_slo_burn_alert", tenant=tenant, rule=rule.name
                    )
                    self._gauges[key] = gauge
                gauge.set(1.0 if firing else 0.0)

    # -- reading -------------------------------------------------------------
    def is_firing(self, tenant: str, rule: str) -> bool:
        return self._active.get((tenant, rule), False)

    def first_alert(self, tenant: str) -> Optional[SLOAlert]:
        for a in self.alerts:
            if a.tenant == tenant:
                return a
        return None

    def as_dict(self) -> dict:
        """Deterministic summary: every alert plus the final firing states."""
        return {
            "rules": [
                {"name": r.name, "target": r.target, "factor": r.factor,
                 "long_window": r.long_window, "short_window": r.short_window}
                for r in self.rules
            ],
            "alerts": [a.as_dict() for a in self.alerts],
            "firing": {
                f"{tenant}/{rule}": True
                for (tenant, rule), on in sorted(self._active.items())
                if on
            },
        }

    def __repr__(self) -> str:
        return (
            f"<SLOMonitor rules={len(self.rules)} "
            f"tenants={len(self._events)} alerts={len(self.alerts)}>"
        )
