"""Adaptive DSM-Sort: configuration chosen by the load manager (Figure 9).

"DSM-Sort can adaptively reconfigure to match varying parameters of the
active storage systems" (§4.3).  :func:`adaptive_config` asks the
:class:`~repro.core.config.ConfigSolver` for the predicted-best α on the
given platform; :func:`run_adaptive` then executes that configuration on the
emulator.  This is the "adaptive" series of Figure 9.
"""

from __future__ import annotations

from typing import Optional

from ..core.config import ConfigSolver, DSMConfig
from ..emulator.params import SystemParams
from .runtime import DsmSortJob, Pass1Result

__all__ = ["adaptive_config", "run_adaptive"]


def adaptive_config(
    params: SystemParams, n_records: int, gamma: int = 64
) -> DSMConfig:
    """The configuration the system predicts to be fastest on this platform."""
    return ConfigSolver(params, gamma=gamma).choose(n_records)


def run_adaptive(
    params: SystemParams,
    n_records: int,
    gamma: int = 64,
    policy: str = "sr",
    workload: str = "uniform",
    seed: int = 0,
    verify: bool = False,
) -> tuple[DSMConfig, Pass1Result, Optional[DsmSortJob]]:
    """Pick the adaptive configuration and run pass 1 with it."""
    cfg = adaptive_config(params, n_records, gamma)
    job = DsmSortJob(
        params, cfg, policy=policy, workload=workload, seed=seed, active=True
    )
    res = job.run_pass1()
    if verify:
        job.run_pass2()
        job.verify()
    return cfg, res, job
