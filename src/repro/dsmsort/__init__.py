"""DSM-Sort: the configurable distribute/sort/merge sort (§4.3)."""

from .adaptive import adaptive_config, run_adaptive
from .local import LocalSortTrace, dsm_sort_local
from .offload import OffloadedDsmSort, OffloadResult
from .runtime import DsmSortJob, Pass1Result, Pass2Result

__all__ = [
    "adaptive_config",
    "run_adaptive",
    "LocalSortTrace",
    "dsm_sort_local",
    "OffloadedDsmSort",
    "OffloadResult",
    "DsmSortJob",
    "Pass1Result",
    "Pass2Result",
]
