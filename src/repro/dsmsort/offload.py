"""Fully-offloaded DSM-Sort: direct ASU-to-ASU exchange (extension).

The paper's network model "uses only host-ASU communication", but it notes
that "if the interconnect bandwidth is limited, direct ASU-ASU communication
may be required [1, 32]" (§5).  This module implements that alternative for
pass 1: every ASU distributes its local data and ships each bucket fragment
*directly to the ASU that owns the bucket*; the owner forms and sorts the
β-record runs on its own CPU and stores them locally.  Hosts are idle.

Trade-offs this variant exposes (benchmarked in
``benchmarks/bench_offload.py``):

* each record crosses the interconnect **once** instead of twice
  (ASU→host→ASU), halving network traffic — the bandwidth argument;
* all comparison work lands on the slow ASU CPUs, so with few ASUs the
  host-based pipeline is faster; with many ASUs the offloaded sort wins
  because the single host no longer caps throughput.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.config import DSMConfig
from ..core.costs import RecordCosts
from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform
from ..functors.distribute import DistributeFunctor
from ..util.distributions import make_workload
from ..util.records import concat_records, sort_records
from ..util.rng import RngRegistry
from ..util.validation import check_sorted_permutation
from .runtime import _EOF

__all__ = ["OffloadedDsmSort", "OffloadResult"]


def _local_deliver(plat: ActivePlatform, d: int, payload) -> None:
    """Put a zero-cost message directly into ASU d's own mailbox."""
    from ..emulator.net import Message

    node_id = plat.asus[d].node_id
    plat.network.mailbox(node_id).put(Message(node_id, node_id, payload, 0))


@dataclass
class OffloadResult:
    makespan: float
    asu_cpu_util: list[float]
    asu_disk_util: list[float]
    host_util: list[float]
    n_runs: int
    net_bytes: int


class OffloadedDsmSort:
    """Pass-1 run formation executed entirely on the ASUs."""

    def __init__(
        self,
        params: SystemParams,
        config: DSMConfig,
        workload: str = "uniform",
        seed: int = 0,
    ):
        self.params = params
        self.config = config
        self.costs = RecordCosts(params)
        self.rngs = RngRegistry(seed)
        self.dist = DistributeFunctor.uniform(config.alpha, params.schema)
        per_asu = config.n_records // params.n_asus
        self.asu_data = [
            make_workload(self.rngs.get(f"workload.{d}"), per_asu, workload, params.schema)
            for d in range(params.n_asus)
        ]
        self.runs_on_asu: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(params.n_asus)
        ]

    def owner_of(self, bucket: int) -> int:
        """Static bucket -> ASU ownership (range partition)."""
        return bucket * self.params.n_asus // self.config.alpha

    def run_pass1(self) -> OffloadResult:
        self.runs_on_asu = [[] for _ in range(self.params.n_asus)]
        plat = ActivePlatform(self.params)
        self.platform = plat
        D = self.params.n_asus
        blk = self.params.block_records
        rs = self.params.schema.record_size
        beta = self.config.beta
        sort_cpr = self.costs.blocksort_cycles(beta)

        def producer(d):
            from ..emulator.readahead import ReadAhead

            asu = plat.asus[d]
            data = self.asu_data[d]
            blocks = [data[s : s + blk] for s in range(0, data.shape[0], blk)]
            # Batched charge paths over the stripe (see runtime._asu_producer).
            sizes = np.array([b.shape[0] for b in blocks], dtype=np.int64)
            stripe_bytes = sizes * rs
            staging_cycles = stripe_bytes * self.params.cycles_per_io_byte
            dist_cycles = self.dist.cost_cycles_batch(sizes, self.params)
            ra = ReadAhead(plat, asu, stripe_bytes.tolist())
            for i, block in enumerate(blocks):
                yield ra.wait_next()
                staging = staging_cycles[i]
                if staging:
                    yield from asu.cpu.execute(cycles=staging)
                pieces = yield from asu.compute(
                    cycles=dist_cycles[i],
                    fn=self.dist.apply,
                    args=(block,),
                )
                # Group fragments by owner ASU; one message per (block, owner).
                per_owner: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
                for bucket, piece in enumerate(pieces):
                    if piece.shape[0]:
                        per_owner[self.owner_of(bucket)].append((bucket, piece))
                for o, frags in per_owner.items():
                    n = sum(p.shape[0] for _b, p in frags)
                    if o == d:
                        # Local fragments bypass the interconnect entirely:
                        # deliver straight into our own mailbox (zero wire
                        # time, zero NIC copy cost, no byte accounting).
                        _local_deliver(plat, d, ("frags", d, frags))
                        continue
                    yield from asu.send_async(
                        plat.asus[o], ("frags", d, frags), n * rs, tag="frags"
                    )
            for o in range(D):
                if o == d:
                    _local_deliver(plat, d, (_EOF, d, None))
                else:
                    yield from asu.send_async(plat.asus[o], (_EOF, d, None), 16, tag="eof")

        def sorter(d):
            asu = plat.asus[d]
            buffers: dict[int, list[np.ndarray]] = defaultdict(list)
            buffered: dict[int, int] = defaultdict(int)
            n_eof = 0
            while n_eof < D:
                msg = yield asu.mailbox.get()
                kind, _src, payload = msg.payload
                if getattr(msg, "nbytes", 0) and kind != _EOF:
                    # NIC copy cost only for fragments that crossed the wire.
                    yield from asu.cpu.execute(
                        cycles=msg.nbytes * self.params.cycles_per_net_byte
                    )
                if kind == _EOF:
                    n_eof += 1
                else:
                    for bucket, piece in payload:
                        buffers[bucket].append(piece)
                        buffered[bucket] += piece.shape[0]
                # Form and sort complete runs as data arrives.
                for bucket in list(buffers):
                    while buffered[bucket] >= beta:
                        batch = concat_records(buffers[bucket], self.params.schema)
                        run_src, rest = batch[:beta], batch[beta:]
                        buffers[bucket] = [rest] if rest.shape[0] else []
                        buffered[bucket] = rest.shape[0]
                        yield from self._sort_and_store(asu, d, bucket, run_src, sort_cpr, rs)
            # Flush partials.
            for bucket in sorted(buffers):
                if buffered[bucket]:
                    batch = concat_records(buffers[bucket], self.params.schema)
                    yield from self._sort_and_store(asu, d, bucket, batch, sort_cpr, rs)
            yield from asu.disk.drain()

        procs = [plat.spawn(producer(d), name=f"p{d}") for d in range(D)]
        procs += [plat.spawn(sorter(d), name=f"s{d}") for d in range(D)]
        plat.run(wait_for=procs)
        t = plat.sim.now
        return OffloadResult(
            makespan=t,
            asu_cpu_util=[a.cpu.utilization(t) for a in plat.asus],
            asu_disk_util=[a.disk.utilization(t) for a in plat.asus],
            host_util=[h.cpu.utilization(t) for h in plat.hosts],
            n_runs=sum(len(r) for r in self.runs_on_asu),
            net_bytes=plat.network.bytes_total,
        )

    def _sort_and_store(self, asu, d, bucket, batch, sort_cpr, rs):
        run = yield from asu.compute(
            cycles=batch.shape[0] * sort_cpr,
            fn=sort_records,
            args=(batch,),
        )
        yield from asu.disk_write(run.shape[0] * rs)
        self.runs_on_asu[d].append((bucket, run))

    # -- verification --------------------------------------------------------
    def verify(self) -> None:
        """Merge all runs per bucket and check the global sorted permutation."""
        all_in = concat_records(list(self.asu_data), self.params.schema)
        pieces = []
        per_bucket: dict[int, list[np.ndarray]] = defaultdict(list)
        for d in range(self.params.n_asus):
            for bucket, run in self.runs_on_asu[d]:
                # Ownership invariant: runs live on the bucket's owner.
                assert self.owner_of(bucket) == d, (bucket, d)
                per_bucket[bucket].append(run)
        for bucket in sorted(per_bucket):
            joined = concat_records(per_bucket[bucket], self.params.schema)
            pieces.append(sort_records(joined))
        out = concat_records(pieces, self.params.schema)
        check_sorted_permutation(all_in, out)
