"""Emulated distributed DSM-Sort (§4.3, Figures 6–7) on the active platform.

Pass 1 (run formation — what Figure 9 times):

* each ASU streams its share of the input off disk, runs the α-way
  **distribute** functor (when active), and ships bucket fragments to hosts;
* a **router** (the load-management hook) decides which host instance of the
  block-sort functor receives each fragment — static bucket ownership,
  simple randomization (SR), round-robin, or join-shortest-queue;
* hosts accumulate per-bucket buffers, cut them into β-record runs, really
  sort each run, and stripe the sorted runs back across the ASUs;
* ASUs write incoming runs to disk (write-behind) — pass 1 ends when every
  run is durable.

In the **passive baseline** ("conventional storage units with no integrated
processing", §6) the storage units charge no CPU at all: raw blocks stream to
their host, which performs the distribute as well as the sort.

Pass 2 (final merge): ASUs pre-merge their local runs per bucket with fan-in
γ1, hosts complete each bucket with γ2-way merges (γ1·γ2 = γ).

Every phase really transforms the records; :meth:`DsmSortJob.verify` checks
the final output is a sorted permutation of the input.  Timing comes from the
same per-record cost bounds the predictor uses (:mod:`repro.core.costs`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.config import DSMConfig
from ..core.costs import RecordCosts
from ..core.load_manager import LoadManager
from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform
from ..functors.blocksort import BlockSortFunctor
from ..functors.distribute import DistributeFunctor
from ..functors.merge import MergeFunctor, merge_sorted_batches
from ..util.distributions import make_workload
from ..util.records import concat_records
from ..util.rng import RngRegistry
from ..util.validation import check_sorted_permutation

__all__ = ["DsmSortJob", "Pass1Result", "Pass2Result"]

_EOF = "__eof__"


@dataclass
class Pass1Result:
    """Outcome of the run-formation pass."""

    makespan: float
    host_util: list[float]
    asu_cpu_util: list[float]
    asu_disk_util: list[float]
    n_runs: int
    net_bytes: int
    imbalance: float
    #: (time, utilization) samples per host — the Figure-10 traces
    host_util_series: list[list[tuple[float, float]]] = field(default_factory=list)


@dataclass
class Pass2Result:
    makespan: float
    host_util: list[float]
    asu_cpu_util: list[float]
    n_partial_runs: int


class DsmSortJob:
    """One emulated DSM-Sort execution on a given platform configuration."""

    def __init__(
        self,
        params: SystemParams,
        config: DSMConfig,
        policy: str = "static",
        workload: str = "uniform",
        active: bool = True,
        seed: int = 0,
        workload_kwargs: Optional[dict] = None,
        background_asu_duty: float = 0.0,
        asu_data: Optional[list[np.ndarray]] = None,
    ):
        if not 0.0 <= background_asu_duty < 1.0:
            raise ValueError("background_asu_duty must be in [0, 1)")
        self.params = params
        self.config = config
        self.policy = policy
        self.active = active
        #: fraction of every ASU's CPU consumed by a competing application.
        #: ASUs are *shared* network storage and the competitor has strict
        #: priority (§1: storage-side computation must not interfere with
        #: other applications' storage access), so the sort's functors see
        #: only the leftover (1 - duty) of each ASU's cycles.
        self.background_asu_duty = background_asu_duty
        self.costs = RecordCosts(params)
        self.rngs = RngRegistry(seed)
        self.dist = DistributeFunctor.uniform(config.alpha, params.schema)
        self.sorter = BlockSortFunctor(config.beta)
        # Capacity-aware routing ("static information about node capacity",
        # §3.3): the weighted policy splits records in proportion to each
        # host's clock.
        self._host_weights = (
            [params.host_clock_of(h) for h in range(params.n_hosts)]
            if policy == "weighted"
            else None
        )
        self.load_manager = LoadManager(
            params,
            n_instances=params.n_hosts,
            n_buckets=config.alpha,
            policy=policy,
            rng=self.rngs.get("routing"),
            weights=self._host_weights,
        )
        # Input: either supplied by the caller (pre-distributed application
        # data, e.g. TerraFlow cell records keyed by elevation) or generated
        # — n_records split evenly across the D ASUs, each ASU's share drawn
        # independently from the workload so temporal structure (the Fig-10
        # half-uniform/half-exponential switch) appears at every ASU.
        if asu_data is not None:
            if len(asu_data) != params.n_asus:
                raise ValueError(
                    f"asu_data has {len(asu_data)} entries for "
                    f"{params.n_asus} ASUs"
                )
            for batch in asu_data:
                if batch.dtype != params.schema.dtype:
                    raise ValueError(
                        f"asu_data dtype {batch.dtype} does not match the "
                        f"platform schema {params.schema.dtype}"
                    )
            self.asu_data = list(asu_data)
        else:
            per_asu = config.n_records // params.n_asus
            kw = workload_kwargs or {}
            self.asu_data = [
                make_workload(
                    self.rngs.get(f"workload.{d}"), per_asu, workload,
                    params.schema, **kw
                )
                for d in range(params.n_asus)
            ]
        #: runs written back, per ASU: list of (bucket, batch)
        self.runs_on_asu: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(params.n_asus)
        ]
        self._pass1_done = False

    # ------------------------------------------------------------------ pass 1
    def run_pass1(self, util_dt: float = 0.1) -> Pass1Result:
        # Re-runnable: clear per-run state (runs, router counters, RNG).
        self.runs_on_asu = [[] for _ in range(self.params.n_asus)]
        self._pass1_done = False
        self.load_manager = LoadManager(
            self.params,
            n_instances=self.params.n_hosts,
            n_buckets=self.config.alpha,
            policy=self.policy,
            rng=RngRegistry(self.rngs.seed).get("routing"),
            weights=self._host_weights,
        )
        plat_params = self.params
        if self.background_asu_duty > 0.0:
            # Strict-priority competitor: ASUs deliver (1 - duty) capacity.
            plat_params = plat_params.with_(
                asu_ratio=plat_params.asu_ratio / (1.0 - self.background_asu_duty)
            )
        plat = ActivePlatform(plat_params)
        self.platform = plat
        D, H = self.params.n_asus, self.params.n_hosts
        blk = self.params.block_records
        rs = self.params.schema.record_size
        sort_cpr = self.costs.blocksort_cycles(self.config.beta)

        producers = [
            plat.spawn(self._asu_producer(plat, d, blk, rs), name=f"prod{d}")
            for d in range(D)
        ]
        hosts = [
            plat.spawn(self._host_pass1(plat, h, rs, sort_cpr), name=f"host{h}")
            for h in range(H)
        ]
        consumers = [
            plat.spawn(self._asu_consumer(plat, d, rs), name=f"cons{d}")
            for d in range(D)
        ]
        all_procs = [*producers, *hosts, *consumers]
        # Stop the clock the moment the job's own processes finish (keeps
        # makespans exact even if auxiliary processes are still queued).
        done = plat.sim.all_of(all_procs)

        def _on_done(ev):
            if not ev.ok:
                raise ev.value  # a process crashed: surface its exception
            plat.sim.stop()

        done.callbacks.append(_on_done)
        plat.sim.run()
        pendings = [p for p in all_procs if not p.triggered]
        if pendings:
            raise RuntimeError(f"pass 1 deadlocked; {len(pendings)} processes stuck")
        makespan = plat.sim.now
        self._pass1_done = True
        n_runs = sum(len(r) for r in self.runs_on_asu)
        return Pass1Result(
            makespan=makespan,
            host_util=[h.cpu.utilization(makespan) for h in plat.hosts],
            asu_cpu_util=[a.cpu.utilization(makespan) for a in plat.asus],
            asu_disk_util=[a.disk.utilization(makespan) for a in plat.asus],
            n_runs=n_runs,
            net_bytes=plat.network.bytes_total,
            imbalance=self.load_manager.imbalance(),
            host_util_series=[
                h.cpu.busy.utilization_series(makespan, dt=util_dt)
                for h in plat.hosts
            ],
        )

    def _asu_producer(self, plat: ActivePlatform, d: int, blk: int, rs: int):
        from ..emulator.readahead import ReadAhead

        asu = plat.asus[d]
        data = self.asu_data[d]
        H = self.params.n_hosts
        blocks = [data[s : s + blk] for s in range(0, data.shape[0], blk)]
        ra = ReadAhead(plat, asu, [b.shape[0] * rs for b in blocks])
        for i, block in enumerate(blocks):
            yield ra.wait_next()
            if self.active:
                # Buffer-staging CPU cost of the read, then the distribute.
                staging = block.shape[0] * rs * self.params.cycles_per_io_byte
                if staging:
                    yield from asu.cpu.execute(cycles=staging)
                pieces = yield from asu.compute(
                    cycles=self.dist.cost_cycles(block.shape[0], self.params),
                    fn=self.dist.apply,
                    args=(block,),
                )
                # Route each bucket fragment; group fragments by destination
                # host so each (block, host) pair is one message.
                per_host: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
                for bucket, piece in enumerate(pieces):
                    if piece.shape[0] == 0:
                        continue
                    h = self.load_manager.route(bucket, piece.shape[0])
                    per_host[h].append((bucket, piece))
                for h, frags in per_host.items():
                    n = sum(p.shape[0] for _b, p in frags)
                    yield from asu.send_async(
                        plat.hosts[h], payload=("frags", d, frags), nbytes=n * rs,
                        tag="frags",
                    )
            else:
                # Passive storage: stream raw blocks, zero CPU charged.
                h = d % H
                plat.network.post(
                    asu.node_id, plat.hosts[h].node_id,
                    ("raw", d, block), block.shape[0] * rs, tag="raw",
                )
        # End of stream: tell every host.
        for h in range(H):
            if self.active:
                yield from asu.send_async(
                    plat.hosts[h], (_EOF, d, None), nbytes=16, tag="eof"
                )
            else:
                plat.network.post(
                    asu.node_id, plat.hosts[h].node_id, (_EOF, d, None), 16, tag="eof"
                )

    def _host_pass1(self, plat: ActivePlatform, h: int, rs: int, sort_cpr: float):
        host = plat.hosts[h]
        D = self.params.n_asus
        beta = self.config.beta
        buffers: dict[int, list[np.ndarray]] = defaultdict(list)
        buffered: dict[int, int] = defaultdict(int)
        next_asu = h  # stripe runs across ASUs, offset by host index
        n_eof = 0
        while n_eof < D:
            msg = yield from host.recv()
            kind, src_d, payload = msg.payload
            if kind == _EOF:
                n_eof += 1
                continue
            if kind == "raw":
                # Baseline: host performs the distribute itself.
                block = payload
                pieces = yield from host.compute(
                    cycles=self.dist.cost_cycles(block.shape[0], self.params),
                    fn=self.dist.apply,
                    args=(block,),
                )
                frags = [
                    (b, p) for b, p in enumerate(pieces) if p.shape[0] > 0
                ]
            else:
                frags = payload
            for bucket, piece in frags:
                buffers[bucket].append(piece)
                buffered[bucket] += piece.shape[0]
                while buffered[bucket] >= beta:
                    batch = concat_records(buffers[bucket], self.params.schema)
                    run_src, rest = batch[:beta], batch[beta:]
                    buffers[bucket] = [rest] if rest.shape[0] else []
                    buffered[bucket] = rest.shape[0]
                    next_asu = yield from self._emit_run(
                        plat, host, h, bucket, run_src, next_asu, rs, sort_cpr
                    )
        # Flush partial runs.
        for bucket in sorted(buffers):
            if buffered[bucket]:
                batch = concat_records(buffers[bucket], self.params.schema)
                next_asu = yield from self._emit_run(
                    plat, host, h, bucket, batch, next_asu, rs, sort_cpr
                )
        for d in range(D):
            yield from host.send_async(plat.asus[d], (_EOF, h, None), nbytes=16, tag="eof")

    def _emit_run(self, plat, host, h, bucket, batch, next_asu, rs, sort_cpr):
        """Really sort one run on the host CPU and stripe it to an ASU."""
        run = yield from host.compute(
            cycles=batch.shape[0] * sort_cpr,
            fn=lambda b: np.sort(b, order="key", kind="stable"),
            args=(batch,),
        )
        self.load_manager.complete(h, batch.shape[0])
        d = next_asu % self.params.n_asus
        # Host pays the NIC copy in both modes; wire time is off the CPU.
        yield from host.send_async(
            plat.asus[d], ("run", bucket, run), nbytes=run.shape[0] * rs, tag="run"
        )
        return next_asu + 1

    def _asu_consumer(self, plat: ActivePlatform, d: int, rs: int):
        asu = plat.asus[d]
        H = self.params.n_hosts
        n_eof = 0
        while n_eof < H:
            if self.active:
                msg = yield from asu.recv()
            else:
                msg = yield from plat.network.recv(asu.node_id)
            kind, bucket, payload = msg.payload
            if kind == _EOF:
                n_eof += 1
                continue
            nbytes = payload.shape[0] * rs
            if self.active:
                yield from asu.disk_write(nbytes)
            else:
                yield from asu.disk.write(nbytes)
            self.runs_on_asu[d].append((bucket, payload))
        yield from asu.disk.drain()

    # ------------------------------------------------------------------ pass 2
    def run_pass2(self) -> Pass2Result:
        """Final merge: γ1-way pre-merge on ASUs, γ2-way completion on hosts."""
        if not self._pass1_done:
            raise RuntimeError("run_pass1 first")
        params = self.params
        plat = ActivePlatform(params)
        D, H = params.n_asus, params.n_hosts
        rs = params.schema.record_size
        g1 = self.config.gamma1
        g2 = self.config.merge_host_fan_in
        pre_cpr = self.costs.merge_cycles(g1)
        fin_cpr = self.costs.merge_cycles(g2)
        merger1 = MergeFunctor(g1)

        self.final_buckets: dict[int, list[np.ndarray]] = defaultdict(list)
        n_partial = 0

        def plan_groups(d):
            """(bucket, runs-or-None) items in bucket order; None = done marker.

            Every ASU visits every bucket in order (empty ones included) so
            the host can count D "bucket done" markers per bucket and start
            merging a bucket while later buckets are still streaming in —
            the pipelined-phases execution of §3.3.
            """
            by_bucket: dict[int, list[np.ndarray]] = defaultdict(list)
            for bucket, run in self.runs_on_asu[d]:
                by_bucket[bucket].append(run)
            items: list[tuple[int, Optional[list[np.ndarray]]]] = []
            for bucket in range(self.config.alpha):
                runs = by_bucket.get(bucket, [])
                for gi in range(0, len(runs), g1):
                    items.append((bucket, runs[gi : gi + g1]))
                items.append((bucket, None))
            return items

        def asu_reader(d, items, buf):
            """Stream run groups off the disk ahead of the merge worker."""
            asu = plat.asus[d]
            for bucket, group in items:
                if group is not None:
                    n = sum(r.shape[0] for r in group)
                    yield from asu.disk.read(n * rs)
                yield buf.put((bucket, group))

        def asu_merge(d, buf, n_items):
            nonlocal n_partial
            asu = plat.asus[d]
            for _ in range(n_items):
                bucket, group = yield buf.get()
                h = bucket * H // self.config.alpha
                if group is None:
                    yield from asu.send_async(
                        plat.hosts[h], ("bucket_done", bucket, None), 16, tag="done"
                    )
                    continue
                n = sum(r.shape[0] for r in group)
                staging = n * rs * self.params.cycles_per_io_byte
                if staging:
                    yield from asu.cpu.execute(cycles=staging)
                if g1 > 1 and len(group) > 1:
                    merged = yield from asu.compute(
                        cycles=n * pre_cpr, fn=merger1.merge, args=(group,)
                    )
                else:
                    merged = group[0] if len(group) == 1 else merge_sorted_batches(group)
                n_partial += 1
                yield from asu.send_async(
                    plat.hosts[h], ("partial", bucket, merged),
                    nbytes=merged.shape[0] * rs, tag="partial",
                )

        def host_merge(h):
            host = plat.hosts[h]
            partials: dict[int, list[np.ndarray]] = defaultdict(list)
            done_count: dict[int, int] = defaultdict(int)
            my_buckets = [
                b for b in range(self.config.alpha)
                if b * H // self.config.alpha == h
            ]
            n_finished = 0

            def complete_bucket(bucket):
                runs = partials.pop(bucket, [])
                fan = max(g2, 2)
                # Reduce to <= fan runs by folding the *smallest* runs first
                # (the tiny pass-1 flush runs), so the overflow work is
                # proportional to the tail records, not the whole bucket.
                while len(runs) > fan:
                    runs.sort(key=lambda r: r.shape[0])
                    k = min(len(runs) - fan + 1, fan)
                    group, runs = runs[:k], runs[k:]
                    n = sum(r.shape[0] for r in group)
                    merged = yield from host.compute(
                        cycles=n * fin_cpr, fn=merge_sorted_batches, args=(group,)
                    )
                    runs.append(merged)
                if len(runs) > 1:
                    n = sum(r.shape[0] for r in runs)
                    merged = yield from host.compute(
                        cycles=n * fin_cpr, fn=merge_sorted_batches, args=(runs,)
                    )
                    runs = [merged]
                if runs:
                    self.final_buckets[bucket].append(runs[0])

            while n_finished < len(my_buckets):
                msg = yield from host.recv()
                kind, bucket, payload = msg.payload
                if kind == "bucket_done":
                    done_count[bucket] += 1
                    if done_count[bucket] == D:
                        yield from complete_bucket(bucket)
                        n_finished += 1
                else:
                    partials[bucket].append(payload)

        from ..sim import Store

        procs = []
        for d in range(D):
            items = plan_groups(d)
            buf = Store(plat.sim, capacity=2, name=f"ra2.{d}")  # double buffer
            procs.append(plat.spawn(asu_reader(d, items, buf), name=f"r{d}"))
            procs.append(plat.spawn(asu_merge(d, buf, len(items)), name=f"m{d}"))
        procs += [plat.spawn(host_merge(h), name=f"hm{h}") for h in range(H)]
        plat.run(wait_for=procs)
        makespan = plat.sim.now
        return Pass2Result(
            makespan=makespan,
            host_util=[x.cpu.utilization(makespan) for x in plat.hosts],
            asu_cpu_util=[a.cpu.utilization(makespan) for a in plat.asus],
            n_partial_runs=n_partial,
        )

    # ------------------------------------------------------------------ checks
    def input_records(self) -> np.ndarray:
        return concat_records(list(self.asu_data), self.params.schema)

    def collected_output(self) -> np.ndarray:
        """Final sorted output: buckets in splitter order, concatenated."""
        if not hasattr(self, "final_buckets"):
            raise RuntimeError("run_pass2 first")
        pieces = []
        for bucket in sorted(self.final_buckets):
            pieces.extend(self.final_buckets[bucket])
        return concat_records(pieces, self.params.schema)

    def verify(self) -> None:
        """Assert the emulated sort really sorted the data."""
        check_sorted_permutation(self.input_records(), self.collected_output())
