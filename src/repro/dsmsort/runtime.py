"""Emulated distributed DSM-Sort (§4.3, Figures 6–7) on the active platform.

Pass 1 (run formation — what Figure 9 times):

* each ASU streams its share of the input off disk, runs the α-way
  **distribute** functor (when active), and ships bucket fragments to hosts;
* a **router** (the load-management hook) decides which host instance of the
  block-sort functor receives each fragment — static bucket ownership,
  simple randomization (SR), round-robin, or join-shortest-queue;
* hosts accumulate per-bucket buffers, cut them into β-record runs, really
  sort each run, and stripe the sorted runs back across the ASUs;
* ASUs write incoming runs to disk (write-behind) — pass 1 ends when every
  run is durable.

In the **passive baseline** ("conventional storage units with no integrated
processing", §6) the storage units charge no CPU at all: raw blocks stream to
their host, which performs the distribute as well as the sort.

Pass 2 (final merge): ASUs pre-merge their local runs per bucket with fan-in
γ1, hosts complete each bucket with γ2-way merges (γ1·γ2 = γ).

Every phase really transforms the records; :meth:`DsmSortJob.verify` checks
the final output is a sorted permutation of the input.  Timing comes from the
same per-record cost bounds the predictor uses (:mod:`repro.core.costs`).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.config import DSMConfig
from ..core.costs import RecordCosts
from ..core.load_manager import LoadManager
from ..emulator.params import SystemParams
from ..emulator.platform import ActivePlatform
from ..faults.detector import FailureDetector
from ..faults.errors import StaleEpochError, UnrecoverableJobError
from ..faults.injector import MESSAGE_FAULT_KINDS, FaultPlan, Injector
from ..faults.report import FaultReport
from ..functors.blocksort import BlockSortFunctor
from ..functors.distribute import DistributeFunctor
from ..functors.merge import MergeFunctor, merge_sorted_batches
from ..resilience.breaker import BreakerBoard
from ..resilience.channel import REL, ReliableEndpoint, RetryPolicy
from ..resilience.io import read_resilient
from ..util.distributions import make_workload
from ..util.records import concat_records, sort_records
from ..util.rng import RngRegistry
from ..util.validation import check_sorted_permutation

__all__ = ["DsmSortJob", "Pass1Result", "Pass2Result"]

_EOF = "__eof__"


class _FragEntry:
    """Upstream-retention record for one routed bucket fragment.

    Producers retain every fragment they ship until pass 1 completes; if the
    destination host dies, the entry is replayed to a survivor.  ``done``
    marks an entry superseded by a replay, so detection-time sweeps and the
    dead-letter hook cannot both resend it.
    """

    __slots__ = ("src_d", "src_node", "block", "bucket", "piece", "done")

    def __init__(self, src_d, src_node, block, bucket, piece):
        self.src_d = src_d
        self.src_node = src_node
        self.block = block
        self.bucket = bucket
        self.piece = piece
        self.done = False


class _RunEntry:
    """Host-side lineage for one emitted run: the sorted payload plus its
    current destination ASU, so the run can be re-replicated if that ASU
    dies before (or after) the write became durable."""

    __slots__ = ("bucket", "run", "dest", "rid")

    def __init__(self, bucket, run, dest, rid=None):
        self.bucket = bucket
        self.run = run
        self.dest = dest
        #: manifest run id (checkpointed runs only)
        self.rid = rid


@dataclass
class Pass1Result:
    """Outcome of the run-formation pass."""

    makespan: float
    host_util: list[float]
    asu_cpu_util: list[float]
    asu_disk_util: list[float]
    n_runs: int
    net_bytes: int
    imbalance: float
    #: (time, utilization) samples per host — the Figure-10 traces
    host_util_series: list[list[tuple[float, float]]] = field(default_factory=list)
    #: set when the pass ran in fault-tolerant mode (``faults=`` given)
    fault_report: Optional["FaultReport"] = None
    #: recovery traffic counters (fault-tolerant mode)
    n_replayed_frags: int = 0
    n_reemitted_runs: int = 0
    n_takeover_blocks: int = 0
    #: False when a ``deadline`` expired before every record was durable
    #: (e.g. the chaos harness's retries-disabled negative control)
    completed: bool = True
    #: set when a ``crash_coordinator`` fault killed the job mid-pass
    coordinator_crashed: bool = False
    #: straggler-speculation counters (``speculation=`` given)
    n_hedged_shards: int = 0
    n_hedge_wasted_frags: int = 0
    #: records durable when the pass ended (== the input count if completed)
    n_durable: int = -1
    #: aggregated :class:`~repro.resilience.channel.ChannelStats` totals
    #: (reliable transport only)
    channel_stats: Optional[dict] = None
    #: circuit-breaker trips across all links (reliable transport only)
    n_breaker_trips: int = 0
    #: replication counters (``replication=`` given): runs kept durable by
    #: in-place promotion after an ASU crash, copies restored by the
    #: anti-entropy loop, fresh copies posted for fully-stranded sets, and
    #: sets still below target when the pass ended
    n_promoted_runs: int = 0
    n_repaired_copies: int = 0
    n_retargeted_copies: int = 0
    n_underreplicated: int = 0
    #: membership counters (``detection_mode="network"``): writes rejected
    #: with a stale epoch, nodes re-admitted after a heal, physical copies
    #: reconciled back (digest-verified) on re-admission, copies refused for
    #: digest divergence, confirmations withheld by the detector's majority
    #: guard, duplicate fragments dropped by the host-side global filter,
    #: and the view's final epoch (0 = no view)
    n_epoch_rejections: int = 0
    n_readmitted: int = 0
    n_reconciled_runs: int = 0
    n_divergent_copies: int = 0
    n_quarantine_holds: int = 0
    n_dup_frags_dropped: int = 0
    view_epoch: int = 0


@dataclass
class Pass2Result:
    makespan: float
    host_util: list[float]
    asu_cpu_util: list[float]
    n_partial_runs: int
    #: False when a ``deadline`` stopped the merge before every bucket
    #: completed (checkpoint/restart: the caller resumes from the manifest)
    completed: bool = True
    #: buckets adopted from the manifest's merge frontier instead of merged
    n_restored_buckets: int = 0


class DsmSortJob:
    """One emulated DSM-Sort execution on a given platform configuration."""

    def __init__(
        self,
        params: SystemParams,
        config: DSMConfig,
        policy: str = "static",
        workload: str = "uniform",
        active: bool = True,
        seed: int = 0,
        workload_kwargs: Optional[dict] = None,
        background_asu_duty: float = 0.0,
        asu_data: Optional[list[np.ndarray]] = None,
        faults: Optional[FaultPlan] = None,
        heartbeat_interval: float = 0.05,
        heartbeat_timeout: float = 0.2,
        tracer=None,
        metrics=None,
        scrape_interval=None,
        transport: str = "direct",
        retry_policy: Optional[RetryPolicy] = None,
        mailbox_capacity: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: Optional[float] = None,
        manifest=None,
        routing_seed: Optional[int] = None,
        speculation=None,
        routing_weights=None,
        job_id: Optional[str] = None,
        replication=None,
        detection_mode: str = "timer",
        probe_timeout: Optional[float] = None,
    ):
        if not 0.0 <= background_asu_duty < 1.0:
            raise ValueError("background_asu_duty must be in [0, 1)")
        if faults is not None and not active:
            raise ValueError(
                "fault-tolerant mode needs active storage (recovery relies on "
                "ASU-side shard mirroring and takeover producers)"
            )
        if transport not in ("direct", "reliable"):
            raise ValueError(
                f"transport must be 'direct' or 'reliable', got {transport!r}"
            )
        if transport == "reliable" and faults is None:
            raise ValueError(
                "transport='reliable' runs on the fault-tolerant path; pass a "
                "FaultPlan (an empty one is fine)"
            )
        if faults is not None and transport == "direct":
            lossy = faults.kinds() & {*MESSAGE_FAULT_KINDS, "disk_fault", "partition"}
            if lossy:
                raise ValueError(
                    f"fault plan injects {sorted(lossy)} but transport='direct' "
                    "cannot mask message loss or transient I/O errors; use "
                    "transport='reliable'"
                )
        if detection_mode not in ("timer", "network"):
            raise ValueError(
                f"detection_mode must be 'timer' or 'network', got "
                f"{detection_mode!r}"
            )
        if detection_mode == "network" and faults is None:
            raise ValueError(
                "detection_mode='network' runs on the fault-tolerant path; "
                "pass a FaultPlan (an empty one is fine)"
            )
        if detection_mode == "network" and speculation is not None:
            raise ValueError(
                "speculation= is incompatible with detection_mode='network': "
                "hedged shard ownership would race the epoch-fenced takeover"
            )
        if manifest is not None and faults is None:
            raise ValueError(
                "manifest= runs on the fault-tolerant path; pass a FaultPlan "
                "(an empty one is fine)"
            )
        if speculation is not None and faults is None:
            raise ValueError(
                "speculation= runs on the fault-tolerant path; pass a "
                "FaultPlan (an empty one is fine)"
            )
        if replication is not None and faults is None:
            raise ValueError(
                "replication= runs on the fault-tolerant path; pass a "
                "FaultPlan (an empty one is fine)"
            )
        if replication is not None and replication.r > params.n_asus:
            raise ValueError(
                f"replication factor {replication.r} exceeds the fleet size "
                f"({params.n_asus} ASUs)"
            )
        if (
            faults is not None
            and "lose_replica" in faults.kinds()
            and replication is None
        ):
            raise ValueError(
                "fault plan injects lose_replica but the job has no "
                "replication layer to absorb media loss; pass replication="
            )
        if speculation is not None and metrics is None:
            # The speculator reads per-replica progress rates from the
            # metrics registry, so a speculative run is always metered.
            from ..metrics import MetricsRegistry

            metrics = MetricsRegistry()
        self.params = params
        self.config = config
        self.policy = policy
        self.active = active
        #: repro.recovery.manifest.RunManifest journaling this job's progress
        #: (checkpoint/restart); None = no durability layer
        self.manifest = manifest
        #: repro.recovery.speculate.SpeculationPolicy enabling the straggler
        #: speculator during fault-tolerant run formation
        self.speculation = speculation
        #: repro.replica.ReplicationConfig enabling r-way run replication
        #: during fault-tolerant run formation; None = single-copy runs
        self.replication = replication
        self._replica_mgr = None
        #: routing RNG seed override: lets a supervisor *re-place* work
        #: (fresh routing decisions) without changing the workload seed
        self._routing_seed = int(routing_seed) if routing_seed is not None else int(seed)
        #: fraction of every ASU's CPU consumed by a competing application.
        #: ASUs are *shared* network storage and the competitor has strict
        #: priority (§1: storage-side computation must not interfere with
        #: other applications' storage access), so the sort's functors see
        #: only the leftover (1 - duty) of each ASU's cycles.
        self.background_asu_duty = background_asu_duty
        self.costs = RecordCosts(params)
        self.rngs = RngRegistry(seed)
        self.dist = DistributeFunctor.uniform(config.alpha, params.schema)
        self.sorter = BlockSortFunctor(config.beta)
        # Capacity-aware routing ("static information about node capacity",
        # §3.3): the weighted policy splits records in proportion to each
        # host's clock — unless the caller (e.g. the scheduler's placement
        # layer, which knows cross-job wear the job cannot see) supplies
        # explicit per-host weights.
        if routing_weights is not None:
            if policy != "weighted":
                raise ValueError(
                    "routing_weights requires policy='weighted', got "
                    f"policy={policy!r}"
                )
            w = [float(x) for x in routing_weights]
            if len(w) != params.n_hosts:
                raise ValueError(
                    f"routing_weights has {len(w)} entries for "
                    f"{params.n_hosts} hosts"
                )
            if any(not np.isfinite(x) or x <= 0 for x in w):
                raise ValueError(f"routing_weights must be positive, got {w}")
            self._host_weights = w
        else:
            self._host_weights = (
                [params.host_clock_of(h) for h in range(params.n_hosts)]
                if policy == "weighted"
                else None
            )
        #: scheduler namespace: labels this job's registry instruments with
        #: ``job=<id>`` so concurrent jobs can share one MetricsRegistry
        #: without aliasing; None keeps exports identical to single-job runs
        self.job_id = job_id
        self._job_labels = {"job": job_id} if job_id is not None else {}
        #: optional repro.metrics.MetricsRegistry shared by both passes and
        #: by the load manager (its routing feedback = these metrics);
        #: ``scrape_interval`` attaches a zero-perturbation collector.
        self.metrics = metrics
        self.scrape_interval = scrape_interval
        self.load_manager = LoadManager(
            params,
            n_instances=params.n_hosts,
            n_buckets=config.alpha,
            policy=policy,
            rng=RngRegistry(self._routing_seed).get("routing"),
            weights=self._host_weights,
            registry=metrics,
            job_id=job_id,
        )
        # Input: either supplied by the caller (pre-distributed application
        # data, e.g. TerraFlow cell records keyed by elevation) or generated
        # — n_records split evenly across the D ASUs, each ASU's share drawn
        # independently from the workload so temporal structure (the Fig-10
        # half-uniform/half-exponential switch) appears at every ASU.
        if asu_data is not None:
            if len(asu_data) != params.n_asus:
                raise ValueError(
                    f"asu_data has {len(asu_data)} entries for "
                    f"{params.n_asus} ASUs"
                )
            for batch in asu_data:
                if batch.dtype != params.schema.dtype:
                    raise ValueError(
                        f"asu_data dtype {batch.dtype} does not match the "
                        f"platform schema {params.schema.dtype}"
                    )
            self.asu_data = list(asu_data)
        else:
            per_asu = config.n_records // params.n_asus
            kw = workload_kwargs or {}
            self.asu_data = [
                make_workload(
                    self.rngs.get(f"workload.{d}"), per_asu, workload,
                    params.schema, **kw
                )
                for d in range(params.n_asus)
            ]
        #: runs written back, per ASU: list of (bucket, batch)
        self.runs_on_asu: list[list[tuple[int, np.ndarray]]] = [
            [] for _ in range(params.n_asus)
        ]
        self._pass1_done = False
        #: fault schedule for pass 1 (None = run the plain, non-FT path)
        self.faults = faults
        self.heartbeat_interval = float(heartbeat_interval)
        self.heartbeat_timeout = float(heartbeat_timeout)
        #: "timer" = zero-cost heartbeats (fail-stop only, no false suspicion);
        #: "network" = heartbeats as real messages + indirect probes, so cuts
        #: are *detected* and confirmations are fenced by membership epochs
        #: (docs/PARTITIONS.md).  Timer mode leaves legacy runs byte-identical.
        self.detection_mode = detection_mode
        self.probe_timeout = probe_timeout
        #: repro.membership.ViewService of the current FT pass (network mode)
        self.view = None
        #: "direct" posts straight onto the network (the paper's lossless
        #: emulation); "reliable" runs every host<->ASU exchange through a
        #: :class:`~repro.resilience.channel.ReliableEndpoint` so injected
        #: message faults (drop/dup/delay/corrupt) and transient disk errors
        #: are masked by retransmission, dedup, and resilient reads.
        self.transport = transport
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.mailbox_capacity = mailbox_capacity
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = breaker_cooldown
        #: per-node reliable endpoints (reliable transport only; keyed node_id)
        self._endpoints: Optional[dict[str, ReliableEndpoint]] = None
        self.breaker_board: Optional[BreakerBoard] = None
        #: optional repro.trace.Tracer shared by both passes; pass-2 events
        #: are placed after pass 1 on one stitched timeline via tracer.offset
        self.tracer = tracer
        self._pass1_makespan = 0.0

    # ------------------------------------------------------------------ pass 1
    def run_pass1(self, util_dt: float = 0.1, deadline: Optional[float] = None) -> Pass1Result:
        """Run the run-formation pass.

        ``deadline`` (fault-tolerant mode only) caps the simulated time: if
        the pass has not completed by then, a *partial* result is returned
        with ``completed=False`` instead of raising — the chaos harness's
        negative control relies on this to demonstrate record loss when
        retries are disabled.
        """
        if deadline is not None and self.faults is None:
            raise ValueError("deadline is only meaningful in fault-tolerant mode")
        # Re-runnable: clear per-run state (runs, router counters, RNG).
        self.runs_on_asu = [[] for _ in range(self.params.n_asus)]
        self._pass1_done = False
        self._replica_mgr = None
        self.view = None
        self.load_manager = LoadManager(
            self.params,
            n_instances=self.params.n_hosts,
            n_buckets=self.config.alpha,
            policy=self.policy,
            rng=RngRegistry(self._routing_seed).get("routing"),
            weights=self._host_weights,
            registry=self.metrics,
            job_id=self.job_id,
        )
        plat_params = self.params
        if self.background_asu_duty > 0.0:
            # Strict-priority competitor: ASUs deliver (1 - duty) capacity.
            plat_params = plat_params.with_(
                asu_ratio=plat_params.asu_ratio / (1.0 - self.background_asu_duty)
            )
        if self.tracer is not None:
            self.tracer.offset = 0.0
        if self.metrics is not None and self.metrics.collector is not None:
            self.metrics.collector.offset = 0.0
        plat = ActivePlatform(
            plat_params, tracer=self.tracer,
            metrics=self.metrics, scrape_interval=self.scrape_interval,
        )
        self.platform = plat
        self.load_manager.attach_sim(plat.sim)
        if self.faults is not None:
            return self._run_pass1_ft(plat, util_dt, deadline)
        D, H = self.params.n_asus, self.params.n_hosts
        blk = self.params.block_records
        rs = self.params.schema.record_size
        sort_cpr = self.costs.blocksort_cycles(self.config.beta)

        producers = [
            plat.spawn(self._asu_producer(plat, d, blk, rs), name=f"prod{d}")
            for d in range(D)
        ]
        hosts = [
            plat.spawn(self._host_pass1(plat, h, rs, sort_cpr), name=f"host{h}")
            for h in range(H)
        ]
        consumers = [
            plat.spawn(self._asu_consumer(plat, d, rs), name=f"cons{d}")
            for d in range(D)
        ]
        all_procs = [*producers, *hosts, *consumers]
        # Stop the clock the moment the job's own processes finish (keeps
        # makespans exact even if auxiliary processes are still queued).
        done = plat.sim.all_of(all_procs)

        def _on_done(ev):
            if not ev.ok:
                raise ev.value  # a process crashed: surface its exception
            plat.sim.stop()

        done.callbacks.append(_on_done)
        plat.sim.run()
        pendings = [p for p in all_procs if not p.triggered]
        if pendings:
            raise RuntimeError(f"pass 1 deadlocked; {len(pendings)} processes stuck")
        makespan = plat.sim.now
        self._pass1_done = True
        self._pass1_makespan = makespan
        if self.tracer is not None:
            # Job-phase aggregate span: excluded from causal-graph node sets
            # (cat="phase") but anchors the sid/parent chain for pass 2.
            self.tracer.span(0.0, makespan, "job", "pass1",
                             cat="phase", sid="pass1")
        if self.metrics is not None and self.metrics.collector is not None:
            self.metrics.collector.finalize(makespan)
        n_runs = sum(len(r) for r in self.runs_on_asu)
        return Pass1Result(
            makespan=makespan,
            host_util=[h.cpu.utilization(makespan) for h in plat.hosts],
            asu_cpu_util=[a.cpu.utilization(makespan) for a in plat.asus],
            asu_disk_util=[a.disk.utilization(makespan) for a in plat.asus],
            n_runs=n_runs,
            net_bytes=plat.network.bytes_total,
            imbalance=self.load_manager.imbalance(),
            host_util_series=[
                h.cpu.busy.utilization_series(makespan, dt=util_dt)
                for h in plat.hosts
            ],
        )

    def _trace_records(self, sim, track: str, n: int, dt: Optional[float] = None) -> None:
        """Per-stage record observation (no-op when untraced and unmetered).

        ``track`` is ``<node>.<stage>``; ``n`` records just finished the
        stage.  Tracing accumulates the ``records`` counter; metering marks
        the stage's windowed throughput :class:`~repro.metrics.Rate` and —
        when the caller passes ``dt``, the virtual time the batch spent in
        the stage — feeds the per-record latency histogram.
        """
        tracer = sim.tracer
        if tracer is not None and n:
            tracer.count(sim.now, track, "records", float(n))
        m = sim.metrics
        if m is not None and n:
            from ..metrics.registry import derive_owner

            owner = derive_owner(track)
            stage = track.split(".", 1)[-1]
            m.rate(
                "repro_stage_records", owner=owner, node=owner, stage=stage,
                **self._job_labels,
            ).mark(sim.now, float(n))
            if dt is not None:
                m.histogram(
                    "repro_stage_record_latency_seconds", stage=stage,
                    **self._job_labels,
                ).observe(dt / n, n=int(n))

    def _asu_producer(self, plat: ActivePlatform, d: int, blk: int, rs: int):
        from ..emulator.readahead import ReadAhead

        asu = plat.asus[d]
        data = self.asu_data[d]
        H = self.params.n_hosts
        blocks = [data[s : s + blk] for s in range(0, data.shape[0], blk)]
        # The whole block stripe moves through the charge models as one
        # NumPy op each (bit-identical per element to the scalar paths).
        sizes = np.array([b.shape[0] for b in blocks], dtype=np.int64)
        stripe_bytes = sizes * rs
        staging_cycles = stripe_bytes * self.params.cycles_per_io_byte
        dist_cycles = self.dist.cost_cycles_batch(sizes, self.params)
        ra = ReadAhead(plat, asu, stripe_bytes.tolist())
        for i, block in enumerate(blocks):
            yield ra.wait_next()
            if self.active:
                # Buffer-staging CPU cost of the read, then the distribute.
                t0 = plat.sim.now
                staging = staging_cycles[i]
                if staging:
                    yield from asu.cpu.execute(cycles=staging)
                pieces = yield from asu.compute(
                    cycles=dist_cycles[i],
                    fn=self.dist.apply,
                    args=(block,),
                )
                self._trace_records(
                    plat.sim, f"asu{d}.distribute", block.shape[0],
                    dt=plat.sim.now - t0,
                )
                # Route each bucket fragment; group fragments by destination
                # host so each (block, host) pair is one message.
                per_host: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
                for bucket, piece in enumerate(pieces):
                    if piece.shape[0] == 0:
                        continue
                    h = self.load_manager.route(bucket, piece.shape[0])
                    per_host[h].append((bucket, piece))
                for h, frags in per_host.items():
                    n = sum(p.shape[0] for _b, p in frags)
                    yield from asu.send_async(
                        plat.hosts[h], payload=("frags", d, frags), nbytes=n * rs,
                        tag="frags",
                    )
            else:
                # Passive storage: stream raw blocks, zero CPU charged.
                h = d % H
                plat.network.post(
                    asu.node_id, plat.hosts[h].node_id,
                    ("raw", d, block), block.shape[0] * rs, tag="raw",
                )
        # End of stream: tell every host.
        for h in range(H):
            if self.active:
                yield from asu.send_async(
                    plat.hosts[h], (_EOF, d, None), nbytes=16, tag="eof"
                )
            else:
                plat.network.post(
                    asu.node_id, plat.hosts[h].node_id, (_EOF, d, None), 16, tag="eof"
                )

    def _host_pass1(self, plat: ActivePlatform, h: int, rs: int, sort_cpr: float):
        host = plat.hosts[h]
        D = self.params.n_asus
        beta = self.config.beta
        buffers: dict[int, list[np.ndarray]] = defaultdict(list)
        buffered: dict[int, int] = defaultdict(int)
        next_asu = h  # stripe runs across ASUs, offset by host index
        n_eof = 0
        while n_eof < D:
            msg = yield from host.recv()
            kind, src_d, payload = msg.payload
            if kind == _EOF:
                n_eof += 1
                continue
            if kind == "raw":
                # Baseline: host performs the distribute itself.
                block = payload
                pieces = yield from host.compute(
                    cycles=self.dist.cost_cycles(block.shape[0], self.params),
                    fn=self.dist.apply,
                    args=(block,),
                )
                frags = [
                    (b, p) for b, p in enumerate(pieces) if p.shape[0] > 0
                ]
            else:
                frags = payload
            for bucket, piece in frags:
                buffers[bucket].append(piece)
                buffered[bucket] += piece.shape[0]
                while buffered[bucket] >= beta:
                    batch = concat_records(buffers[bucket], self.params.schema)
                    run_src, rest = batch[:beta], batch[beta:]
                    buffers[bucket] = [rest] if rest.shape[0] else []
                    buffered[bucket] = rest.shape[0]
                    next_asu = yield from self._emit_run(
                        plat, host, h, bucket, run_src, next_asu, rs, sort_cpr
                    )
        # Flush partial runs.
        for bucket in sorted(buffers):
            if buffered[bucket]:
                batch = concat_records(buffers[bucket], self.params.schema)
                next_asu = yield from self._emit_run(
                    plat, host, h, bucket, batch, next_asu, rs, sort_cpr
                )
        for d in range(D):
            yield from host.send_async(plat.asus[d], (_EOF, h, None), nbytes=16, tag="eof")

    def _emit_run(self, plat, host, h, bucket, batch, next_asu, rs, sort_cpr):
        """Really sort one run on the host CPU and stripe it to an ASU."""
        t0 = plat.sim.now
        run = yield from host.compute(
            cycles=batch.shape[0] * sort_cpr,
            fn=sort_records,
            args=(batch,),
        )
        self.load_manager.complete(h, batch.shape[0])
        self._trace_records(
            plat.sim, f"host{h}.sort", batch.shape[0], dt=plat.sim.now - t0
        )
        d = next_asu % self.params.n_asus
        # Host pays the NIC copy in both modes; wire time is off the CPU.
        yield from host.send_async(
            plat.asus[d], ("run", bucket, run), nbytes=run.shape[0] * rs, tag="run"
        )
        return next_asu + 1

    def _asu_consumer(self, plat: ActivePlatform, d: int, rs: int):
        asu = plat.asus[d]
        H = self.params.n_hosts
        n_eof = 0
        while n_eof < H:
            if self.active:
                msg = yield from asu.recv()
            else:
                msg = yield from plat.network.recv(asu.node_id)
            kind, bucket, payload = msg.payload
            if kind == _EOF:
                n_eof += 1
                continue
            nbytes = payload.shape[0] * rs
            t0 = plat.sim.now
            if self.active:
                yield from asu.disk_write(nbytes)
            else:
                yield from asu.disk.write(nbytes)
            self.runs_on_asu[d].append((bucket, payload))
            self._trace_records(
                plat.sim, f"asu{d}.write", payload.shape[0], dt=plat.sim.now - t0
            )
        yield from asu.disk.drain()

    # ------------------------------------------------------------ pass 1 (FT)
    def _run_pass1_ft(
        self, plat: ActivePlatform, util_dt: float, deadline: Optional[float] = None
    ) -> Pass1Result:
        """Fault-tolerant run formation (see docs/FAULTS.md).

        Same dataflow as the plain pass, rebuilt around exactly-once record
        accounting so any schedule of fail-stops still yields a complete,
        verified-sorted output:

        * every input shard is mirrored; a dead ASU's shard is re-produced by
          a takeover on the next alive ASU, resuming from per-(block, bucket)
          ship markers;
        * producers retain every shipped fragment (:class:`_FragEntry`); a
          dead host's fragments are replayed to survivors and *all* of its
          runs are discarded, wherever they landed — the frag is the unit of
          replay, so no record is ever counted twice;
        * hosts keep a run lineage (:class:`_RunEntry`); runs stranded on a
          dead ASU are re-replicated to alive ones via the host's own mailbox
          (which serialises recovery behind in-flight emits);
        * completion is a durable-record count: pass 1 ends when every input
          record is in exactly one durable run on an alive ASU.

        All marker updates share a yield-free region with the network post
        they describe, so a fail-stop (which can only land at a yield) can
        never half-record a transition.
        """
        from ..emulator.net import Message
        from ..sim import Event

        D, H = self.params.n_asus, self.params.n_hosts
        blk = self.params.block_records
        rs = self.params.schema.record_size
        sort_cpr = self.costs.blocksort_cycles(self.config.beta)

        # Recovery bookkeeping (reset so the job is re-runnable).
        self._ft_total = sum(a.shape[0] for a in self.asu_data)
        self._ft_durable = 0
        self._frag_log: dict[int, list[_FragEntry]] = defaultdict(list)
        self._run_log: list[list[_RunEntry]] = [[] for _ in range(H)]
        self._run_hosts: list[list[int]] = [[] for _ in range(D)]
        self._shipped: set[tuple[int, int, int]] = set()
        self._blocks_complete: set[tuple[int, int]] = set()
        self._eof_posted: set[int] = set()
        self._shard_owner: dict[int, int] = {d: d for d in range(D)}
        self._dead_asus: set[int] = set()
        self._dead_hosts: set[int] = set()
        self._stripe_next: list[int] = list(range(H))
        self._n_replayed_frags = 0
        self._n_reemitted_runs = 0
        self._n_takeover_blocks = 0
        self._n_hedged_shards = 0
        self._n_hedge_wasted_frags = 0
        self._coord_crashed = False
        # Membership state (network detection mode; empty/idle otherwise).
        self._fenced_asus: set[int] = set()
        #: global frag exactly-once authority: (src_d, block, bucket) -> the
        #: _FragEntry whose host actually buffered the records (membership
        #: mode only — the fail-stop model needs no cross-host dedup because
        #: a crashed producer can never re-ship what a takeover re-ships)
        self._frags_accepted: dict[tuple, "_FragEntry"] = {}
        #: per-ASU (key, digest) snapshots taken at expulsion, offered back
        #: through ReplicationManager.readopt_copy on re-admission
        self._readmit_stash: dict[int, list] = {}
        self._n_readmitted = 0
        self._n_reconciled_runs = 0
        self._n_dup_frags_dropped = 0
        #: per-fragment content digests (speculation mode): lets a hedged
        #: re-distribute verify it reproduced already-shipped fragments
        #: byte-identically before skipping them
        self._frag_digests = {} if self.speculation is not None else None
        self.recovered_at: dict[str, float] = {}
        self._complete_ev = Event(plat.sim)
        self._ft_plat = plat
        self._Message = Message

        if self.replication is not None:
            from ..replica.manager import ReplicationManager

            self._replica_mgr = ReplicationManager(
                self.replication, D,
                registry=self.metrics,
                manifest=self.manifest,
                tracer=self.tracer,
                job_labels=self._job_labels,
            )

        if self.manifest is not None:
            # Checkpoint/restart: bind the journal's charged writer to this
            # platform, then replay it — a fresh manifest replays to nothing,
            # a crashed predecessor's manifest restores the durable frontier
            # so producers skip completed blocks and re-ship only what was
            # lost.  EOF markers are volatile by design: every shard's
            # producer re-announces EOF on the new platform.
            self.manifest.bind(plat)
            state = self.manifest.restore_state()
            self._shipped = set(state.covered)
            self._blocks_complete = set(state.blocks_complete)
            self._ft_durable = state.n_durable
            for rid, h, bucket, dest, payload in state.live_runs:
                self.runs_on_asu[dest].append((bucket, payload))
                # Source host -1: a restored run is disk-durable with exact
                # frag lineage, so a *new* crash of its original source host
                # must not discard it (no retained frags exist to replay it
                # from).  Its lineage host still re-replicates it if the
                # destination ASU dies — the rid keys the manifest update.
                self._run_hosts[dest].append(-1)
                if self._replica_mgr is not None:
                    # The replica manager takes over re-replication duty
                    # (keyed by rid); anti-entropy tops the run back to r.
                    self._replica_mgr.adopt_restored(rid, h, bucket, payload, dest)
                else:
                    self._run_log[h].append(_RunEntry(bucket, payload, dest, rid))

        if self.transport == "reliable":
            # One endpoint per node, each with its own RNG stream (fresh
            # registry per run so a re-run reproduces the same jitter).
            rngs = RngRegistry(self.rngs.seed)
            cooldown = (
                self.breaker_cooldown
                if self.breaker_cooldown is not None
                else self.retry_policy.timeout * 8
            )
            self.breaker_board = BreakerBoard(
                plat.sim, fail_threshold=self.breaker_threshold, cooldown=cooldown
            )
            self._endpoints = {
                node.node_id: ReliableEndpoint(
                    plat, node,
                    rng=rngs.get(f"rel.{node.node_id}"),
                    policy=self.retry_policy,
                    board=self.breaker_board,
                    inbox_capacity=self.mailbox_capacity,
                )
                for node in [*plat.hosts, *plat.asus]
            }
        else:
            self._endpoints = None
            self.breaker_board = None

        if self.detection_mode == "network":
            # Membership view: epochs fence replica writes and manifest
            # appends, so an expelled-but-alive node's in-flight mutations
            # are rejected (typed) instead of silently racing the takeover.
            from ..membership import ViewService

            self.view = ViewService(
                [f"asu{d}" for d in range(D)] + [f"host{h}" for h in range(H)],
                metrics=self.metrics,
            )
            if self._replica_mgr is not None:
                self._replica_mgr.attach_view(self.view)
            if self.manifest is not None:
                self.manifest.attach_view(self.view)

        injector = Injector(plat, self.faults, on_fault=self._on_fault_ft)
        detector = FailureDetector(
            plat, interval=self.heartbeat_interval, timeout=self.heartbeat_timeout,
            mode=self.detection_mode, probe_timeout=self.probe_timeout,
        )
        detector.on_failure.append(self._on_detected_ft)
        if self.view is not None:
            detector.on_readmit.append(self._on_readmit_ft)
        self.injector, self.detector = injector, detector
        injector.arm()
        detector.start()
        plat.network.dead_letter_hook = self._dead_letter_ft

        for d in range(D):
            plat.spawn(
                self._produce_shard_ft(plat, d, d, blk, rs),
                name=f"prod{d}", node=plat.asus[d],
            )
        for h in range(H):
            plat.spawn(
                self._host_pass1_ft(plat, h, rs, sort_cpr),
                name=f"host{h}", node=plat.hosts[h],
            )
        for d in range(D):
            plat.spawn(
                self._asu_consumer_ft(plat, d, rs),
                name=f"cons{d}", node=plat.asus[d],
            )
        if self._replica_mgr is not None:
            plat.spawn(self._repair_loop_ft(plat, rs), name="repair")
        coord = plat.spawn(self._coordinator_ft(plat), name="coordinator")
        if self.speculation is not None:
            from ..recovery.speculate import Speculator

            self._speculator = Speculator(self, self.speculation)
            self._speculator.attach(plat)
        plat.sim.run(until=deadline)
        completed = coord.triggered
        if not completed and deadline is None and not self._coord_crashed:
            raise RuntimeError("fault-tolerant pass 1 never completed (deadlock?)")
        makespan = plat.sim.now
        if completed:
            self._pass1_done = True
            self._pass1_makespan = makespan
            if self.tracer is not None:
                self.tracer.span(0.0, makespan, "job", "pass1",
                                 cat="phase", sid="pass1")
            if self.manifest is not None:
                self.manifest.log_pass1_done(makespan)
        if self.metrics is not None and self.metrics.collector is not None:
            self.metrics.collector.finalize(makespan)
        self.fault_report = FaultReport.from_run(injector, detector, self.recovered_at)
        channel_stats = None
        n_trips = 0
        if self._endpoints is not None:
            channel_stats = {}
            for ep in self._endpoints.values():
                for k, v in ep.stats.as_dict().items():
                    channel_stats[k] = channel_stats.get(k, 0) + v
            n_trips = self.breaker_board.n_trips()
        return Pass1Result(
            makespan=makespan,
            host_util=[x.cpu.utilization(makespan) for x in plat.hosts],
            asu_cpu_util=[a.cpu.utilization(makespan) for a in plat.asus],
            asu_disk_util=[a.disk.utilization(makespan) for a in plat.asus],
            n_runs=sum(len(r) for r in self.runs_on_asu),
            net_bytes=plat.network.bytes_total,
            imbalance=self.load_manager.imbalance(),
            host_util_series=[
                x.cpu.busy.utilization_series(makespan, dt=util_dt)
                for x in plat.hosts
            ],
            fault_report=self.fault_report,
            n_replayed_frags=self._n_replayed_frags,
            n_reemitted_runs=self._n_reemitted_runs,
            n_takeover_blocks=self._n_takeover_blocks,
            completed=completed,
            n_durable=self._ft_durable,
            channel_stats=channel_stats,
            n_breaker_trips=n_trips,
            coordinator_crashed=self._coord_crashed,
            n_hedged_shards=self._n_hedged_shards,
            n_hedge_wasted_frags=self._n_hedge_wasted_frags,
            n_promoted_runs=(
                0 if self._replica_mgr is None
                else self._replica_mgr.n_promoted_runs
            ),
            n_repaired_copies=(
                0 if self._replica_mgr is None
                else self._replica_mgr.n_repaired_copies
            ),
            n_retargeted_copies=(
                0 if self._replica_mgr is None
                else self._replica_mgr.n_retargeted_copies
            ),
            n_underreplicated=(
                0 if self._replica_mgr is None
                else len(self._replica_mgr.under_replicated_keys())
            ),
            n_epoch_rejections=(
                0 if self.view is None else self.view.n_rejections
            ),
            n_readmitted=self._n_readmitted,
            n_reconciled_runs=self._n_reconciled_runs,
            n_divergent_copies=(
                0 if self._replica_mgr is None
                else self._replica_mgr.n_divergent_copies
            ),
            n_quarantine_holds=detector.n_quarantine_holds,
            n_dup_frags_dropped=self._n_dup_frags_dropped,
            view_epoch=0 if self.view is None else self.view.epoch,
        )

    # -- reliable-transport plumbing (falls through to the direct path) -------
    def _recv_node(self, node):
        """Receive on ``node``: endpoint inbox in reliable mode, else mailbox.

        The endpoint's receiver forwards non-envelope messages (e.g. the
        recovery manager's ``reemit`` control injections) untouched, so both
        paths see the same application messages.
        """
        if self._endpoints is None:
            msg = yield from node.recv()
        else:
            msg = yield from self._endpoints[node.node_id].recv()
        return msg

    def _post_from(self, src_id: str, dst_id: str, payload, nbytes: int, tag: str) -> None:
        """Post from ``src_id`` (callback-safe; bypasses the send window)."""
        if self._endpoints is None:
            self._ft_plat.network.post(src_id, dst_id, payload, nbytes, tag=tag)
        else:
            self._endpoints[src_id].post(dst_id, payload, nbytes, tag=tag)

    def _avoid_hosts(self, src_id: str) -> tuple:
        """Hosts whose link from ``src_id`` has an open breaker.

        A soft steer-around set for the router: quarantined (dead) hosts are
        already masked, this additionally routes fragments away from flapping
        links until their breaker cools down.  Empty on the direct path, so
        fault-free routing decisions are untouched.
        """
        board = self.breaker_board
        if board is None:
            return ()
        return tuple(
            h for h in range(self.params.n_hosts)
            if h not in self._dead_hosts and not board.healthy(src_id, f"host{h}")
        )

    def _alive_endpoint(self) -> ReliableEndpoint:
        """Any endpoint on an alive node — replay source when the origin died.

        In membership mode the node must also be a current view member: an
        expelled node's endpoint would retransmit into the cut that got it
        expelled, stalling the replay until the heal.
        """
        plat = self._ft_plat
        for node in [*plat.asus, *plat.hosts]:
            if node.alive and (
                self.view is None or self.view.is_member(node.node_id)
            ):
                return self._endpoints[node.node_id]
        raise UnrecoverableJobError("no alive node left to replay from")

    def _producer_fenced(self, owner: int, shard: int) -> bool:
        """Zombie check: an expelled producer must stop shipping.

        Only meaningful in membership mode — a fail-stopped producer's
        process dies with its node, so the legacy path never observes a
        producer that outlived its ownership.  Checked at the top of every
        yield-free ship region, so expulsion (which lands in a simulator
        callback, i.e. at a yield) can never split a marker from its post.
        """
        if self.view is None:
            return False
        return owner in self._fenced_asus or self._shard_owner.get(shard) != owner

    def _produce_shard_ft(self, plat: ActivePlatform, owner: int, shard: int, blk: int, rs: int):
        """Stream ``shard``'s input, distribute, route, ship — resumable.

        Runs on ``owner``: the shard's home ASU, or the mirror holder after a
        takeover.  Ship markers are per (block, bucket) and updated in the
        same yield-free region as the post, so a ship is exactly-once across
        any chain of takeovers.
        """
        from ..emulator.readahead import ReadAhead

        asu = plat.asus[owner]
        ep = None if self._endpoints is None else self._endpoints[asu.node_id]
        data = self.asu_data[shard]
        H = self.params.n_hosts
        cpnb = self.params.cycles_per_net_byte
        takeover = owner != shard
        blocks = [data[s : s + blk] for s in range(0, data.shape[0], blk)]
        pending = [
            i for i in range(len(blocks)) if (shard, i) not in self._blocks_complete
        ]
        # Batched charge paths over the pending stripe (see _asu_producer).
        sizes = np.array([b.shape[0] for b in blocks], dtype=np.int64)
        stripe_bytes = sizes * rs
        staging_cycles = stripe_bytes * self.params.cycles_per_io_byte
        dist_cycles = self.dist.cost_cycles_batch(sizes, self.params)
        if ep is None:
            ra = ReadAhead(plat, asu, [int(stripe_bytes[i]) for i in pending])
        else:
            # Reliable mode reads sequentially through the retry wrapper: a
            # transient disk-fault window stalls this producer (bounded
            # backoff) instead of crashing a prefetch process.
            ra = None
        for i in pending:
            block = blocks[i]
            if ra is not None:
                yield ra.wait_next()
            # A hedged replica (or the hedged original) may have completed
            # this block while we progressed: skip it.  For a solo producer
            # the marker can never appear mid-loop, so the plain FT path is
            # untouched.  The prefetched read above is still consumed.
            if (shard, i) in self._blocks_complete:
                continue
            if self._producer_fenced(owner, shard):
                return  # expelled mid-stream: the fenced takeover owns the rest
            if ra is None:
                yield from read_resilient(plat.sim, asu.disk, int(stripe_bytes[i]))
            t0 = plat.sim.now
            staging = staging_cycles[i]
            if staging:
                yield from asu.cpu.execute(cycles=staging)
            pieces = yield from asu.compute(
                cycles=dist_cycles[i],
                fn=self.dist.apply,
                args=(block,),
            )
            self._trace_records(
                plat.sim, f"asu{owner}.distribute", block.shape[0],
                dt=plat.sim.now - t0,
            )
            if takeover:
                self._n_takeover_blocks += 1
            per_host: dict[int, list[tuple[int, np.ndarray]]] = defaultdict(list)
            for bucket, piece in enumerate(pieces):
                if piece.shape[0] == 0:
                    continue
                if (shard, i, bucket) in self._shipped:
                    if self._frag_digests is not None:
                        # Digest-checked dedup: a skipped fragment must be
                        # byte-identical to what the competitor shipped —
                        # catches any nondeterminism in a hedged replay.
                        from ..recovery.manifest import digest_records

                        prev = self._frag_digests.get((shard, i, bucket))
                        if prev is not None and prev != digest_records(piece):
                            raise RuntimeError(
                                f"hedged replica recomputed fragment "
                                f"({shard}, {i}, {bucket}) with different "
                                f"content than the shipped original"
                            )
                    continue
                h = self.load_manager.route(
                    bucket, piece.shape[0], avoid=self._avoid_hosts(asu.node_id)
                )
                per_host[h].append((bucket, piece))
            for h, frags in per_host.items():
                n = sum(p.shape[0] for _b, p in frags)
                if ep is not None:
                    # Backpressure: block on the destination's credit window
                    # *before* the atomic ship region, surfacing the stall as
                    # a routing signal while we wait.
                    self.load_manager.backpressure_begin(h, n)
                    waited = yield from ep.wait_window(plat.hosts[h].node_id)
                    self.load_manager.backpressure_end(h, n, waited)
                yield from asu.cpu.execute(cycles=n * rs * cpnb)
                # Atomic with the post: retention entries + ship markers.
                # Expulsion can only land at the yields above, so this check
                # opens the yield-free region — a zombie can never pair a
                # marker with a post the view no longer sanctions.
                if self._producer_fenced(owner, shard):
                    return
                if self.view is not None and h in self._dead_hosts:
                    # The destination died (or was expelled) while we waited
                    # on its window: the cancel released us, but posting now
                    # would vanish into the cut with no dead-letter.  Reroute
                    # the batch to a live host (quarantine already steers the
                    # router away from the corpse).
                    h = self.load_manager.route(
                        frags[0][0], n, avoid=self._avoid_hosts(asu.node_id)
                    )
                # Re-filter against the markers first — first-finisher-wins:
                # a concurrent hedge may have shipped some of these buckets
                # while we waited on the window/CPU above.  With no hedge
                # alive the filter is the identity, so the plain FT path is
                # bit-identical.
                dropped = [b for b, _p in frags if (shard, i, b) in self._shipped]
                if dropped:
                    self._n_hedge_wasted_frags += len(dropped)
                    frags = [
                        (b, p) for b, p in frags if (shard, i, b) not in self._shipped
                    ]
                    if not frags:
                        continue
                    n = sum(p.shape[0] for _b, p in frags)
                entries = [_FragEntry(shard, asu.node_id, i, b, p) for b, p in frags]
                self._frag_log[h].extend(entries)
                for b, p in frags:
                    self._shipped.add((shard, i, b))
                    if self._frag_digests is not None:
                        from ..recovery.manifest import digest_records

                        self._frag_digests[(shard, i, b)] = digest_records(p)
                self._post_from(
                    asu.node_id, plat.hosts[h].node_id,
                    ("frags", shard, frags, entries), n * rs, tag="frags",
                )
            self._blocks_complete.add((shard, i))
            if self.manifest is not None:
                self.manifest.log_block(
                    shard, i,
                    [(b, p.shape[0]) for b, p in enumerate(pieces) if p.shape[0]],
                )
        if shard not in self._eof_posted:
            yield from asu.cpu.execute(cycles=H * 16 * cpnb)
            if self._producer_fenced(owner, shard):
                return  # the takeover announces EOF under the new epoch
            # Atomic: the marker guards the whole EOF broadcast, so a crash
            # here either leaves the shard EOF-less (next takeover posts) or
            # fully announced — hosts can never count a shard's EOF twice.
            # (A hedge racing the original to this point can double-post;
            # hosts track EOFs as a *set* of shard ids, so that is benign.)
            self._eof_posted.add(shard)
            if self.manifest is not None:
                self.manifest.log_shard_done(shard, len(blocks))
            for h in range(H):
                self._post_from(
                    asu.node_id, plat.hosts[h].node_id, (_EOF, shard, None), 16,
                    tag="eof",
                )

    def _host_pass1_ft(self, plat: ActivePlatform, h: int, rs: int, sort_cpr: float):
        """Perpetual host worker: buffer, cut runs, flush at D EOFs.

        After the flush, each late fragment (a replay or a takeover tail)
        becomes its own run immediately — with no buffering state left, even
        arbitrarily delayed deliveries are safe.  The loop never exits; the
        coordinator stops the clock when every record is durable.
        """
        host = plat.hosts[h]
        D = self.params.n_asus
        beta = self.config.beta
        # Checkpointed runs are cut at *fragment* boundaries (first buffer
        # crossing beta records is emitted whole, fragments never split
        # across runs): the manifest can then record a run's lineage as an
        # exact fragment-key list, and restore coverage is exact.  Sizes
        # stay within [beta, beta + max fragment); the unjournaled path
        # keeps the historical exactly-beta cuts, bit-identical.
        mani = self.manifest is not None
        buffers: dict[int, list[np.ndarray]] = defaultdict(list)
        buffered: dict[int, int] = defaultdict(int)
        fkeys: dict[int, list] = defaultdict(list)
        eof_from: set[int] = set()
        flushed = False
        while True:
            msg = yield from self._recv_node(host)
            kind, src = msg.payload[0], msg.payload[1]
            if kind == _EOF:
                eof_from.add(src)
                if not flushed and len(eof_from) >= D:
                    flushed = True
                    for bucket in sorted(buffers):
                        if buffered[bucket]:
                            batch = concat_records(buffers[bucket], self.params.schema)
                            yield from self._emit_run_ft(
                                plat, host, h, bucket, batch, rs, sort_cpr,
                                fkeys=fkeys[bucket] if mani else None,
                            )
                    buffers.clear()
                    buffered.clear()
                    fkeys.clear()
                continue
            if kind == "reemit":
                # Re-replicate runs stranded on dead ASU ``src``.  Riding the
                # mailbox serialises this after any in-flight emit, so every
                # lineage entry bound for ``src`` exists before the scan.
                for entry in list(self._run_log[h]):
                    if entry.dest == src:
                        yield from self._repost_run_ft(plat, host, h, entry, rs)
                continue
            if kind == "reemit_set":
                yield from self._reemit_sets_ft(plat, host, h, msg.payload[2], rs)
                continue
            frags = msg.payload[2]
            entries = msg.payload[3]
            if self.view is not None:
                if h in self._dead_hosts:
                    # Expelled (possibly still alive): the expulsion-time
                    # replay handed these records to survivors — buffering
                    # them here would strand them behind the run fence.
                    continue
                fresh = []
                for f, e in zip(frags, entries):
                    fkey = (e.src_d, e.block, e.bucket)
                    owner = self._frags_accepted.get(fkey)
                    if owner is e:
                        self._n_dup_frags_dropped += 1
                        continue  # duplicate delivery of the accepted entry
                    if owner is not None:
                        # Another host already buffered these records (a
                        # fenced takeover re-shipped what a zombie had in
                        # flight): drop, and retire this retention entry so
                        # a later host death cannot replay it into a dup.
                        e.done = True
                        self._n_dup_frags_dropped += 1
                        continue
                    self._frags_accepted[fkey] = e
                    fresh.append((f, e))
                if not fresh:
                    continue
                if len(fresh) < len(frags):
                    frags = [f for f, _e in fresh]
                    entries = [e for _f, e in fresh]
            if flushed:
                for (bucket, piece), e in zip(frags, entries):
                    yield from self._emit_run_ft(
                        plat, host, h, bucket, piece, rs, sort_cpr,
                        fkeys=[(e.src_d, e.block, bucket)] if mani else None,
                    )
                continue
            if mani:
                for (bucket, piece), e in zip(frags, entries):
                    buffers[bucket].append(piece)
                    fkeys[bucket].append((e.src_d, e.block, bucket))
                    buffered[bucket] += piece.shape[0]
                    if buffered[bucket] >= beta:
                        batch = concat_records(buffers[bucket], self.params.schema)
                        keys = fkeys[bucket]
                        buffers[bucket] = []
                        fkeys[bucket] = []
                        buffered[bucket] = 0
                        yield from self._emit_run_ft(
                            plat, host, h, bucket, batch, rs, sort_cpr, fkeys=keys
                        )
                continue
            for bucket, piece in frags:
                buffers[bucket].append(piece)
                buffered[bucket] += piece.shape[0]
                while buffered[bucket] >= beta:
                    batch = concat_records(buffers[bucket], self.params.schema)
                    run_src, rest = batch[:beta], batch[beta:]
                    buffers[bucket] = [rest] if rest.shape[0] else []
                    buffered[bucket] = rest.shape[0]
                    yield from self._emit_run_ft(
                        plat, host, h, bucket, run_src, rs, sort_cpr
                    )

    def _emit_run_ft(self, plat, host, h, bucket, batch, rs, sort_cpr, fkeys=None):
        """Sort one run, log its lineage, stripe it to an alive ASU.

        ``fkeys`` (checkpointed runs) is the exact list of fragment keys the
        run covers; the run gets a manifest id here, but only becomes a
        durable journal entry when the destination ASU's write completes.
        """
        if self.view is not None and h in self._dead_hosts:
            # Membership mode: an expelled host may still be running (a cut,
            # not a crash).  Its records were replayed to survivors, so a
            # zombie emit would only register sets the consumers must drop.
            return
        t0 = plat.sim.now
        run = yield from host.compute(
            cycles=batch.shape[0] * sort_cpr,
            fn=sort_records,
            args=(batch,),
        )
        self.load_manager.complete(h, batch.shape[0])
        self._trace_records(
            plat.sim, f"host{h}.sort", batch.shape[0], dt=plat.sim.now - t0
        )
        nbytes = run.shape[0] * rs
        if self._replica_mgr is not None:
            yield from self._emit_run_replicated(
                plat, host, h, bucket, run, nbytes, fkeys
            )
            return
        yield from host.cpu.execute(cycles=nbytes * self.params.cycles_per_net_byte)
        # Atomic: destination choice + lineage entry + post.  (Runs bypass
        # the credit window — the high-volume fragment path is what the
        # window gates; a blocking wait here would break emit atomicity.)
        d = self._next_alive_stripe(h)
        rid = None
        if fkeys is not None and self.manifest is not None:
            rid = self.manifest.new_rid()
            self.manifest.register_run(rid, h, bucket, fkeys)
        self._run_log[h].append(_RunEntry(bucket, run, d, rid))
        payload = ("run", bucket, run) if rid is None else ("run", bucket, run, rid)
        self._post_from(
            host.node_id, plat.asus[d].node_id, payload, nbytes, tag="run",
        )

    def _reemit_sets_ft(self, plat, host, h, keys, rs):
        """Fan fresh copies out for sets fully stranded by an ASU crash.

        Riding the host mailbox serialises this behind in-flight emits; each
        set re-checks its state after the NIC charge, so a set repaired or
        purged meanwhile is skipped rather than double-shipped.
        """
        mgr = self._replica_mgr
        cpnb = self.params.cycles_per_net_byte
        for key in keys:
            st = mgr.sets.get(key)
            if st is None or st.copies or st.targets:
                continue  # repaired, re-planned, or purged meanwhile
            if len(self._dead_asus) >= self.params.n_asus:
                raise UnrecoverableJobError("no alive ASU to replicate runs onto")
            nbytes = int(st.run.shape[0]) * rs
            k = max(1, min(mgr.config.r, self.params.n_asus - len(self._dead_asus)))
            yield from host.cpu.execute(cycles=nbytes * cpnb * k)
            # Atomic: fresh targets + posts (see _emit_run_replicated).
            st = mgr.sets.get(key)
            if st is None:
                continue
            targets = mgr.retarget(key)
            if not targets:
                continue
            self._n_reemitted_runs += 1
            for dst in targets:
                self._post_from(
                    host.node_id, plat.asus[dst].node_id,
                    ("runr", st.bucket, st.run, key), nbytes, tag="run",
                )

    def _emit_run_replicated(self, plat, host, h, bucket, run, nbytes, fkeys):
        """Replicated emit: fan the sorted run out to its placement targets.

        NIC cost is charged per planned copy; the region after the charge is
        yield-free and re-validates the plan against the current dead set
        (:meth:`ReplicationManager.register_emit`), so a fail-stop can only
        land before the whole fan-out or after it — never between the set
        registration and its posts.
        """
        mgr = self._replica_mgr
        k = max(1, min(mgr.config.r, self.params.n_asus - len(self._dead_asus)))
        yield from host.cpu.execute(
            cycles=nbytes * self.params.cycles_per_net_byte * k
        )
        rid = None
        if fkeys is not None and self.manifest is not None:
            rid = self.manifest.new_rid()
            self.manifest.register_run(rid, h, bucket, fkeys)
        key, targets = mgr.register_emit(h, bucket, run, rid=rid)
        if not targets:
            raise UnrecoverableJobError("no alive ASU to replicate runs onto")
        for d in targets:
            self._post_from(
                host.node_id, plat.asus[d].node_id,
                ("runr", bucket, run, key), nbytes, tag="run",
            )

    def _repost_run_ft(self, plat, host, h, entry, rs):
        nbytes = entry.run.shape[0] * rs
        yield from host.cpu.execute(cycles=nbytes * self.params.cycles_per_net_byte)
        entry.dest = self._next_alive_stripe(h)
        self._n_reemitted_runs += 1
        payload = (
            ("run", entry.bucket, entry.run)
            if entry.rid is None
            else ("run", entry.bucket, entry.run, entry.rid)
        )
        self._post_from(
            host.node_id, plat.asus[entry.dest].node_id,
            payload, nbytes, tag="run",
        )

    def _next_alive_stripe(self, h: int) -> int:
        """Next ASU to stripe a run onto: alive, and (reliable mode) with a
        healthy breaker on the host->ASU link.  The second pass relaxes the
        breaker condition — when every alive link is quarantined, a degraded
        link still beats no link (graceful degradation, not deadlock)."""
        D = self.params.n_asus
        board = self.breaker_board
        host_id = f"host{h}"
        for allow_open in (False, True):
            start = self._stripe_next[h]
            for step in range(D):
                d = (start + step) % D
                if d in self._dead_asus:
                    continue
                if (
                    not allow_open
                    and board is not None
                    and not board.healthy(host_id, f"asu{d}")
                ):
                    continue
                self._stripe_next[h] = d + 1
                return d
        raise UnrecoverableJobError("no alive ASU to stripe runs onto")

    def _asu_consumer_ft(self, plat: ActivePlatform, d: int, rs: int):
        """Perpetual consumer: make runs durable, drop quarantined hosts'."""
        asu = plat.asus[d]
        while True:
            msg = yield from self._recv_node(asu)
            if msg.payload[0] == "runr":
                yield from self._consume_replica_ft(plat, asu, d, rs, msg)
                continue
            if msg.payload[0] != "run":
                continue
            bucket, run = msg.payload[1], msg.payload[2]
            src_h = int(msg.src[4:])  # "hostN"
            if src_h in self._dead_hosts:
                continue  # orphan of a quarantined host; its frags replay
            t0 = plat.sim.now
            yield from asu.disk_write(run.shape[0] * rs)
            if src_h in self._dead_hosts:
                continue  # emitter died during our write; the purge ran
            if self.view is not None and not self._epoch_guard(
                asu.node_id, "run write"
            ):
                continue  # fenced: this ASU was expelled while we wrote
            # Atomic: durability record + completion check.
            self.runs_on_asu[d].append((bucket, run))
            self._run_hosts[d].append(src_h)
            if self.manifest is not None and len(msg.payload) > 3:
                self.manifest.log_run_durable(msg.payload[3], d, run)
            self._trace_records(
                plat.sim, f"asu{d}.write", run.shape[0], dt=plat.sim.now - t0
            )
            self._ft_durable += run.shape[0]
            if self._ft_durable >= self._ft_total and not self._complete_ev.triggered:
                self._complete_ev.succeed()

    def _consume_replica_ft(self, plat, asu, d, rs, msg):
        """Make one replica copy durable; the manager owns the accounting.

        Handles host-emitted fan-out, stranded-set re-emits, and asu->asu
        repair copies alike — the liveness check keys on the *set's* source
        host, never on ``msg.src`` (a repair copy's wire source is an ASU).
        """
        mgr = self._replica_mgr
        bucket, run, key = msg.payload[1], msg.payload[2], msg.payload[3]
        st = None if mgr is None else mgr.sets.get(key)
        if st is None or (st.src_host >= 0 and st.src_host in self._dead_hosts):
            return  # orphan of a purged set; frag replay covers its records
        t0 = plat.sim.now
        yield from asu.disk_write(run.shape[0] * rs)
        st = mgr.sets.get(key)
        if st is None or (st.src_host >= 0 and st.src_host in self._dead_hosts):
            return  # the set died during our write; its purge already ran
        # Atomic: durability record + completion check.  With a view
        # attached, the manager validates this ASU's epoch first: a copy
        # landing here after our expulsion is the typed split-brain
        # rejection the partition sweep asserts on.
        try:
            delta, fresh = mgr.copy_durable(key, d)
        except StaleEpochError:
            return
        if fresh:
            self.runs_on_asu[d].append((bucket, run))
            # Manifest-restored sets keep the legacy -1 tag: a new crash of
            # their lineage host must not discard the physical copies.
            self._run_hosts[d].append(-1 if key[0] == 1 else st.src_host)
            self._trace_records(
                plat.sim, f"asu{d}.write", run.shape[0], dt=plat.sim.now - t0
            )
        if delta:
            self._ft_durable += delta
            if self._ft_durable >= self._ft_total and not self._complete_ev.triggered:
                self._complete_ev.succeed()

    def _repair_loop_ft(self, plat: ActivePlatform, rs: int):
        """Anti-entropy: re-replicate under-replicated sets in the background.

        A simulated-time process tied to no node, so it survives every
        crash.  Each cycle walks the under-replicated sets in deterministic
        key order, reads the least-loaded alive copy (read steering over the
        ``repro_replica_read_bytes`` gauge vector), posts one fresh copy
        asu->asu, and paces itself to the configured bandwidth budget so
        repair traffic shares the fleet with foreground work instead of
        stampeding it.
        """
        mgr = self._replica_mgr
        cfg = mgr.config
        bw = cfg.repair_bandwidth
        if bw is None:
            # Default budget: a quarter of one disk's streaming rate.
            bw = self.params.disk_rate * 0.25
        while True:
            yield plat.sim.timeout(cfg.repair_interval)
            for key in mgr.under_replicated_keys():
                st = mgr.sets.get(key)
                if st is None or not st.copies or st.repair_inflight:
                    continue  # stranded sets take the reemit path instead
                src = mgr.pick_read_copy(st)
                dest = mgr.next_repair_target(key)
                if src is None or dest is None:
                    continue
                nbytes = int(st.run.shape[0]) * rs
                # Atomic mark: the copy is in flight before any yield, so a
                # concurrent sweep cannot schedule the same repair twice.
                st.targets.add(dest)
                st.repair_inflight.add(dest)
                yield from plat.asus[src].disk.read(nbytes)
                st = mgr.sets.get(key)
                if st is None:
                    continue
                if dest in self._dead_asus or src not in st.copies:
                    # Source or destination died during the read: unwind the
                    # in-flight mark and let the next cycle re-plan.
                    st.targets.discard(dest)
                    st.repair_inflight.discard(dest)
                    continue
                mgr.note_read(src, nbytes)
                self._post_from(
                    plat.asus[src].node_id, plat.asus[dest].node_id,
                    ("runr", st.bucket, st.run, key), nbytes, tag="run",
                )
                yield plat.sim.timeout(nbytes / bw)

    def _coordinator_ft(self, plat: ActivePlatform):
        """Stop the clock once every input record is durable (post-drain)."""
        from ..sim import Event

        while True:
            if self._ft_durable < self._ft_total:
                if self._complete_ev.triggered:
                    self._complete_ev = Event(plat.sim)
                yield self._complete_ev
            # Flush write-behind so "durable" is on-platter; a crash during
            # the drain can revoke completion, hence the re-check.
            for a in plat.asus:
                if a.alive:
                    yield from a.disk.drain()
            if self._ft_durable >= self._ft_total:
                break
        plat.sim.schedule_callback(plat.sim.stop)

    # -- FT recovery callbacks (run inside simulator callbacks; no yields) ----
    def _on_fault_ft(self, fault) -> None:
        """Ground-truth accounting at the crash instant: data on the dead
        device is gone *now*, whatever the detector believes."""
        if fault.kind == "crash_asu":
            self._readmit_stash.pop(fault.index, None)
            self._purge_asu_runs(fault.index)
        elif fault.kind == "crash_host":
            self._purge_host_runs(fault.index)
        elif fault.kind == "lose_replica":
            # Media loss on an alive ASU: its durable copies vanish but the
            # node keeps serving.  Promotion keeps satisfied sets counted;
            # the anti-entropy loop restores the lost redundancy.  Loss also
            # voids any expulsion-time snapshot — a re-admission must not
            # readopt copies the media no longer holds.
            d = fault.index
            self._readmit_stash.pop(d, None)
            delta = self._replica_mgr.lose_copies_on(
                d, now=self._ft_plat.sim.now
            )
            self._ft_durable += delta
            self.runs_on_asu[d] = []
            self._run_hosts[d] = []
        elif fault.kind == "crash_coordinator":
            # Whole-job fail-stop: every volatile structure (host buffers,
            # in-flight messages, ship markers) dies with this platform.
            # What survives is exactly the manifest and the run payloads it
            # references; repro.recovery.checkpoint resumes from there.
            self._coord_crashed = True
            self._ft_plat.sim.schedule_callback(self._ft_plat.sim.stop)

    def _purge_asu_runs(self, d: int) -> None:
        if self._replica_mgr is not None:
            # The manager re-derives counting per set: surviving copies keep
            # satisfied sets counted (promotion), only sets that lost their
            # write policy subtract.  It also rewrites the manifest frontier
            # (purge the dead ASU, re-log promoted sets at a survivor).
            delta = self._replica_mgr.on_asu_crash(d, now=self._ft_plat.sim.now)
            self._ft_durable += delta
            self.runs_on_asu[d] = []
            self._run_hosts[d] = []
            return
        lost = sum(r.shape[0] for _b, r in self.runs_on_asu[d])
        if lost:
            self._ft_durable -= lost
        if self.runs_on_asu[d] and self.manifest is not None:
            self.manifest.log_purge_asu(d)
        self.runs_on_asu[d] = []
        self._run_hosts[d] = []

    def _purge_host_runs(self, h: int) -> None:
        if self._replica_mgr is not None:
            # Manager-owned accounting and manifest purge; the physical
            # filter below still removes every copy tagged with the dead
            # host (restored sets carry -1 and survive, matching legacy).
            self._ft_durable += self._replica_mgr.on_host_crash(h)
            for d in range(self.params.n_asus):
                keep = [
                    (e, src)
                    for e, src in zip(self.runs_on_asu[d], self._run_hosts[d])
                    if src != h
                ]
                self.runs_on_asu[d] = [e for e, _s in keep]
                self._run_hosts[d] = [src for _e, src in keep]
            return
        purged = False
        for d in range(self.params.n_asus):
            keep_r, keep_h, lost = [], [], 0
            for (bucket, run), src in zip(self.runs_on_asu[d], self._run_hosts[d]):
                if src == h:
                    lost += run.shape[0]
                else:
                    keep_r.append((bucket, run))
                    keep_h.append(src)
            if lost:
                purged = True
                self.runs_on_asu[d] = keep_r
                self._run_hosts[d] = keep_h
                self._ft_durable -= lost
        if purged and self.manifest is not None:
            self.manifest.log_purge_host(h)

    def _on_detected_ft(self, node, t: float) -> None:
        plat = self._ft_plat
        nid = node.node_id
        tracer = plat.sim.tracer
        if tracer is not None:
            tracer.instant(plat.sim.now, "faults", f"recover {nid}", cat="fault")
        if nid.startswith("asu"):
            d = node.index
            if d in self._dead_asus:
                return
            self._dead_asus.add(d)
            if self.view is not None:
                self._fence_asu_ft(node, d, t)
            if self._endpoints is not None:
                # Stop retransmitting to the corpse and release window
                # waiters; undeliverable payloads are covered by log-based
                # recovery below.
                for ep in self._endpoints.values():
                    ep.cancel_peer(nid)
            self._purge_asu_runs(d)  # idempotent; the crash hook already ran
            # Re-assign every shard the dead ASU owned to the next alive
            # mirror holder; ship markers make the takeover resume exactly
            # where the dead producer stopped.
            for shard, owner in sorted(self._shard_owner.items()):
                if owner != d:
                    continue
                new_owner = self._next_alive_asu(d)
                self._shard_owner[shard] = new_owner
                proc = plat.spawn(
                    self._produce_shard_ft(
                        plat, new_owner, shard,
                        self.params.block_records, self.params.schema.record_size,
                    ),
                    name=f"takeover{shard}", node=plat.asus[new_owner],
                )
                proc.callbacks.append(
                    lambda _ev, nid=nid, shard=shard: (
                        self.recovered_at.setdefault(nid, plat.sim.now)
                        if shard in self._eof_posted
                        else None
                    )
                )
            if self._replica_mgr is not None:
                # Promotion already kept satisfied sets durable at the crash
                # instant; only fully-stranded sets (no copy, no in-flight
                # target) need their source host to fan out fresh copies.
                pending = self._replica_mgr.pending_reemits
                for h in sorted(pending):
                    keys = tuple(pending[h])
                    if not keys or h < 0 or h in self._dead_hosts:
                        continue
                    plat.hosts[h].mailbox.put(
                        self._Message(
                            "system", plat.hosts[h].node_id,
                            ("reemit_set", h, keys), 0, tag="ctl",
                        )
                    )
                pending.clear()
            else:
                for h in range(self.params.n_hosts):
                    if h not in self._dead_hosts:
                        plat.hosts[h].mailbox.put(
                            self._Message(
                                "system", plat.hosts[h].node_id,
                                ("reemit", d, None), 0, tag="ctl",
                            )
                        )
        else:
            h = node.index
            if h in self._dead_hosts:
                return
            self._dead_hosts.add(h)
            if self.view is not None:
                # Expelled hosts are fenced by the consumer-side dead-host
                # checks (their runs drop) and never re-enlisted; the view
                # still records the change so epochs stay honest.
                self.view.expel(nid, t)
            if self._endpoints is not None:
                for ep in self._endpoints.values():
                    ep.cancel_peer(nid)
            self.load_manager.quarantine(h)
            self._purge_host_runs(h)  # idempotent; the crash hook already ran
            for e in self._frag_log.pop(h, []):
                if e.done:
                    continue
                if self.view is not None:
                    fkey = (e.src_d, e.block, e.bucket)
                    owner = self._frags_accepted.get(fkey)
                    if owner is not None and owner is not e:
                        # Stale retention: another host buffered these
                        # records — replaying this copy would double-count.
                        e.done = True
                        continue
                    # Transfer the exactly-once authority with the replay.
                    self._frags_accepted.pop(fkey, None)
                self._replay_frag_entry(plat, e)
            self.recovered_at[nid] = plat.sim.now

    def _next_alive_asu(self, d: int) -> int:
        D = self.params.n_asus
        for step in range(1, D + 1):
            cand = (d + step) % D
            if cand not in self._dead_asus:
                return cand
        raise UnrecoverableJobError("no alive ASU for shard takeover")

    # -- membership-mode fencing and re-admission (docs/PARTITIONS.md) --------
    def _epoch_guard(self, nid: str, op: str) -> bool:
        """Validate ``nid``'s token for ``op``; False (counted) on stale."""
        try:
            self.view.validate(nid, op=op)
        except StaleEpochError:
            return False
        return True

    def _fence_asu_ft(self, node, d: int, t: float) -> None:
        """Expel an ASU from the view and unwind its zombie state.

        For an alive-but-unreachable node this additionally snapshots which
        replica copies it held, with content digests, so a later
        re-admission can offer them back verified
        (:meth:`~repro.replica.manager.ReplicationManager.readopt_copy`).
        Dead or alive, the node's in-doubt ship state is unwound — every
        fragment it shipped that no host has proven accepted, plus the EOF
        announcements of its shards — so the fenced takeover re-produces
        exactly the data whose delivery the cut left in doubt; the
        host-side accepted-fragment authority dedups whichever copies did
        land.
        """
        nid = node.node_id
        if node.alive:
            if self._replica_mgr is not None:
                from ..recovery.manifest import digest_records

                mgr = self._replica_mgr
                self._readmit_stash[d] = [
                    (key, digest_records(st.run))
                    for key, st in sorted(mgr.sets.items())
                    if d in st.copies
                ]
            self._fenced_asus.add(d)
        if self._endpoints is not None:
            # Stop the retransmission churn into the cut.  The cancelled
            # pendings are NOT the unwind source below: a crash's timeouts
            # may already have cancelled and dropped them.
            self._endpoints[nid].fence_outbound(tags=("frags", "eof"))
        # Unwind in-doubt ship state from the producer-side retention log:
        # every fragment this node shipped that no host has proven accepted
        # goes back to not-shipped, so the fenced takeover re-produces it.
        # Copies that did land (in flight through an open direction, or
        # delivered before the cut) are dedup'd by the host-side
        # accepted-fragment authority, so the unwind can never double-count.
        for entries in self._frag_log.values():
            for e in entries:
                if e.done or e.src_node != nid:
                    continue
                fkey = (e.src_d, e.block, e.bucket)
                if fkey in self._frags_accepted:
                    continue  # a host holds these records; markers stand
                self._shipped.discard(fkey)
                self._blocks_complete.discard((e.src_d, e.block))
        # Re-announce EOF for every shard the node owned: its broadcasts may
        # have died in the cut, and hosts track EOFs as a set of shard ids,
        # so a duplicate announcement is benign while a missing one wedges
        # every host's flush forever.
        for shard, owner in self._shard_owner.items():
            if owner == d:
                self._eof_posted.discard(shard)
        self.view.expel(nid, t)

    def _on_readmit_ft(self, node, t: float) -> None:
        """A confirmed node's heartbeats resumed: re-admit under a new epoch.

        The fresh admission epoch outranks everything the node stamped while
        expelled, so its queued zombie writes stay rejected forever; from
        here on it is a valid replica target again.  Physical run copies it
        kept through the expulsion are offered back one by one with content
        digests — verified copies are re-adopted (counting toward the
        durable total and pass-2 read steering), divergent ones refused and
        left to anti-entropy.  Expelled *hosts* rejoin the view only: their
        buffered state was replayed to survivors at expulsion, so
        re-enlisting them would double-count.
        """
        nid = node.node_id
        self.view.admit(nid, t)
        self._n_readmitted += 1
        if self._endpoints is not None:
            for ep in self._endpoints.values():
                ep.revive_peer(nid)
        if not nid.startswith("asu"):
            return
        d = node.index
        self._dead_asus.discard(d)
        self._fenced_asus.discard(d)
        mgr = self._replica_mgr
        if mgr is None:
            return
        mgr.on_asu_readmit(d)
        delta_total = 0
        for key, digest in self._readmit_stash.pop(d, ()):
            delta, adopted = mgr.readopt_copy(key, d, digest)
            if adopted:
                st = mgr.sets[key]
                self.runs_on_asu[d].append((st.bucket, st.run))
                # -1: a readopted copy is digest-verified durable state; a
                # later crash of its lineage host must not discard it.
                self._run_hosts[d].append(-1)
                self._n_reconciled_runs += 1
            delta_total += delta
        if delta_total:
            self._ft_durable += delta_total
            if self._ft_durable >= self._ft_total and not self._complete_ev.triggered:
                self._complete_ev.succeed()

    def _replay_frag_entry(self, plat: ActivePlatform, e: _FragEntry) -> None:
        """Re-route one retained fragment to a surviving host.

        Runs inside a simulator callback (detection sweep or dead-letter
        hook): the retransmission reserves link capacity and is charged to
        the wire, but no CPU — the recovery manager replays out of the
        retention buffer without re-running the functor.
        """
        e.done = True
        n = int(e.piece.shape[0])
        h2 = self.load_manager.route(e.bucket, n, avoid=self._avoid_hosts(e.src_node))
        ne = _FragEntry(e.src_d, e.src_node, e.block, e.bucket, e.piece)
        self._frag_log[h2].append(ne)
        self._n_replayed_frags += 1
        rs = self.params.schema.record_size
        payload = ("frags", e.src_d, [(e.bucket, e.piece)], [ne])
        if self._endpoints is None:
            plat.network.post(
                e.src_node, plat.hosts[h2].node_id, payload, n * rs, tag="frags"
            )
        else:
            ep = self._endpoints[e.src_node]
            if not ep.node.alive or (
                self.view is not None and not self.view.is_member(e.src_node)
            ):
                # The retaining producer died (or was expelled into a cut):
                # replay from any surviving member (hosts key fragments by
                # the payload's shard id, not by the wire-level source).
                ep = self._alive_endpoint()
            ep.post(plat.hosts[h2].node_id, payload, n * rs, tag="frags")

    def _dead_letter_ft(self, msg) -> None:
        """Network callback: a delivery reached a fail-stopped node.

        Only fragment messages whose destination host is *already detected*
        need action — they were posted in the window between a routing
        decision and the detection sweep, so the sweep missed them.  Every
        other dead letter is covered by log-based recovery (run lineage,
        EOF markers).
        """
        if msg.tag != "frags" or not msg.dst.startswith("host"):
            return
        if int(msg.dst[4:]) not in self._dead_hosts:
            return
        payload = msg.payload
        if isinstance(payload, tuple) and len(payload) == 5 and payload[0] == REL:
            # Reliable-transport envelope: unwrap the application payload
            # (acks carry tag "rel-ack" and never reach this filter).
            payload = payload[4]
        for e in payload[3]:
            if not e.done:
                self._replay_frag_entry(self._ft_plat, e)

    # ------------------------------------------------------------- restore
    def restore_pass1(self) -> None:
        """Adopt a *completed* pass 1 from the manifest without re-running it.

        Used by :class:`~repro.recovery.checkpoint.RecoverableSort` when the
        coordinator died between the passes: the manifest already holds every
        durable run (digest-verified on load), so the job can jump straight
        to :meth:`run_pass2`.
        """
        if self.manifest is None:
            raise RuntimeError("restore_pass1 requires a manifest")
        from ..recovery.manifest import CheckpointError

        state = self.manifest.restore_state()
        if not state.pass1_done:
            raise CheckpointError(
                "manifest does not record pass-1 completion; resume with "
                "run_pass1 instead"
            )
        D = self.params.n_asus
        self.runs_on_asu = [[] for _ in range(D)]
        self._run_hosts = [[] for _ in range(D)]
        for rid, h, bucket, dest, payload in state.live_runs:
            self.runs_on_asu[dest].append((bucket, payload))
            self._run_hosts[dest].append(h)
        self._pass1_done = True
        self._pass1_makespan = state.pass1_makespan

    # ------------------------------------------------------------------ pass 2
    def run_pass2(self, deadline: Optional[float] = None) -> Pass2Result:
        """Final merge: γ1-way pre-merge on ASUs, γ2-way completion on hosts.

        ``deadline`` bounds the pass-2 platform clock (used by the recovery
        harness to model a coordinator crash mid-merge): the simulation stops
        at that instant and the result comes back with ``completed=False``;
        buckets merged before the crash are already journalled and survive.
        """
        if not self._pass1_done:
            raise RuntimeError("run_pass1 first")
        params = self.params
        if self.tracer is not None:
            # Pass 2 runs on a fresh platform whose clock restarts at 0;
            # offsetting its events by the pass-1 makespan stitches both
            # passes onto one job timeline in the exported trace.
            self.tracer.offset = self._pass1_makespan
        if self.metrics is not None and self.metrics.collector is not None:
            # Same stitching for metric samples.
            self.metrics.collector.offset = self._pass1_makespan
        plat = ActivePlatform(
            params, tracer=self.tracer,
            metrics=self.metrics, scrape_interval=self.scrape_interval,
        )
        D, H = params.n_asus, params.n_hosts
        rs = params.schema.record_size
        g1 = self.config.gamma1
        g2 = self.config.merge_host_fan_in
        pre_cpr = self.costs.merge_cycles(g1)
        fin_cpr = self.costs.merge_cycles(g2)
        merger1 = MergeFunctor(g1)

        self.final_buckets: dict[int, list[np.ndarray]] = defaultdict(list)
        n_partial = 0

        # Merge-frontier restore: buckets the manifest already holds fully
        # merged (from an attempt that crashed mid-pass-2) are adopted
        # verbatim — their runs are never re-read off the ASU disks and the
        # owning host never waits on their done markers.
        merged_restored: dict[int, np.ndarray] = {}
        if self.manifest is not None:
            self.manifest.bind(plat)
            merged_restored = self.manifest.merged_buckets()
            for bucket in sorted(merged_restored):
                self.final_buckets[bucket].append(merged_restored[bucket])

        # Replicated pass 1: every run exists on up to r ASUs, but the merge
        # must read each run exactly once.  The manager assigns every run to
        # its least-loaded alive copy holder (greedy over the read-bytes
        # gauge vector), so pass-2 read load spreads across the replica sets.
        replica_plan = (
            self._replica_mgr.read_plan()
            if self._replica_mgr is not None
            else None
        )

        def plan_groups(d):
            """(bucket, runs-or-None) items in bucket order; None = done marker.

            Every ASU visits every bucket in order (empty ones included) so
            the host can count D "bucket done" markers per bucket and start
            merging a bucket while later buckets are still streaming in —
            the pipelined-phases execution of §3.3.
            """
            by_bucket: dict[int, list[np.ndarray]] = defaultdict(list)
            local = self.runs_on_asu[d] if replica_plan is None else replica_plan[d]
            for bucket, run in local:
                by_bucket[bucket].append(run)
            items: list[tuple[int, Optional[list[np.ndarray]]]] = []
            for bucket in range(self.config.alpha):
                if bucket in merged_restored:
                    continue
                runs = by_bucket.get(bucket, [])
                for gi in range(0, len(runs), g1):
                    items.append((bucket, runs[gi : gi + g1]))
                items.append((bucket, None))
            return items

        def asu_reader(d, items, buf):
            """Stream run groups off the disk ahead of the merge worker."""
            asu = plat.asus[d]
            for bucket, group in items:
                if group is not None:
                    n = sum(r.shape[0] for r in group)
                    yield from asu.disk.read(n * rs)
                yield buf.put((bucket, group))

        def asu_merge(d, buf, n_items):
            nonlocal n_partial
            asu = plat.asus[d]
            for _ in range(n_items):
                bucket, group = yield buf.get()
                h = bucket * H // self.config.alpha
                if group is None:
                    yield from asu.send_async(
                        plat.hosts[h], ("bucket_done", bucket, None), 16, tag="done"
                    )
                    continue
                n = sum(r.shape[0] for r in group)
                t0 = plat.sim.now
                staging = n * rs * self.params.cycles_per_io_byte
                if staging:
                    yield from asu.cpu.execute(cycles=staging)
                if g1 > 1 and len(group) > 1:
                    merged = yield from asu.compute(
                        cycles=n * pre_cpr, fn=merger1.merge, args=(group,)
                    )
                else:
                    merged = group[0] if len(group) == 1 else merge_sorted_batches(group)
                self._trace_records(
                    plat.sim, f"asu{d}.premerge", n, dt=plat.sim.now - t0
                )
                n_partial += 1
                yield from asu.send_async(
                    plat.hosts[h], ("partial", bucket, merged),
                    nbytes=merged.shape[0] * rs, tag="partial",
                )

        def host_merge(h):
            host = plat.hosts[h]
            partials: dict[int, list[np.ndarray]] = defaultdict(list)
            done_count: dict[int, int] = defaultdict(int)
            my_buckets = [
                b for b in range(self.config.alpha)
                if b * H // self.config.alpha == h and b not in merged_restored
            ]
            n_finished = 0

            def complete_bucket(bucket):
                t0 = plat.sim.now
                runs = partials.pop(bucket, [])
                fan = max(g2, 2)
                # Reduce to <= fan runs by folding the *smallest* runs first
                # (the tiny pass-1 flush runs), so the overflow work is
                # proportional to the tail records, not the whole bucket.
                while len(runs) > fan:
                    runs.sort(key=lambda r: r.shape[0])
                    k = min(len(runs) - fan + 1, fan)
                    group, runs = runs[:k], runs[k:]
                    n = sum(r.shape[0] for r in group)
                    merged = yield from host.compute(
                        cycles=n * fin_cpr, fn=merge_sorted_batches, args=(group,)
                    )
                    runs.append(merged)
                if len(runs) > 1:
                    n = sum(r.shape[0] for r in runs)
                    merged = yield from host.compute(
                        cycles=n * fin_cpr, fn=merge_sorted_batches, args=(runs,)
                    )
                    runs = [merged]
                if runs:
                    self._trace_records(
                        plat.sim, f"host{h}.merge", runs[0].shape[0],
                        dt=plat.sim.now - t0,
                    )
                    self.final_buckets[bucket].append(runs[0])
                    if self.manifest is not None:
                        self.manifest.log_bucket_merged(bucket, runs[0])

            while n_finished < len(my_buckets):
                msg = yield from host.recv()
                kind, bucket, payload = msg.payload
                if kind == "bucket_done":
                    done_count[bucket] += 1
                    if done_count[bucket] == D:
                        yield from complete_bucket(bucket)
                        n_finished += 1
                else:
                    partials[bucket].append(payload)

        from ..sim import Store

        procs = []
        for d in range(D):
            items = plan_groups(d)
            buf = Store(plat.sim, capacity=2, name=f"ra2.{d}")  # double buffer
            procs.append(plat.spawn(asu_reader(d, items, buf), name=f"r{d}"))
            procs.append(plat.spawn(asu_merge(d, buf, len(items)), name=f"m{d}"))
        procs += [plat.spawn(host_merge(h), name=f"hm{h}") for h in range(H)]
        if deadline is None:
            plat.run(wait_for=procs)
            completed = True
        else:
            done = plat.sim.all_of(procs)

            def _on_done(ev):
                if not ev.ok:
                    raise ev.value
                plat.sim.stop()

            done.callbacks.append(_on_done)
            plat.sim.run(until=deadline)
            completed = all(p.triggered for p in procs)
        makespan = plat.sim.now
        if self.tracer is not None:
            self.tracer.span(0.0, makespan, "job", "pass2",
                             cat="phase", sid="pass2", parent="pass1")
            # Causal edge across the offset boundary: both endpoints land at
            # the stitched pass-1 makespan, linking the two phase spans.
            self.tracer.flow(0.0, "job", 0.0, "job", "pass1->pass2",
                             cat="phase")
        return Pass2Result(
            makespan=makespan,
            host_util=[x.cpu.utilization(makespan) for x in plat.hosts],
            asu_cpu_util=[a.cpu.utilization(makespan) for a in plat.asus],
            n_partial_runs=n_partial,
            completed=completed,
            n_restored_buckets=len(merged_restored),
        )

    # ------------------------------------------------------------------ checks
    def input_records(self) -> np.ndarray:
        return concat_records(list(self.asu_data), self.params.schema)

    def collected_output(self) -> np.ndarray:
        """Final sorted output: buckets in splitter order, concatenated."""
        if not hasattr(self, "final_buckets"):
            raise RuntimeError("run_pass2 first")
        pieces = []
        for bucket in sorted(self.final_buckets):
            pieces.extend(self.final_buckets[bucket])
        return concat_records(pieces, self.params.schema)

    def verify(self) -> None:
        """Assert the emulated sort really sorted the data."""
        check_sorted_permutation(self.input_records(), self.collected_output())
