"""In-process DSM-Sort: the distribute/sort/merge algorithm itself (§4.3).

This is the algorithm of Figure 6 run locally over a BTE — no emulation, no
timing — used (a) to validate the emulated runtime's data path against a
simple reference, and (b) as a genuinely usable external sort whose work
profile is configurable through :class:`~repro.core.config.DSMConfig`.

Phases:

1. α-way distribute into bucket streams (independent subproblems);
2. per bucket, β-record run formation (N/β sorted runs total);
3. per bucket, γ-way merge of the runs (multi-pass if needed);
4. concatenation of sorted buckets (bucket ranges are disjoint and ordered).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bte.base import BTE
from ..containers.stream import RecordStream
from ..core.config import DSMConfig
from ..functors.blocksort import BlockSortFunctor
from ..functors.distribute import DistributeFunctor, sample_splitters
from ..tpie.kmerge import kway_merge_streams
from ..tpie.stream_ops import distribution_sweep

__all__ = ["dsm_sort_local", "LocalSortTrace"]


@dataclass
class LocalSortTrace:
    """What the sort did, per phase (compared against config expectations)."""

    n_records: int = 0
    bucket_sizes: list[int] = field(default_factory=list)
    n_runs: int = 0
    merge_passes_per_bucket: list[int] = field(default_factory=list)

    @property
    def max_bucket_skew(self) -> float:
        if not self.bucket_sizes or self.n_records == 0:
            return 1.0
        mean = self.n_records / len(self.bucket_sizes)
        return max(self.bucket_sizes) / mean if mean else 1.0


def dsm_sort_local(
    src: RecordStream,
    config: DSMConfig,
    bte: BTE | None = None,
    out_name: str = "dsm_out",
    block_records: int = 4096,
    sampled_splitters: bool = False,
    rng: np.random.Generator | None = None,
) -> tuple[RecordStream, LocalSortTrace]:
    """Sort ``src`` into a new stream using the DSM plan in ``config``."""
    bte = bte if bte is not None else src.bte
    trace = LocalSortTrace(n_records=len(src))

    # -- phase 1: distribute -------------------------------------------------
    if sampled_splitters and len(src) > 0:
        sample = src.read_all()["key"]
        dist = DistributeFunctor(sample_splitters(sample, config.alpha, rng))
    else:
        dist = DistributeFunctor.uniform(config.alpha, src.schema)
    buckets = distribution_sweep(src, dist, bte, f"{out_name}.bucket", block_records)
    trace.bucket_sizes = [len(b) for b in buckets]

    # -- phases 2+3: per-bucket run formation and merge ------------------------
    out = RecordStream(out_name, bte=bte, schema=src.schema)
    sorter = BlockSortFunctor(config.beta)
    for bi, bucket in enumerate(buckets):
        run_names: list[str] = []
        bucket.rewind()
        for block in bucket.scan(max(config.beta, block_records)):
            for pkt in sorter.run_packets(block):
                name = f"{out_name}.b{bi}.run{len(run_names)}"
                bte.write_all(name, pkt.batch)
                run_names.append(name)
        trace.n_runs += len(run_names)

        # γ-way merge passes until a single run remains.
        passes = 0
        level = 0
        while len(run_names) > 1:
            passes += 1
            level += 1
            nxt: list[str] = []
            for gi in range(0, len(run_names), config.gamma):
                group = run_names[gi : gi + config.gamma]
                merged = f"{out_name}.b{bi}.m{level}.{len(nxt)}"
                kway_merge_streams(
                    bte, [bte.open(n) for n in group], merged,
                    buffer_records=block_records,
                )
                for n in group:
                    bte.delete(n)
                nxt.append(merged)
            run_names = nxt
        trace.merge_passes_per_bucket.append(passes)

        # -- phase 4: emit the sorted bucket -------------------------------
        if run_names:
            h = bte.open(run_names[0])
            while not bte.at_end(h):
                out.append(bte.read_next(h, block_records))
            bte.delete(run_names[0])
        bucket.delete()

    return out, trace
