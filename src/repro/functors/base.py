"""Functor base classes (§3.1).

Functors "apply specific functions to streams of records passing through
them"; a subset can execute directly on ASUs.  ASU eligibility requires
*bounded per-record computation* and *bounded internal state*, and the functor
must be a prevalidated kernel or have statically determinable behaviour —
the constraints that isolate ASUs from damage by competing functors.

Cost is declared as comparisons-per-record plus a per-record touch cost; the
emulator converts it to cycles through
:class:`~repro.emulator.params.SystemParams`, making load prediction possible
("known bounds on functor computation cost per unit of I/O facilitates these
resource scheduling decisions", §3.3).
"""

from __future__ import annotations

import abc
import math

try:
    import numpy as np
except ImportError:  # pragma: no cover - record batches degrade to lists
    np = None

from ..emulator.params import SystemParams

__all__ = ["Functor", "FunctorError", "asu_eligible"]

UNBOUNDED = math.inf


class FunctorError(RuntimeError):
    """Raised on functor misuse (arity mismatch, ineligible placement...)."""


class Functor(abc.ABC):
    """A primitive processing step in the dataflow network.

    Subclasses implement :meth:`apply` (the real record transformation) and
    declare their cost/state bounds and algebraic properties.
    """

    #: human-readable functor kind
    name: str = "functor"
    #: number of input ports
    n_inputs: int = 1
    #: number of output ports
    n_outputs: int = 1
    #: True when the operation is commutative and associative over records,
    #: allowing the system to replicate instances and route records to any of
    #: them (§3.1: "the system may replicate multiple instances of a functor")
    replicable: bool = False
    #: True for prepackaged, prevalidated kernel primitives (sort, merge...)
    verified_kernel: bool = False

    # -- resource bounds ------------------------------------------------------
    @abc.abstractmethod
    def compares_per_record(self) -> float:
        """Declared comparison count per record (may be UNBOUNDED)."""

    def state_bytes(self) -> float:
        """Bound on internal state; UNBOUNDED disqualifies ASU placement."""
        return 0.0

    def cost_cycles(self, n_records: int, params: SystemParams) -> float:
        """Total cycles to process ``n_records`` under ``params``."""
        cpr = self.compares_per_record()
        if math.isinf(cpr):
            raise FunctorError(
                f"{self.name}: unbounded per-record cost cannot be scheduled"
            )
        return n_records * (
            cpr * params.cycles_per_compare + params.cycles_per_record
        )

    def cost_cycles_batch(self, n_records, params: SystemParams):
        """Vectorized :meth:`cost_cycles` over an array of batch sizes.

        Evaluates the same expression with the same operand grouping, so
        each element is bit-identical to the scalar path.  Returns a NumPy
        array (or a plain list when NumPy is unavailable).
        """
        cpr = self.compares_per_record()
        if math.isinf(cpr):
            raise FunctorError(
                f"{self.name}: unbounded per-record cost cannot be scheduled"
            )
        per_record = cpr * params.cycles_per_compare + params.cycles_per_record
        if np is None:  # pragma: no cover - exercised via the fallback tests
            return [n * per_record for n in n_records]
        return np.asarray(n_records, dtype=np.float64) * per_record

    # -- the real computation ----------------------------------------------------
    @abc.abstractmethod
    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        """Transform one input batch into one batch per output port.

        Functors with ``n_inputs > 1`` (e.g. merge) override richer entry
        points; ``apply`` remains the single-input fast path.
        """

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


def asu_eligible(functor: Functor, asu_mem_bytes: int) -> tuple[bool, str]:
    """Decide whether a functor may be placed on an ASU.

    Returns (eligible, reason).  Mirrors §3.1: bounded per-record processing,
    bounded internal state that fits ASU memory, and verified kernels for
    anything beyond simple streaming steps.
    """
    cpr = functor.compares_per_record()
    if math.isinf(cpr):
        return False, "per-record computation is unbounded"
    state = functor.state_bytes()
    if math.isinf(state):
        return False, "internal state is unbounded"
    if state > asu_mem_bytes:
        return False, (
            f"state bound {state:.0f}B exceeds ASU memory {asu_mem_bytes}B"
        )
    return True, "ok"
