"""The α-way distribute functor (DSM-Sort step 1, §4.3).

Partitions records into α key-range buckets using binary search over α-1
splitter keys: log2(α) comparisons per record, which is exactly how Figure 9's
"higher α values shift more computation load per block to the ASUs" works.
The splitter table (α-1 keys) is the functor's entire internal state, so the
ASU buffer space bounds α.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..util.records import DEFAULT_SCHEMA, RecordSchema
from .base import Functor, FunctorError

__all__ = ["DistributeFunctor", "uniform_splitters", "sample_splitters"]


def uniform_splitters(
    alpha: int, schema: RecordSchema = DEFAULT_SCHEMA
) -> np.ndarray:
    """Equal-width key-range splitters for α buckets."""
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    edges = np.linspace(0, schema.key_max, alpha + 1)[1:-1]
    return edges.astype(np.uint64)


def sample_splitters(
    keys: np.ndarray, alpha: int, rng: Optional[np.random.Generator] = None, oversample: int = 32
) -> np.ndarray:
    """Data-derived splitters: sample keys and take α-quantiles.

    The defence against skew the paper's load manager complements: balanced
    bucket *sizes* need splitters that follow the data distribution.
    """
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    if alpha == 1:
        return np.empty(0, dtype=np.uint64)
    n = keys.shape[0]
    if n == 0:
        raise ValueError("cannot sample splitters from empty keys")
    size = min(n, alpha * oversample)
    sample = keys if rng is None else rng.choice(keys, size=size, replace=False) if size < n else keys
    qs = np.quantile(np.sort(np.asarray(sample, dtype=np.float64)), np.linspace(0, 1, alpha + 1)[1:-1])
    return qs.astype(np.uint64)


class DistributeFunctor(Functor):
    """Partition records into α buckets by key (one output port per bucket)."""

    name = "distribute"
    replicable = True          # bucket membership is per-record: any instance
    verified_kernel = True     # a prepackaged primitive (§3.1)

    def __init__(self, splitters: Sequence[int] | np.ndarray):
        self.splitters = np.asarray(splitters, dtype=np.uint64)
        if self.splitters.ndim != 1:
            raise FunctorError("splitters must be one-dimensional")
        if self.splitters.shape[0] and np.any(np.diff(self.splitters.astype(np.int64)) < 0):
            raise FunctorError("splitters must be nondecreasing")
        self.alpha = int(self.splitters.shape[0]) + 1
        self.n_outputs = self.alpha
        self.name = f"distribute:{self.alpha}"

    @classmethod
    def uniform(cls, alpha: int, schema: RecordSchema = DEFAULT_SCHEMA) -> "DistributeFunctor":
        return cls(uniform_splitters(alpha, schema))

    def compares_per_record(self) -> float:
        """Binary search over the splitter table: log2(α) compares."""
        return math.log2(self.alpha) if self.alpha > 1 else 0.0

    def state_bytes(self) -> float:
        return float(self.splitters.nbytes)

    def bucket_of(self, keys: np.ndarray) -> np.ndarray:
        """Bucket index per key (real binary search via searchsorted)."""
        return np.searchsorted(self.splitters, keys.astype(np.uint64), side="right")

    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        """Partition a batch into α bucket batches (relative order kept)."""
        if self.alpha == 1:
            return [batch]
        idx = self.bucket_of(batch["key"])
        # Stable grouping: argsort on the bucket index keeps record order
        # inside each bucket, matching a sequential distribute pass.
        order = np.argsort(idx, kind="stable")
        sorted_idx = idx[order]
        boundaries = np.searchsorted(sorted_idx, np.arange(1, self.alpha))
        pieces = np.split(batch[order], boundaries)
        return pieces

    def histogram(self, batch: np.ndarray) -> np.ndarray:
        """Bucket occupancy for a batch (skew diagnosis, no data movement)."""
        return np.bincount(self.bucket_of(batch["key"]), minlength=self.alpha)
