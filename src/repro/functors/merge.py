"""The γ-way merge functor (DSM-Sort step 3, §4.3).

"Use a γ-way merge to form sorted runs striped across the ASUs.  The ASU
buffer space restricts γ."  Cost: log2(γ) comparisons per record (a loser
tree / heap of γ run heads).  The merge may be split between hosts and ASUs
so that γ1·γ2 = γ.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..containers.packet import Packet
from ..util.records import DEFAULT_SCHEMA, sort_records
from ..util.validation import check_sorted
from .base import Functor, FunctorError

__all__ = ["MergeFunctor", "merge_sorted_batches"]


def merge_sorted_batches(batches: Sequence[np.ndarray], verify: bool = False) -> np.ndarray:
    """K-way merge of sorted record batches into one sorted batch.

    Implemented as a stable mergesort over the concatenation — O(n log k)
    comparisons like a loser tree, and genuinely produces the merged order
    (NumPy's mergesort on nearly-sorted concatenations does the run-merging
    internally).  ``verify`` asserts input runs are sorted first.
    """
    batches = [b for b in batches if b.shape[0]]
    if not batches:
        return np.empty(0, dtype=DEFAULT_SCHEMA.dtype)
    if verify:
        for i, b in enumerate(batches):
            check_sorted(b, what=f"merge input run {i}")
    if len(batches) == 1:
        return batches[0]
    joined = np.concatenate(batches)
    return sort_records(joined)


class MergeFunctor(Functor):
    """Merges up to γ sorted inputs into one sorted output."""

    name = "merge"
    verified_kernel = True
    replicable = False  # a single merge owns a total order; instances cannot
                        # share one output without violating ordering

    def __init__(self, gamma: int, buffer_records: int | None = None):
        if gamma < 1:
            raise FunctorError("gamma must be >= 1")
        self.gamma = int(gamma)
        self.buffer_records = buffer_records
        self.name = f"merge:{self.gamma}"

    @property
    def n_inputs(self) -> int:  # type: ignore[override]
        return self.gamma

    def compares_per_record(self) -> float:
        return math.log2(self.gamma) if self.gamma > 1 else 0.0

    def state_bytes(self) -> float:
        # γ input buffers of one block each (the ASU-memory bound on γ).
        per_buf = self.buffer_records if self.buffer_records else 1024
        return float(self.gamma * per_buf * 128)

    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        """Single-input degenerate case: pass through (already sorted)."""
        return [batch]

    def merge(self, runs: Sequence[np.ndarray], verify: bool = False) -> np.ndarray:
        """Merge up to γ sorted runs; raises if handed more than γ."""
        if len(runs) > self.gamma:
            raise FunctorError(
                f"merge:{self.gamma} handed {len(runs)} runs; split the merge "
                f"into passes (γ1·γ2 = γ)"
            )
        return merge_sorted_batches(runs, verify=verify)

    def merge_packets(self, packets: Sequence[Packet], verify: bool = False) -> Packet:
        """Merge sorted packets into one sorted packet (mark preserved)."""
        for p in packets:
            if verify and not p.sorted:
                raise FunctorError(f"packet {p!r} not marked sorted")
        out = self.merge([p.batch for p in packets], verify=verify)
        return Packet(out, meta={"sorted": True})

    def plan_passes(self, n_runs: int) -> int:
        """Number of merge passes needed for ``n_runs`` at fan-in γ.

        Matches the ceil(log_γ N/M) term of the I/O sorting bound (§2.1).
        """
        if n_runs <= 1:
            return 0
        if self.gamma < 2:
            raise FunctorError("cannot reduce runs with fan-in < 2")
        return max(1, math.ceil(math.log(n_runs, self.gamma)))
