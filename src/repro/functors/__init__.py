"""Functors: bounded-cost streaming primitives and their composition (§3.1)."""

from .base import Functor, FunctorError, asu_eligible
from .basic import AggregateFunctor, FilterFunctor, MapFunctor, ScanFunctor
from .blocksort import BlockSortFunctor
from .distribute import DistributeFunctor, sample_splitters, uniform_splitters
from .graph import Dataflow, Edge, Stage
from .merge import MergeFunctor, merge_sorted_batches

__all__ = [
    "Functor",
    "FunctorError",
    "asu_eligible",
    "AggregateFunctor",
    "FilterFunctor",
    "MapFunctor",
    "ScanFunctor",
    "BlockSortFunctor",
    "DistributeFunctor",
    "sample_splitters",
    "uniform_splitters",
    "Dataflow",
    "Edge",
    "Stage",
    "MergeFunctor",
    "merge_sorted_batches",
]
