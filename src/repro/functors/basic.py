"""Simple streaming functors: scan, map, filter, aggregate.

These are the "short code sequences whose execution behavior is statically
determinable" (§3.1) — the simplest class of ASU-eligible functors, used for
filtering and aggregation directly at the storage (§2's bandwidth-reduction
argument).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .base import Functor, FunctorError

__all__ = ["ScanFunctor", "MapFunctor", "FilterFunctor", "AggregateFunctor"]


class ScanFunctor(Functor):
    """Identity pass-through (pure data movement; cost is the touch cost)."""

    name = "scan"
    replicable = True
    verified_kernel = True

    def compares_per_record(self) -> float:
        return 0.0

    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        return [batch]


class MapFunctor(Functor):
    """Applies a per-record transformation with a declared cost.

    ``fn`` maps a batch to a batch of equal length.  ``compares`` declares the
    per-record cost bound the system schedules against.
    """

    name = "map"
    replicable = True

    def __init__(self, fn: Callable[[np.ndarray], np.ndarray], compares: float = 1.0, name: str = "map"):
        if compares < 0:
            raise FunctorError("compares must be nonnegative")
        self.fn = fn
        self._compares = float(compares)
        self.name = name

    def compares_per_record(self) -> float:
        return self._compares

    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        out = self.fn(batch)
        if out.shape[0] != batch.shape[0]:
            raise FunctorError(
                f"map {self.name!r} changed batch length "
                f"{batch.shape[0]} -> {out.shape[0]}"
            )
        return [out]


class FilterFunctor(Functor):
    """Keeps records matching a predicate — the canonical active-disk filter.

    Output volume <= input volume, which is what lets ASU-side filtering
    reduce interconnect traffic (§2).
    """

    name = "filter"
    replicable = True

    def __init__(self, predicate: Callable[[np.ndarray], np.ndarray], compares: float = 1.0, name: str = "filter"):
        self.predicate = predicate
        self._compares = float(compares)
        self.name = name

    def compares_per_record(self) -> float:
        return self._compares

    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        mask = np.asarray(self.predicate(batch), dtype=bool)
        if mask.shape[0] != batch.shape[0]:
            raise FunctorError("predicate mask length mismatch")
        return [batch[mask]]

    def selectivity(self, batch: np.ndarray) -> float:
        """Fraction of records passing (for traffic estimation)."""
        if batch.shape[0] == 0:
            return 0.0
        mask = np.asarray(self.predicate(batch), dtype=bool)
        return float(mask.sum()) / batch.shape[0]


class AggregateFunctor(Functor):
    """Streaming reduction (count/sum/min/max over keys).

    Commutative and associative, hence replicable: partial aggregates from
    ASU-resident instances combine at a host.  State is a handful of scalars
    — trivially within any ASU memory bound.
    """

    name = "aggregate"
    replicable = True
    verified_kernel = True
    OPS = ("count", "sum", "min", "max")

    def __init__(self, op: str = "count"):
        if op not in self.OPS:
            raise FunctorError(f"unknown aggregate op {op!r}; choose from {self.OPS}")
        self.op = op
        self.name = f"aggregate:{op}"
        self.reset()

    def reset(self) -> None:
        self._count = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None

    def compares_per_record(self) -> float:
        return 1.0

    def state_bytes(self) -> float:
        return 64.0

    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        keys = batch["key"]
        self._count += batch.shape[0]
        if batch.shape[0]:
            self._sum += int(keys.sum(dtype=np.uint64))
            bmin, bmax = int(keys.min()), int(keys.max())
            self._min = bmin if self._min is None else min(self._min, bmin)
            self._max = bmax if self._max is None else max(self._max, bmax)
        return [batch[:0]]  # aggregates emit no per-record output

    @property
    def value(self):
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }[self.op]

    def combine(self, other: "AggregateFunctor") -> "AggregateFunctor":
        """Merge another instance's partial state into this one."""
        if other.op != self.op:
            raise FunctorError("cannot combine different aggregate ops")
        self._count += other._count
        self._sum += other._sum
        for attr, pick in (("_min", min), ("_max", max)):
            a, b = getattr(self, attr), getattr(other, attr)
            if b is not None:
                setattr(self, attr, b if a is None else pick(a, b))
        return self
