"""Dataflow graphs: functors composed over typed collection edges.

"Functors may have multiple inputs and outputs, and are composed to build
complete programs that process data as it moves from stored input to output"
(§3.1).  The graph records, for every edge, which container type carries the
records — because that is what the system needs to know to manage load:

* ``set`` edges permit replication of the consumer and free routing;
* ``stream`` edges impose ordering, pinning the consumer to one instance;
* ``array`` edges mark random access (no streaming optimisation).

The graph exposes exactly the structure the load manager (§3.3) uses: stage
costs, replication freedom, and ordering constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..emulator.params import SystemParams
from .base import Functor, FunctorError

__all__ = ["Dataflow", "Stage", "Edge", "EDGE_KINDS"]

EDGE_KINDS = ("set", "stream", "array")


@dataclass
class Stage:
    """A functor stage: one logical step, possibly replicated at runtime."""

    name: str
    functor: Functor
    #: requested replication degree (validated against edge kinds)
    replicas: int = 1
    #: estimated records flowing through this stage (for cost prediction)
    est_records: int = 0

    def est_cycles(self, params: SystemParams) -> float:
        return self.functor.cost_cycles(self.est_records, params)


@dataclass
class Edge:
    """A typed connection between two stages (or an endpoint container)."""

    src: str
    dst: str
    kind: str = "set"
    #: estimated records crossing this edge
    est_records: int = 0

    def __post_init__(self) -> None:
        if self.kind not in EDGE_KINDS:
            raise FunctorError(
                f"edge kind {self.kind!r} not one of {EDGE_KINDS}"
            )


class Dataflow:
    """A DAG of functor stages with typed edges."""

    SOURCE = "__source__"
    SINK = "__sink__"

    def __init__(self) -> None:
        self.stages: dict[str, Stage] = {}
        self.edges: list[Edge] = []

    # -- construction ----------------------------------------------------------
    def add_stage(
        self,
        name: str,
        functor: Functor,
        replicas: int = 1,
        est_records: int = 0,
    ) -> Stage:
        if name in self.stages or name in (self.SOURCE, self.SINK):
            raise FunctorError(f"duplicate stage name {name!r}")
        if replicas < 1:
            raise FunctorError("replicas must be >= 1")
        st = Stage(name=name, functor=functor, replicas=replicas, est_records=est_records)
        self.stages[name] = st
        return st

    def connect(self, src: str, dst: str, kind: str = "set", est_records: int = 0) -> Edge:
        for end in (src, dst):
            if end not in self.stages and end not in (self.SOURCE, self.SINK):
                raise FunctorError(f"unknown stage {end!r}")
        e = Edge(src=src, dst=dst, kind=kind, est_records=est_records)
        self.edges.append(e)
        return e

    # -- queries ------------------------------------------------------------------
    def in_edges(self, name: str) -> list[Edge]:
        return [e for e in self.edges if e.dst == name]

    def out_edges(self, name: str) -> list[Edge]:
        return [e for e in self.edges if e.src == name]

    def topological_order(self) -> list[str]:
        """Stage names in dependency order (cycle detection included)."""
        indeg = {n: 0 for n in self.stages}
        for e in self.edges:
            if e.dst in indeg and e.src in self.stages:
                indeg[e.dst] += 1
        ready = sorted(n for n, d in indeg.items() if d == 0)
        order: list[str] = []
        while ready:
            n = ready.pop(0)
            order.append(n)
            for e in self.out_edges(n):
                if e.dst in indeg:
                    indeg[e.dst] -= 1
                    if indeg[e.dst] == 0:
                        ready.append(e.dst)
            ready.sort()
        if len(order) != len(self.stages):
            raise FunctorError("dataflow graph has a cycle")
        return order

    # -- validation ---------------------------------------------------------------
    def validate(self) -> None:
        """Check the structural safety rules of the model.

        1. Replicated stages must be marked replicable.
        2. Replicated stages may only consume ``set`` edges — routing records
           of an ordered stream across instances would violate ordering.
        3. The graph must be acyclic.
        """
        self.topological_order()
        for st in self.stages.values():
            if st.replicas > 1:
                if not st.functor.replicable:
                    raise FunctorError(
                        f"stage {st.name!r}: functor {st.functor.name!r} is "
                        "not commutative/associative; replication would "
                        "change results"
                    )
                for e in self.in_edges(st.name):
                    if e.kind != "set":
                        raise FunctorError(
                            f"stage {st.name!r} is replicated but consumes a "
                            f"{e.kind!r} edge from {e.src!r}; only set edges "
                            "may feed replicated functors (§3.2)"
                        )

    # -- cost model --------------------------------------------------------------
    def stage_costs(self, params: SystemParams) -> dict[str, float]:
        """Estimated cycles per stage (the load manager's planning input)."""
        return {n: st.est_cycles(params) for n, st in self.stages.items()}

    def total_cycles(self, params: SystemParams) -> float:
        return sum(self.stage_costs(params).values())

    def __repr__(self) -> str:
        return f"<Dataflow stages={list(self.stages)} edges={len(self.edges)}>"
