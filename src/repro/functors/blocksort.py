"""The β-record block-sort functor (DSM-Sort step 2, §4.3).

"For each block of β records in each subset, we use a suitable fast internal
sort to form a total of N/β sorted runs.  The available memory size limits
the run length."  Cost: log2(β) comparisons per record.  Output packets carry
the sorted mark so later phases can rely on it (Figure 4).
"""

from __future__ import annotations

import math

import numpy as np

from ..containers.packet import Packet
from ..util.records import sort_records
from .base import Functor, FunctorError

__all__ = ["BlockSortFunctor"]


class BlockSortFunctor(Functor):
    """Sorts fixed-size blocks of records into runs."""

    name = "blocksort"
    verified_kernel = True  # sorting is the flagship "verified kernel" (§3.1)
    replicable = True       # runs are independent; any instance may form one

    def __init__(self, beta: int):
        if beta < 1:
            raise FunctorError("beta must be >= 1")
        self.beta = int(beta)
        self.name = f"blocksort:{self.beta}"
        self._carry: np.ndarray | None = None

    def compares_per_record(self) -> float:
        return math.log2(self.beta) if self.beta > 1 else 0.0

    def state_bytes(self) -> float:
        # One block of β records buffered at a time.
        return float(self.beta) * 128.0

    def apply(self, batch: np.ndarray) -> list[np.ndarray]:
        """Sort one batch as a single run (batch length is the run length)."""
        return [sort_records(batch)]

    def run_packets(self, batch: np.ndarray) -> list[Packet]:
        """Split a batch into β-record runs, each really sorted and marked.

        This is the emulation entry point: each returned packet is one run.
        """
        out = []
        for start in range(0, batch.shape[0], self.beta):
            block = batch[start : start + self.beta]
            run = sort_records(block)
            out.append(Packet(run, meta={"sorted": True, "run_len": run.shape[0]}))
        return out

    def feed(self, batch: np.ndarray) -> list[Packet]:
        """Streaming entry point: buffers a partial block between calls.

        Emits a packet for every complete β-block; call :meth:`flush` at
        end-of-stream for the tail.
        """
        if self._carry is not None and self._carry.shape[0]:
            batch = np.concatenate([self._carry, batch])
            self._carry = None
        n_full = (batch.shape[0] // self.beta) * self.beta
        self._carry = batch[n_full:]
        if n_full == 0:
            return []
        return self.run_packets(batch[:n_full])

    def flush(self) -> list[Packet]:
        """Emit the final partial run, if any."""
        if self._carry is None or self._carry.shape[0] == 0:
            self._carry = None
            return []
        tail, self._carry = self._carry, None
        return self.run_packets(tail)
