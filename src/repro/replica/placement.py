"""ASURA-style deterministic replica placement over the ASU fleet.

Maps a shard id to an *ordered* replica set of ASU indices with the two
properties the replication layer needs (PAPERS.md -> ASURA):

- **uniformity** — each ASU receives an equal share of primaries (and of
  every replica rank), within sampling noise;
- **minimal movement** — growing or shrinking the fleet N -> N±1 relocates
  only ~1/N of shard assignments, because assignments are decided by a
  per-shard *fixed* pseudo-random draw sequence over a fixed value space,
  and resizing only changes which draws land in the assigned region.

The value space is ``[0, capacity * SEGMENT)`` and never changes; ASU ``i``
owns the segment ``[i * SEGMENT, (i + 1) * SEGMENT)``.  With ``N`` ASUs the
assigned region is the prefix ``[0, N * SEGMENT)``.  A shard's draw sequence
``x_0, x_1, ...`` is a pure function of ``(shard, seed, k)`` (splitmix64);
its rank-0 replica is the owner of the first draw landing in the assigned
region.  Because the winning draw is uniform over the assigned region,
placement is uniform by construction; because the sequence is fixed,
growing N -> N+1 relocates a shard only when some draw hits the *newly*
assigned segment before its current winner — probability 1/(N+1).

Replica ranks > 0 continue the same draw sequence, skipping ASUs already
chosen, so the replica set is ordered, distinct, and inherits both
properties per rank.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ReplicaPlacement", "SEGMENT"]

#: width of each ASU's segment in the draw space.  The expected number of
#: draws to land a shard is capacity / N, so the constant trades placement
#: cost at small fleets against the maximum supported fleet size.
SEGMENT = 1 << 16

_MASK = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 output for integer input ``x`` (stateless, exact)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK
    return x ^ (x >> 31)


class ReplicaPlacement:
    """Deterministic shard -> ordered replica-set mapping over ``n_asus``.

    ``capacity`` bounds the fleet size the draw space supports (the space is
    fixed at ``capacity * SEGMENT`` values so it never changes on resize —
    that fixedness IS the minimal-movement property).  ``seed`` decorrelates
    independent placements (e.g. two jobs on one fleet).
    """

    def __init__(self, n_asus: int, capacity: int = 1024, seed: int = 0):
        if n_asus < 1:
            raise ValueError(f"need at least one ASU, got {n_asus}")
        if capacity < n_asus:
            raise ValueError(
                f"placement capacity {capacity} < fleet size {n_asus}"
            )
        self.n_asus = int(n_asus)
        self.capacity = int(capacity)
        self.seed = int(seed)
        # Full-width mix of the seed.  XORing the raw seed onto the
        # k-indexed input would only flip its low bits, which merely
        # *permutes* the draw sequence within small k-blocks — placements
        # under nearby seeds would be almost identical.  A mixed constant
        # perturbs the high bits, so distinct seeds give unrelated streams.
        self._seed_mix = _splitmix64(self.seed)
        self._space = self.capacity * SEGMENT

    def _draw(self, shard: int, k: int) -> int:
        h = _splitmix64(
            (((shard & _MASK) * 0x2545F4914F6CDD1D + k) & _MASK)
            ^ self._seed_mix
        )
        return h % self._space

    def replicas(self, shard: int, r: int) -> tuple[int, ...]:
        """Ordered replica set of ``min(r, n_asus)`` distinct ASU indices."""
        if r < 1:
            raise ValueError(f"need r >= 1, got {r}")
        r = min(r, self.n_asus)
        limit = self.n_asus * SEGMENT
        chosen: list[int] = []
        k = 0
        while len(chosen) < r:
            x = self._draw(shard, k)
            k += 1
            if x >= limit:
                continue
            d = x // SEGMENT
            if d not in chosen:
                chosen.append(d)
        return tuple(chosen)

    def primary(self, shard: int) -> int:
        return self.replicas(shard, 1)[0]

    # -- vectorised primaries (property tests sweep millions of shards) -----
    def primaries(self, shards: np.ndarray) -> np.ndarray:
        """Rank-0 replica for each shard id in ``shards`` (vectorised)."""
        shards = np.asarray(shards, dtype=np.uint64)
        out = np.full(shards.shape, -1, dtype=np.int64)
        pending = np.arange(shards.size, dtype=np.int64)
        limit = np.uint64(self.n_asus * SEGMENT)
        seed = np.uint64(self._seed_mix)
        mult = np.uint64(0x2545F4914F6CDD1D)
        k = 0
        with np.errstate(over="ignore"):
            while pending.size:
                x = shards[pending] * mult + np.uint64(k)
                x ^= seed
                # splitmix64, elementwise
                x = x + np.uint64(0x9E3779B97F4A7C15)
                x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
                x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
                x = x ^ (x >> np.uint64(31))
                x = x % np.uint64(self._space)
                hit = x < limit
                out[pending[hit]] = (x[hit] // np.uint64(SEGMENT)).astype(np.int64)
                pending = pending[~hit]
                k += 1
        return out

    def __repr__(self) -> str:
        return (
            f"<ReplicaPlacement n={self.n_asus} capacity={self.capacity} "
            f"seed={self.seed}>"
        )
